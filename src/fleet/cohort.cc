#include "src/fleet/cohort.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/support/str_util.h"

namespace coign {

std::string CohortKey::ToString() const {
  // The loss axis only appears for lossy buckets, so clean-fleet reports
  // read exactly as they did before loss bucketing existed.
  if (loss_bucket == 0) {
    return StrFormat("L%+d/B%+d", latency_bucket, bandwidth_bucket);
  }
  return StrFormat("L%+d/B%+d/D%+d", latency_bucket, bandwidth_bucket, loss_bucket);
}

CohortKey BucketOf(const NetworkModel& network, const CohortingOptions& options) {
  CohortKey key;
  key.latency_bucket = static_cast<int32_t>(std::floor(
      std::log10(network.per_message_seconds) * options.latency_buckets_per_decade));
  key.bandwidth_bucket = static_cast<int32_t>(std::floor(
      std::log10(network.bytes_per_second) * options.bandwidth_buckets_per_decade));
  return key;
}

CohortKey BucketOf(const FleetClient& client, const CohortingOptions& options) {
  CohortKey key = BucketOf(client.network, options);
  const double drop = client.fault_rates.drop;
  if (drop > options.clean_drop_threshold) {
    // Drop rates are < 1, so buckets come out negative; clamp to -1 keeps
    // even a pathological near-1 rate out of the clean bucket 0.
    key.loss_bucket = std::min(
        static_cast<int32_t>(
            std::floor(std::log10(drop) * options.loss_buckets_per_decade)),
        -1);
  }
  return key;
}

NetworkModel BucketCenter(const CohortKey& key, const CohortingOptions& options) {
  NetworkModel center;
  center.per_message_seconds = std::pow(
      10.0, (key.latency_bucket + 0.5) / options.latency_buckets_per_decade);
  center.bytes_per_second = std::pow(
      10.0, (key.bandwidth_bucket + 0.5) / options.bandwidth_buckets_per_decade);
  center.jitter_fraction = 0.0;  // The center is a model, not a measurement.
  center.name = "cohort " + key.ToString();
  return center;
}

double BucketDropCenter(int32_t loss_bucket, const CohortingOptions& options) {
  if (loss_bucket == 0) {
    return 0.0;
  }
  return std::pow(10.0, (loss_bucket + 0.5) / options.loss_buckets_per_decade);
}

NetworkModel InflateForLoss(NetworkModel network, double drop_rate) {
  if (drop_rate <= 0.0) {
    return network;
  }
  const double inflation = 1.0 / (1.0 - drop_rate);
  network.per_message_seconds *= inflation;
  network.bytes_per_second /= inflation;
  return network;
}

std::vector<Cohort> BuildCohorts(const std::vector<FleetClient>& fleet,
                                 const CohortingOptions& options) {
  // std::map keeps cohorts in grid order without a separate sort; fleets
  // occupy at most a few hundred buckets.
  std::map<CohortKey, std::vector<uint32_t>> buckets;
  for (const FleetClient& client : fleet) {
    buckets[BucketOf(client, options)].push_back(client.id);
  }
  std::vector<Cohort> cohorts;
  cohorts.reserve(buckets.size());
  for (auto& [key, members] : buckets) {
    Cohort cohort;
    cohort.key = key;
    cohort.representative = BucketCenter(key, options);
    cohort.representative_drop = BucketDropCenter(key.loss_bucket, options);
    cohort.members = std::move(members);
    cohorts.push_back(std::move(cohort));
  }
  return cohorts;
}

}  // namespace coign
