#include "src/fleet/cohort.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/support/str_util.h"

namespace coign {

std::string CohortKey::ToString() const {
  return StrFormat("L%+d/B%+d", latency_bucket, bandwidth_bucket);
}

CohortKey BucketOf(const NetworkModel& network, const CohortingOptions& options) {
  CohortKey key;
  key.latency_bucket = static_cast<int32_t>(std::floor(
      std::log10(network.per_message_seconds) * options.latency_buckets_per_decade));
  key.bandwidth_bucket = static_cast<int32_t>(std::floor(
      std::log10(network.bytes_per_second) * options.bandwidth_buckets_per_decade));
  return key;
}

NetworkModel BucketCenter(const CohortKey& key, const CohortingOptions& options) {
  NetworkModel center;
  center.per_message_seconds = std::pow(
      10.0, (key.latency_bucket + 0.5) / options.latency_buckets_per_decade);
  center.bytes_per_second = std::pow(
      10.0, (key.bandwidth_bucket + 0.5) / options.bandwidth_buckets_per_decade);
  center.jitter_fraction = 0.0;  // The center is a model, not a measurement.
  center.name = "cohort " + key.ToString();
  return center;
}

std::vector<Cohort> BuildCohorts(const std::vector<FleetClient>& fleet,
                                 const CohortingOptions& options) {
  // std::map keeps cohorts in grid order without a separate sort; fleets
  // occupy at most a few hundred buckets.
  std::map<CohortKey, std::vector<uint32_t>> buckets;
  for (const FleetClient& client : fleet) {
    buckets[BucketOf(client.network, options)].push_back(client.id);
  }
  std::vector<Cohort> cohorts;
  cohorts.reserve(buckets.size());
  for (auto& [key, members] : buckets) {
    Cohort cohort;
    cohort.key = key;
    cohort.representative = BucketCenter(key, options);
    cohort.members = std::move(members);
    cohorts.push_back(std::move(cohort));
  }
  return cohorts;
}

}  // namespace coign
