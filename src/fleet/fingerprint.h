// Deterministic content fingerprints of ICC profiles.
//
// The plan cache keys on (profile fingerprint x cohort bucket): two fleets
// partitioned from the same application profile share cached plans, and a
// re-profiled application silently invalidates every stale plan because
// its fingerprint changes. The fingerprint folds the complete analysis
// input — classifications, compute seconds, and per-call histograms — in
// sorted key order, so it is independent of hash-map iteration order and
// of the order scenarios were profiled in.

#ifndef COIGN_SRC_FLEET_FINGERPRINT_H_
#define COIGN_SRC_FLEET_FINGERPRINT_H_

#include <cstdint>

#include "src/profile/icc_profile.h"

namespace coign {

// 64-bit FNV-1a over the profile's sorted content. Equal profiles always
// collide; unequal ones collide with 2^-64 probability — acceptable for a
// cache key (a false hit returns a plan for the colliding profile, never
// corrupts memory).
uint64_t ProfileFingerprint(const IccProfile& profile);

}  // namespace coign

#endif  // COIGN_SRC_FLEET_FINGERPRINT_H_
