// The fleet partitioning service: one profiled application, thousands of
// clients, heterogeneous measured networks — plans for all of them.
//
// Pipeline per Plan() call:
//   1. fingerprint the profile (cache namespace);
//   2. cohort the fleet by log-bucketed network parameters (cohort.h);
//   3. probe the plan cache per cohort, coordinator-side, in grid order
//      (deterministic LRU traffic);
//   4. compute the missing cohort plans — full analysis-engine cuts priced
//      at each bucket's geometric center — across the worker pool;
//   5. insert the new plans, again in grid order;
//   6. optionally compute per-client execution-time regret against each
//      client's individually optimal cut (the expensive per-client path
//      the cohorting amortizes away — also run through the pool).
//
// Determinism: every number in FleetPlanResult is a pure function of
// (profile, fleet, options, prior cache state). Workers only fill
// per-index slots; reductions happen on the coordinator in index order, so
// results are bit-identical whatever the thread count or schedule.

#ifndef COIGN_SRC_FLEET_SERVICE_H_
#define COIGN_SRC_FLEET_SERVICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/engine.h"
#include "src/fleet/cohort.h"
#include "src/fleet/plan_cache.h"
#include "src/fleet/thread_pool.h"
#include "src/obs/obs.h"
#include "src/profile/icc_profile.h"
#include "src/sim/fleet_population.h"
#include "src/support/status.h"

namespace coign {

struct FleetServiceOptions {
  CohortingOptions cohorting;
  AnalysisOptions analysis;
  // Total worker threads including the coordinator; 1 = serial.
  int worker_threads = 8;
  // Cached cohort plans; 0 disables the cache.
  size_t cache_capacity = 1024;
  // Also compute per-client optimal cuts and the regret of serving each
  // client its cohort's plan instead. Costs one analysis per client —
  // exactly the bill cohorting exists to avoid — so it is off by default
  // and on in benches and reports.
  bool compute_regret = false;
  // Not owned; null disables instrumentation. All spans and counters are
  // emitted coordinator-side in cohort grid order after the parallel
  // sections complete, so traces are identical whatever the thread count.
  Observability* obs = nullptr;
};

struct CohortPlan {
  Cohort cohort;
  AnalysisResult analysis;
  bool from_cache = false;
};

// Execution-time regret of cohorted planning, client-weighted. Regret of
// one client = predicted execution time (compute + communication) of its
// cohort's plan under its own network, relative to its individually
// optimal cut: 0.03 = 3% slower than perfect.
struct FleetRegret {
  double mean = 0.0;
  double max = 0.0;
  double p95 = 0.0;
  // Client-mean predicted execution seconds under cohort plans vs
  // per-client optimal cuts (the regret numerator and denominator).
  double mean_cohort_seconds = 0.0;
  double mean_optimal_seconds = 0.0;

  std::string ToString() const;
};

struct FleetPlanStats {
  size_t clients = 0;
  size_t cohorts = 0;
  size_t plans_computed = 0;  // Analyses actually run (cache misses).
  size_t cache_hits = 0;      // This call's hits.

  std::string ToString() const;
};

struct FleetPlanResult {
  std::vector<CohortPlan> plans;  // Grid order; every client's cohort.
  FleetPlanStats stats;
  FleetRegret regret;  // Zero-valued unless options.compute_regret.

  // Index into plans of the cohort serving `client_id`, or -1.
  int CohortIndexOf(uint32_t client_id) const;

 private:
  friend class FleetPartitionService;
  std::vector<int> client_cohort_;  // client id -> plans index.
};

class FleetPartitionService {
 public:
  explicit FleetPartitionService(FleetServiceOptions options = {});

  // Computes (or serves from cache) one plan per cohort of `fleet`.
  // Clients must have ids 0..n-1 in order (as GenerateFleet produces).
  Result<FleetPlanResult> Plan(const IccProfile& profile,
                               const std::vector<FleetClient>& fleet);

  const FleetServiceOptions& options() const { return options_; }
  // Lifetime cache counters across every Plan() call on this service.
  PlanCacheStats cache_stats() const { return cache_.stats(); }

  // Persist / restore the plan cache across service restarts: a reloaded
  // service starts warm and serves repeat fleets from cache immediately.
  // Save writes the byte-exact LRU snapshot; Load replaces the cache
  // contents (missing file -> NotFound, caller decides if that is fatal).
  Status SaveCache(const std::string& path) const { return cache_.SaveToFile(path); }
  Status LoadCache(const std::string& path) { return cache_.LoadFromFile(path); }
  size_t cache_size() const { return cache_.size(); }

 private:
  FleetServiceOptions options_;
  ProfileAnalysisEngine engine_;
  PlanCache cache_;
  WorkerPool pool_;
  // One warm-start cut session per pool slot (coordinator + workers).
  // Successive analyses on the same thread share a fleet profile and
  // differ only in network pricing, so most solves within a Plan() call —
  // and across repeat calls — resume from retained flow instead of
  // starting cold. Sessions never change results (warm and cold cuts are
  // bit-identical), so the byte-identical-output determinism contract is
  // untouched; no mincut metrics are emitted from the fleet path for the
  // same reason — counters would vary with thread count.
  std::vector<MinCutSession> cut_sessions_;
};

}  // namespace coign

#endif  // COIGN_SRC_FLEET_SERVICE_H_
