#include "src/fleet/fingerprint.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string_view>
#include <vector>

namespace coign {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void Fold(uint64_t* hash, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    *hash ^= bytes[i];
    *hash *= kFnvPrime;
  }
}

void FoldU64(uint64_t* hash, uint64_t value) { Fold(hash, &value, sizeof(value)); }

void FoldDouble(uint64_t* hash, double value) {
  FoldU64(hash, std::bit_cast<uint64_t>(value));
}

void FoldString(uint64_t* hash, std::string_view text) {
  FoldU64(hash, text.size());
  Fold(hash, text.data(), text.size());
}

void FoldHistogram(uint64_t* hash, const ExponentialHistogram& histogram) {
  for (int bucket : histogram.NonEmptyBuckets()) {
    FoldU64(hash, static_cast<uint64_t>(static_cast<int64_t>(bucket)));
    FoldU64(hash, histogram.CountAt(bucket));
    FoldU64(hash, histogram.BytesAt(bucket));
  }
  FoldU64(hash, histogram.total_count());
  FoldU64(hash, histogram.total_bytes());
}

}  // namespace

uint64_t ProfileFingerprint(const IccProfile& profile) {
  uint64_t hash = kFnvOffset;

  for (ClassificationId id : profile.SortedClassificationIds()) {
    const ClassificationInfo* info = profile.FindClassification(id);
    FoldU64(&hash, info->id);
    FoldU64(&hash, info->clsid.hi);
    FoldU64(&hash, info->clsid.lo);
    FoldU64(&hash, info->api_usage);
    FoldU64(&hash, info->instance_count);
    FoldString(&hash, info->class_name);
    FoldDouble(&hash, profile.ComputeSecondsOf(id));
  }

  std::vector<const std::pair<const CallKey, CallSummary>*> calls;
  calls.reserve(profile.calls().size());
  for (const auto& entry : profile.calls()) {
    calls.push_back(&entry);
  }
  std::sort(calls.begin(), calls.end(), [](const auto* a, const auto* b) {
    const CallKey& x = a->first;
    const CallKey& y = b->first;
    return std::tie(x.src, x.dst, x.iid.hi, x.iid.lo, x.method) <
           std::tie(y.src, y.dst, y.iid.hi, y.iid.lo, y.method);
  });
  for (const auto* entry : calls) {
    const CallKey& key = entry->first;
    FoldU64(&hash, key.src);
    FoldU64(&hash, key.dst);
    FoldU64(&hash, key.iid.hi);
    FoldU64(&hash, key.iid.lo);
    FoldU64(&hash, key.method);
    FoldU64(&hash, entry->second.non_remotable_calls);
    FoldHistogram(&hash, entry->second.requests);
    FoldHistogram(&hash, entry->second.replies);
  }
  return hash;
}

}  // namespace coign
