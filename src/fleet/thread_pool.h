// A small worker pool for the fleet partitioning service.
//
// The unit of work is an indexed task batch: ParallelFor(count, task) runs
// task(0..count-1) across the workers and blocks until all complete.
// Indices are claimed dynamically, so uneven per-cohort analysis costs
// load-balance; results must be written to per-index slots, which keeps
// every output independent of claim order — the determinism contract the
// fleet CLI's byte-identical output rests on.

#ifndef COIGN_SRC_FLEET_THREAD_POOL_H_
#define COIGN_SRC_FLEET_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace coign {

class WorkerPool {
 public:
  // threads <= 1 spawns no workers: ParallelFor runs inline on the caller
  // — the serial path, with zero synchronization overhead, that the fleet
  // bench compares parallel runs against.
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Worker threads owned by the pool (0 in serial mode).
  int worker_count() const { return static_cast<int>(workers_.size()); }

  // Stable slot index of the calling thread: 0 for the coordinator (and
  // for every caller outside a pool, including the serial path), 1..N-1
  // for pool workers. Lets callers keep per-thread scratch — e.g. one
  // warm-startable min-cut session per slot — without locking. Slots are
  // process-wide thread identities, not pool-scoped: a thread owned by
  // one pool reports its slot in that pool.
  static int CurrentSlot();

  // Number of distinct slots CurrentSlot can report for work run through
  // this pool: workers plus the participating coordinator.
  int slot_count() const { return worker_count() + 1; }

  // Runs task(i) for i in [0, count), blocking until every index has
  // finished. Tasks run concurrently and must not touch shared mutable
  // state without their own synchronization. Not re-entrant: one
  // ParallelFor at a time, from one coordinating thread.
  void ParallelFor(size_t count, const std::function<void(size_t)>& task);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const std::function<void(size_t)>* task_ = nullptr;  // Guarded by mutex_.
  size_t next_index_ = 0;
  size_t total_ = 0;
  size_t completed_ = 0;
  uint64_t batch_generation_ = 0;
  bool stopping_ = false;
};

}  // namespace coign

#endif  // COIGN_SRC_FLEET_THREAD_POOL_H_
