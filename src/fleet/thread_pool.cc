#include "src/fleet/thread_pool.h"

namespace coign {
namespace {

// Slot 0 belongs to any thread that never entered a WorkerLoop — the
// coordinator and the serial path included.
thread_local int thread_slot = 0;

}  // namespace

int WorkerPool::CurrentSlot() { return thread_slot; }

WorkerPool::WorkerPool(int threads) {
  for (int i = 1; i < threads; ++i) {
    // threads counts workers including the coordinating caller, which
    // participates in every batch — so an N-thread pool spawns N-1.
    workers_.emplace_back([this, i] {
      thread_slot = i;
      WorkerLoop();
    });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  uint64_t seen_generation = 0;
  for (;;) {
    work_ready_.wait(lock, [&] {
      return stopping_ || (batch_generation_ != seen_generation && task_ != nullptr);
    });
    if (stopping_) {
      return;
    }
    seen_generation = batch_generation_;
    while (next_index_ < total_) {
      const size_t index = next_index_++;
      const std::function<void(size_t)>* task = task_;
      lock.unlock();
      (*task)(index);
      lock.lock();
      if (++completed_ == total_) {
        batch_done_.notify_all();
      }
    }
  }
}

void WorkerPool::ParallelFor(size_t count, const std::function<void(size_t)>& task) {
  if (count == 0) {
    return;
  }
  if (workers_.empty()) {
    for (size_t i = 0; i < count; ++i) {
      task(i);
    }
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  task_ = &task;
  next_index_ = 0;
  total_ = count;
  completed_ = 0;
  ++batch_generation_;
  work_ready_.notify_all();

  // The coordinator is a worker too.
  while (next_index_ < total_) {
    const size_t index = next_index_++;
    lock.unlock();
    task(index);
    lock.lock();
    ++completed_;
  }
  batch_done_.wait(lock, [&] { return completed_ == total_; });
  task_ = nullptr;
}

}  // namespace coign
