// Cohorting: bucket a fleet's clients by network characteristics so one
// cut serves many clients.
//
// A distribution is a discrete object — small shifts in link parameters
// rarely move the minimum cut (the ablation benches show plateaus spanning
// most of a decade). So instead of cutting per client, clients are
// bucketed on a log scale over the two NetworkModel cost parameters
// (per-message latency and payload bandwidth), and one cut is computed per
// occupied bucket at the bucket's geometric center. Pricing at the center
// — not at the mean of the current members — makes a cohort's plan a pure
// function of its bucket, which is what lets the plan cache serve
// repeated and drifting fleets. Online balanced-partitioning work (Avin
// et al.; Räcke et al.) motivates exactly this amortization of cut
// computation across similar concurrent demands.

#ifndef COIGN_SRC_FLEET_COHORT_H_
#define COIGN_SRC_FLEET_COHORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/network_model.h"
#include "src/sim/fleet_population.h"

namespace coign {

struct CohortingOptions {
  // Bucket granularity on each log10 axis. Finer buckets mean lower
  // within-cohort regret but more cuts to compute; 8/decade keeps the
  // worst within-bucket parameter ratio at 10^(1/8) ~ 1.33x.
  double latency_buckets_per_decade = 8.0;
  double bandwidth_buckets_per_decade = 8.0;
  // Drop-rate axis: links at or below the clean threshold share the clean
  // bucket (0); lossier links bucket on their own log10 grid so a client
  // fighting packet loss never shares a plan with a clean one — retry
  // inflation moves its cut toward fewer, larger messages.
  double clean_drop_threshold = 5e-4;
  double loss_buckets_per_decade = 2.0;
};

// A bucket on the (log latency, log bandwidth, log drop-rate) grid.
struct CohortKey {
  int32_t latency_bucket = 0;
  int32_t bandwidth_bucket = 0;
  int32_t loss_bucket = 0;  // 0 = clean; lossy buckets are negative.

  friend bool operator==(const CohortKey&, const CohortKey&) = default;
  // Grid order: latency-major — the deterministic iteration order
  // everywhere cohorts are listed.
  friend bool operator<(const CohortKey& a, const CohortKey& b) {
    if (a.latency_bucket != b.latency_bucket) {
      return a.latency_bucket < b.latency_bucket;
    }
    if (a.bandwidth_bucket != b.bandwidth_bucket) {
      return a.bandwidth_bucket < b.bandwidth_bucket;
    }
    return a.loss_bucket < b.loss_bucket;
  }

  std::string ToString() const;
};

struct CohortKeyHash {
  size_t operator()(const CohortKey& key) const {
    return static_cast<size_t>(
        ((static_cast<uint64_t>(static_cast<uint32_t>(key.latency_bucket)) << 32) ^
         static_cast<uint32_t>(key.bandwidth_bucket) * 0x9e3779b97f4a7c15ull) ^
        static_cast<uint32_t>(key.loss_bucket) * 0xc2b2ae3d27d4eb4full);
  }
};

struct Cohort {
  CohortKey key;
  // The bucket's geometric center: the network every member's plan is
  // computed against.
  NetworkModel representative;
  // Geometric center of the loss bucket; 0 for the clean bucket. Pricing
  // inflates the representative's costs by the expected retransmissions.
  double representative_drop = 0.0;
  // Member client ids, in fleet order.
  std::vector<uint32_t> members;
};

// The bucket a network's parameters land in (clean loss bucket).
CohortKey BucketOf(const NetworkModel& network, const CohortingOptions& options);
// The bucket a client lands in: network axes plus its measured drop rate.
CohortKey BucketOf(const FleetClient& client, const CohortingOptions& options);

// The geometric center of a bucket.
NetworkModel BucketCenter(const CohortKey& key, const CohortingOptions& options);
// Geometric center of a loss bucket (0.0 for the clean bucket 0).
double BucketDropCenter(int32_t loss_bucket, const CohortingOptions& options);

// A drop rate p costs each message 1/(1-p) expected transmissions:
// latency inflates by that factor, effective bandwidth deflates by it.
NetworkModel InflateForLoss(NetworkModel network, double drop_rate);

// Groups the fleet into occupied buckets, sorted by CohortKey grid order.
std::vector<Cohort> BuildCohorts(const std::vector<FleetClient>& fleet,
                                 const CohortingOptions& options);

}  // namespace coign

#endif  // COIGN_SRC_FLEET_COHORT_H_
