// Cohorting: bucket a fleet's clients by network characteristics so one
// cut serves many clients.
//
// A distribution is a discrete object — small shifts in link parameters
// rarely move the minimum cut (the ablation benches show plateaus spanning
// most of a decade). So instead of cutting per client, clients are
// bucketed on a log scale over the two NetworkModel cost parameters
// (per-message latency and payload bandwidth), and one cut is computed per
// occupied bucket at the bucket's geometric center. Pricing at the center
// — not at the mean of the current members — makes a cohort's plan a pure
// function of its bucket, which is what lets the plan cache serve
// repeated and drifting fleets. Online balanced-partitioning work (Avin
// et al.; Räcke et al.) motivates exactly this amortization of cut
// computation across similar concurrent demands.

#ifndef COIGN_SRC_FLEET_COHORT_H_
#define COIGN_SRC_FLEET_COHORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/network_model.h"
#include "src/sim/fleet_population.h"

namespace coign {

struct CohortingOptions {
  // Bucket granularity on each log10 axis. Finer buckets mean lower
  // within-cohort regret but more cuts to compute; 8/decade keeps the
  // worst within-bucket parameter ratio at 10^(1/8) ~ 1.33x.
  double latency_buckets_per_decade = 8.0;
  double bandwidth_buckets_per_decade = 8.0;
};

// A bucket on the (log latency, log bandwidth) grid.
struct CohortKey {
  int32_t latency_bucket = 0;
  int32_t bandwidth_bucket = 0;

  friend bool operator==(const CohortKey&, const CohortKey&) = default;
  // Grid order: latency-major — the deterministic iteration order
  // everywhere cohorts are listed.
  friend bool operator<(const CohortKey& a, const CohortKey& b) {
    return a.latency_bucket != b.latency_bucket
               ? a.latency_bucket < b.latency_bucket
               : a.bandwidth_bucket < b.bandwidth_bucket;
  }

  std::string ToString() const;
};

struct CohortKeyHash {
  size_t operator()(const CohortKey& key) const {
    return static_cast<size_t>(
        (static_cast<uint64_t>(static_cast<uint32_t>(key.latency_bucket)) << 32) ^
        static_cast<uint32_t>(key.bandwidth_bucket) * 0x9e3779b97f4a7c15ull);
  }
};

struct Cohort {
  CohortKey key;
  // The bucket's geometric center: the network every member's plan is
  // computed against.
  NetworkModel representative;
  // Member client ids, in fleet order.
  std::vector<uint32_t> members;
};

// The bucket a network's parameters land in.
CohortKey BucketOf(const NetworkModel& network, const CohortingOptions& options);

// The geometric center of a bucket.
NetworkModel BucketCenter(const CohortKey& key, const CohortingOptions& options);

// Groups the fleet into occupied buckets, sorted by CohortKey grid order.
std::vector<Cohort> BuildCohorts(const std::vector<FleetClient>& fleet,
                                 const CohortingOptions& options);

}  // namespace coign

#endif  // COIGN_SRC_FLEET_COHORT_H_
