// Simulated client fleets for the fleet partitioning service.
//
// The paper computes one distribution for one client/server pair over one
// measured network (§2). Serving a large deployed population means every
// client arrives with its own measured network — the same application runs
// over ISDN dial-ups, office Ethernet, and datacenter SANs at once, and no
// single cut is right for all of them. This generator draws a seeded
// population of clients whose link parameters come from the preset
// archetypes spread by a per-client multiplicative factor (real fleets
// cluster around link classes but no two DSL lines measure identically).
// Everything is deterministic per seed so fleet experiments replay
// bit-for-bit.

#ifndef COIGN_SRC_SIM_FLEET_POPULATION_H_
#define COIGN_SRC_SIM_FLEET_POPULATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/net/network_model.h"
#include "src/support/rng.h"

namespace coign {

// One simulated client: an identity plus its measured link parameters and
// measured steady-state fault rates (a clean link leaves them zero).
struct FleetClient {
  uint32_t id = 0;
  std::string archetype;  // Preset the link was drawn from, for reports.
  NetworkModel network;
  FaultRates fault_rates;
};

// An archetype is a link class with a population share and a spread: a
// client drawn from it scales the preset's latency and bandwidth by
// independent log-uniform factors in [1/spread, spread].
struct FleetArchetype {
  NetworkModel base;
  double weight = 1.0;
  double spread = 2.0;
};

struct FleetPopulationOptions {
  int client_count = 2000;
  // Empty = DefaultFleetArchetypes().
  std::vector<FleetArchetype> archetypes;
  // Fraction of clients whose link drops packets, with the steady drop
  // rate drawn log-uniformly from [min_drop_rate, max_drop_rate]. Loss is
  // drawn after the link parameters on each client's forked stream, so
  // turning it on never changes anyone's latency or bandwidth, and the
  // default 0 reproduces pre-loss fleets byte-for-byte.
  double lossy_fraction = 0.0;
  double min_drop_rate = 1e-4;
  double max_drop_rate = 3e-2;
};

// The default mix: a consumer-heavy population across the five presets,
// dominated by slow links (where partitioning matters most) with a long
// fast-network tail.
std::vector<FleetArchetype> DefaultFleetArchetypes();

// Draws `options.client_count` clients deterministically from `seed`.
// Clients are returned in id order; the same (options, seed) always
// produces the identical population.
std::vector<FleetClient> GenerateFleet(const FleetPopulationOptions& options,
                                       uint64_t seed);

}  // namespace coign

#endif  // COIGN_SRC_SIM_FLEET_POPULATION_H_
