#include "src/sim/accountant.h"

#include <cassert>

#include "src/marshal/proxy_stub.h"

namespace coign {

NetworkAccountant::NetworkAccountant(ObjectSystem* system, Transport transport, Rng* jitter_rng)
    : system_(system), transport_(transport), jitter_rng_(jitter_rng) {
  assert(system_ != nullptr);
  system_->AddInterceptor(this);
}

NetworkAccountant::~NetworkAccountant() { system_->RemoveInterceptor(this); }

void NetworkAccountant::SetComputeScale(MachineId machine, double scale) {
  assert(machine >= 0 && machine < static_cast<MachineId>(compute_scale_.size()));
  assert(scale > 0.0);
  compute_scale_[static_cast<size_t>(machine)] = scale;
}

double NetworkAccountant::ScaleOf(MachineId machine) const {
  if (machine < 0 || machine >= static_cast<MachineId>(compute_scale_.size())) {
    return 1.0;
  }
  return compute_scale_[static_cast<size_t>(machine)];
}

void NetworkAccountant::Reset() {
  communication_seconds_ = 0.0;
  compute_seconds_ = 0.0;
  total_calls_ = 0;
  remote_calls_ = 0;
  remote_bytes_ = 0;
}

void NetworkAccountant::OnCallEnd(const ObjectSystem::CallEvent& event, const Status& status) {
  if (!status.ok()) {
    return;
  }
  ++total_calls_;
  if (!event.is_remote()) {
    return;
  }
  const InterfaceDesc* iface = system_->interfaces().Lookup(event.target.iid);
  assert(iface != nullptr);
  // The wire is real here: marshal the actual messages.
  const WireCall wire = MeasureCall(*iface, event.method, *event.in, *event.out);
  assert(wire.remotable);  // Call() refuses non-remotable remote calls.
  ++remote_calls_;
  remote_bytes_ += wire.total_bytes();
  const double seconds =
      jitter_rng_ != nullptr
          ? transport_.SampleRoundTripSeconds(wire.request_bytes, wire.reply_bytes,
                                              *jitter_rng_)
          : transport_.ExpectedRoundTripSeconds(wire.request_bytes, wire.reply_bytes);
  communication_seconds_ += seconds;
}

void NetworkAccountant::OnCompute(InstanceId instance, double seconds) {
  MachineId machine = kClientMachine;
  if (instance != kNoInstance) {
    const Result<MachineId> m = system_->MachineOf(instance);
    if (m.ok()) {
      machine = *m;
    }
  }
  compute_seconds_ += seconds / ScaleOf(machine);
}

}  // namespace coign
