#include "src/sim/accountant.h"

#include <cassert>

#include "src/marshal/proxy_stub.h"

namespace coign {

NetworkAccountant::NetworkAccountant(ObjectSystem* system, Transport transport, Rng* jitter_rng)
    : system_(system), transport_(transport), jitter_rng_(jitter_rng) {
  assert(system_ != nullptr);
  system_->AddInterceptor(this);
}

NetworkAccountant::~NetworkAccountant() { system_->RemoveInterceptor(this); }

void NetworkAccountant::SetComputeScale(MachineId machine, double scale) {
  assert(machine >= 0 && machine < static_cast<MachineId>(compute_scale_.size()));
  assert(scale > 0.0);
  compute_scale_[static_cast<size_t>(machine)] = scale;
}

double NetworkAccountant::ScaleOf(MachineId machine) const {
  if (machine < 0 || machine >= static_cast<MachineId>(compute_scale_.size())) {
    return 1.0;
  }
  return compute_scale_[static_cast<size_t>(machine)];
}

void NetworkAccountant::Reset() {
  communication_seconds_ = 0.0;
  compute_seconds_ = 0.0;
  total_calls_ = 0;
  remote_calls_ = 0;
  remote_bytes_ = 0;
  health_ = TransportHealth{};
}

void NetworkAccountant::OnCallEnd(const ObjectSystem::CallEvent& event, const Status& status) {
  if (!status.ok()) {
    return;
  }
  ++total_calls_;
  if (!event.is_remote()) {
    return;
  }
  const InterfaceDesc* iface = system_->interfaces().Lookup(event.target.iid);
  assert(iface != nullptr);
  // The wire is real here: marshal the actual messages.
  const WireCall wire = MeasureCall(*iface, event.method, *event.in, *event.out);
  assert(wire.remotable);  // Call() refuses non-remotable remote calls.
  ++remote_calls_;
  remote_bytes_ += wire.total_bytes();
  // Fault-free and faulted calls take the same path: one clean attempt is
  // just the degenerate receipt (attempts=1, jitter pro-rated across the
  // latency/payload split — identical draws to the old direct sampling), and
  // routing both through ReliableRoundTrip means model-priced traffic always
  // reaches RecordReceipt, so online runs without a fault model still show
  // live transport counters and rpc spans.
  const DeliveryReceipt receipt =
      transport_.ReliableRoundTrip(event.caller_machine, event.target_machine,
                                   wire.request_bytes, wire.reply_bytes, jitter_rng_);
  const double seconds = receipt.seconds;
  health_.attempts += static_cast<uint64_t>(receipt.attempts);
  health_.retries += static_cast<uint64_t>(receipt.attempts - 1);
  health_.wire_latency_seconds += receipt.latency_seconds;
  health_.wire_payload_seconds += receipt.payload_seconds;
  if (!receipt.delivered) {
    ++health_.undelivered;
  }
  if (receipt.faulted) {
    ++health_.faulted_calls;
  }
  health_.duplicates_suppressed += receipt.duplicates_suppressed;
  health_.corrupt_rejected += receipt.corrupt_rejected;
  health_.corrupt_consumed += receipt.corrupt_consumed;
  communication_seconds_ += seconds;
  ++health_.calls;
  health_.wire_bytes += wire.total_bytes();
  health_.wire_seconds += seconds;
}

void NetworkAccountant::OnCompute(InstanceId instance, double seconds) {
  MachineId machine = kClientMachine;
  if (instance != kNoInstance) {
    const Result<MachineId> m = system_->MachineOf(instance);
    if (m.ok()) {
      machine = *m;
    }
  }
  const double scaled = seconds / ScaleOf(machine);
  compute_seconds_ += scaled;
  // Fault episodes are scheduled in simulated seconds; compute time passes
  // on that clock too.
  transport_.AdvanceFaultClock(scaled);
}

}  // namespace coign
