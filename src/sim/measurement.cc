#include "src/sim/measurement.h"

#include "src/net/transport.h"
#include "src/sim/accountant.h"

namespace coign {

Result<RunMeasurement> MeasureRun(ObjectSystem& system,
                                  const std::function<Status(ObjectSystem&)>& body,
                                  const MeasurementOptions& options) {
  NetworkAccountant accountant(&system, Transport(options.network), options.jitter_rng);
  accountant.SetComputeScale(kClientMachine, options.client_compute_scale);
  accountant.SetComputeScale(kServerMachine, options.server_compute_scale);
  if (options.faults != nullptr) {
    accountant.AttachFaults(options.faults, options.retry);
  }

  const Status status = body(system);
  system.DestroyAll();
  if (!status.ok()) {
    return status;
  }

  RunMeasurement measurement;
  measurement.communication_seconds = accountant.communication_seconds();
  measurement.compute_seconds = accountant.compute_seconds();
  measurement.execution_seconds = accountant.execution_seconds();
  measurement.total_calls = accountant.total_calls();
  measurement.remote_calls = accountant.remote_calls();
  measurement.remote_bytes = accountant.remote_bytes();
  return measurement;
}

}  // namespace coign
