#include "src/sim/fleet_population.h"

#include <cassert>
#include <cmath>

namespace coign {

std::vector<FleetArchetype> DefaultFleetArchetypes() {
  // Weights sum to 1 for readability; GenerateFleet normalizes anyway.
  return {
      {NetworkModel::Isdn(), 0.30, 2.5},
      {NetworkModel::TenBaseT(), 0.30, 2.0},
      {NetworkModel::HundredBaseT(), 0.25, 2.0},
      {NetworkModel::Atm155(), 0.10, 1.7},
      {NetworkModel::San(), 0.05, 1.5},
  };
}

std::vector<FleetClient> GenerateFleet(const FleetPopulationOptions& options,
                                       uint64_t seed) {
  const std::vector<FleetArchetype> archetypes =
      options.archetypes.empty() ? DefaultFleetArchetypes() : options.archetypes;
  assert(!archetypes.empty());
  double total_weight = 0.0;
  for (const FleetArchetype& archetype : archetypes) {
    total_weight += archetype.weight;
  }

  std::vector<FleetClient> fleet;
  fleet.reserve(static_cast<size_t>(options.client_count));
  Rng rng(seed);
  for (int i = 0; i < options.client_count; ++i) {
    // Each client draws from its own forked stream so inserting a client
    // never shifts the parameters of every client after it.
    Rng client_rng = rng.Fork(static_cast<uint64_t>(i));
    double pick = client_rng.UniformDouble() * total_weight;
    const FleetArchetype* chosen = &archetypes.back();
    for (const FleetArchetype& archetype : archetypes) {
      pick -= archetype.weight;
      if (pick < 0.0) {
        chosen = &archetype;
        break;
      }
    }
    // Log-uniform in [1/spread, spread]: symmetric in ratio space, the
    // natural spread for quantities that vary by decades.
    const double log_spread = std::log(chosen->spread);
    const double latency_scale =
        std::exp(client_rng.UniformDouble(-log_spread, log_spread));
    const double bandwidth_scale =
        std::exp(client_rng.UniformDouble(-log_spread, log_spread));

    FleetClient client;
    client.id = static_cast<uint32_t>(i);
    client.archetype = chosen->base.name;
    client.network = chosen->base.Scaled(latency_scale, bandwidth_scale);
    client.network.name = chosen->base.name;
    if (options.lossy_fraction > 0.0 &&
        client_rng.UniformDouble() < options.lossy_fraction) {
      client.fault_rates.drop =
          std::exp(client_rng.UniformDouble(std::log(options.min_drop_rate),
                                            std::log(options.max_drop_rate)));
    }
    fleet.push_back(std::move(client));
  }
  return fleet;
}

}  // namespace coign
