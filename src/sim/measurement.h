// Scenario measurement: runs a scenario body against an ObjectSystem whose
// placement policy is already configured, with a NetworkAccountant charging
// cross-machine calls, and reports communication/execution times — the
// simulator-side numbers for Tables 4 and 5.

#ifndef COIGN_SRC_SIM_MEASUREMENT_H_
#define COIGN_SRC_SIM_MEASUREMENT_H_

#include <functional>

#include "src/com/object_system.h"
#include "src/net/network_model.h"
#include "src/net/transport.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace coign {

struct RunMeasurement {
  double communication_seconds = 0.0;
  double compute_seconds = 0.0;
  double execution_seconds = 0.0;
  uint64_t total_calls = 0;
  uint64_t remote_calls = 0;
  uint64_t remote_bytes = 0;
};

struct MeasurementOptions {
  NetworkModel network;
  // Non-null → jittered "measured" run; null → deterministic expectation.
  Rng* jitter_rng = nullptr;
  double client_compute_scale = 1.0;
  double server_compute_scale = 1.0;
  // Non-null → remote calls run hardened against this fault model (not
  // owned) under `retry`; faults cost modeled time through the accountant.
  TransportFaultModel* faults = nullptr;
  RetryPolicy retry;
};

// Runs `body` once and accounts its cross-machine traffic. The system's
// live instances are destroyed afterwards so consecutive measurements are
// independent.
Result<RunMeasurement> MeasureRun(ObjectSystem& system,
                                  const std::function<Status(ObjectSystem&)>& body,
                                  const MeasurementOptions& options);

}  // namespace coign

#endif  // COIGN_SRC_SIM_MEASUREMENT_H_
