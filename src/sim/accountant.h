// The network accountant: the simulator's stand-in for real wires.
//
// Attached to an ObjectSystem, it charges every cross-machine call with a
// DCOM round trip over the transport (marshaling the real messages to get
// real byte counts) and accumulates per-machine compute clocks. With a
// jitter Rng it produces "measured" times; without one, deterministic
// expected times.
//
// With a fault model attached (src/fault), remote calls instead take the
// transport's hardened path: delivery attempts run under the fault
// schedule and failed attempts cost timeout + backoff time, bounded by the
// retry budget. The accountant keeps the fault clock in step with modeled
// time (compute included) and exposes a TransportHealth snapshot the
// online layer uses to detect fault episodes.

#ifndef COIGN_SRC_SIM_ACCOUNTANT_H_
#define COIGN_SRC_SIM_ACCOUNTANT_H_

#include <array>
#include <cstdint>

#include "src/com/object_system.h"
#include "src/net/transport.h"
#include "src/support/rng.h"

namespace coign {

class NetworkAccountant : public ObjectSystem::Interceptor {
 public:
  // `jitter_rng` may be null for deterministic accounting; not owned.
  NetworkAccountant(ObjectSystem* system, Transport transport, Rng* jitter_rng = nullptr);
  ~NetworkAccountant() override;

  NetworkAccountant(const NetworkAccountant&) = delete;
  NetworkAccountant& operator=(const NetworkAccountant&) = delete;

  // Relative compute power of a machine (1.0 = the reference profile
  // machine). Both machines are equal in the paper's testbed.
  void SetComputeScale(MachineId machine, double scale);

  double communication_seconds() const { return communication_seconds_; }
  double compute_seconds() const { return compute_seconds_; }
  // Synchronous application: wall time = compute + communication.
  double execution_seconds() const { return compute_seconds_ + communication_seconds_; }

  uint64_t total_calls() const { return total_calls_; }
  uint64_t remote_calls() const { return remote_calls_; }
  uint64_t remote_bytes() const { return remote_bytes_; }

  // Routes remote calls through the hardened transport under `faults` (not
  // owned, may be null to detach) and `retry`. Faults cost modeled time:
  // timeouts, backoff, duplicate wire traffic, and spike-scaled round
  // trips all land on the communication clock.
  void AttachFaults(TransportFaultModel* faults, const RetryPolicy& retry) {
    transport_.SetRetryPolicy(retry);
    transport_.AttachFaults(faults);
  }

  // Cumulative call-path health (migration charges excluded).
  TransportHealth health() const { return health_; }

  // The accountant's transport, for out-of-band traffic that must share
  // the run's fault schedule and retry policy — the journaled migrator
  // pushes its state copies through this so crashes and loss hit them.
  // Migration round trips bypass OnCallEnd, so health() stays call-only.
  Transport& transport() { return transport_; }

  // Bills out-of-band traffic (online repartitioning's state transfers) to
  // this accountant's clocks, so adaptive runs pay for their migrations.
  void ChargeMigration(uint64_t bytes, double seconds) {
    remote_bytes_ += bytes;
    communication_seconds_ += seconds;
    // Migration time passes on the fault clock, but stays out of the
    // TransportHealth call counters: the live network estimate must not
    // read the adaptive loop's own state transfers as a slow wire.
    transport_.AdvanceFaultClock(seconds);
  }

  // Like ChargeMigration, but for migration traffic that already traveled
  // through transport() — ReliableRoundTrip advanced the fault clock while
  // the copies were on the wire, so advancing it again would double-count.
  void ChargeMigrationReceipts(uint64_t bytes, double seconds) {
    remote_bytes_ += bytes;
    communication_seconds_ += seconds;
  }

  void Reset();

  // --- ObjectSystem::Interceptor -------------------------------------------
  void OnCallEnd(const ObjectSystem::CallEvent& event, const Status& status) override;
  void OnCompute(InstanceId instance, double seconds) override;

 private:
  double ScaleOf(MachineId machine) const;

  ObjectSystem* system_;
  Transport transport_;
  Rng* jitter_rng_;
  std::array<double, 2> compute_scale_ = {1.0, 1.0};
  TransportHealth health_;
  double communication_seconds_ = 0.0;
  double compute_seconds_ = 0.0;
  uint64_t total_calls_ = 0;
  uint64_t remote_calls_ = 0;
  uint64_t remote_bytes_ = 0;
};

}  // namespace coign

#endif  // COIGN_SRC_SIM_ACCOUNTANT_H_
