// Class-based placement: the developer's default distribution.
//
// Before Coign, applications ship with a static, programmer-chosen
// distribution expressed in terms of component *classes* (e.g. "the
// middle-tier business-logic classes run on the server"). This policy
// realizes such a distribution so the simulator can measure the paper's
// "Default" column in Table 4.

#ifndef COIGN_SRC_SIM_CLASS_PLACEMENT_H_
#define COIGN_SRC_SIM_CLASS_PLACEMENT_H_

#include <unordered_map>

#include "src/com/object_system.h"
#include "src/com/types.h"

namespace coign {

class ClassPlacement {
 public:
  ClassPlacement() = default;
  explicit ClassPlacement(MachineId default_machine) : default_machine_(default_machine) {}

  void Place(const ClassId& clsid, MachineId machine) { placement_[clsid] = machine; }

  MachineId MachineFor(const ClassId& clsid) const {
    auto it = placement_.find(clsid);
    return it == placement_.end() ? default_machine_ : it->second;
  }

  bool empty() const { return placement_.empty(); }

  // An ObjectSystem placement policy realizing this distribution.
  ObjectSystem::PlacementPolicy AsPolicy() const {
    return [this](const ClassDesc& cls, InstanceId creator, InstanceId new_id) {
      (void)creator;
      (void)new_id;
      return MachineFor(cls.clsid);
    };
  }

 private:
  std::unordered_map<ClassId, MachineId> placement_;
  MachineId default_machine_ = kClientMachine;
};

}  // namespace coign

#endif  // COIGN_SRC_SIM_CLASS_PLACEMENT_H_
