#include "src/sim/class_placement.h"

// Header-only today; anchors the translation unit.

namespace coign {}  // namespace coign
