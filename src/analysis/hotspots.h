// Communication hot spots (paper §6, first usage model):
//
// "Coign shows the developer how to distribute the application optimally
// and provides the developer with feedback about which interfaces are
// communication 'hot spots.' The programmer fine-tunes the distribution by
// enabling custom marshaling and caching on communication intensive
// interfaces."
//
// A hot spot is a (classification pair, interface, method) whose calls
// cross the chosen cut; the report ranks them by predicted time on the
// wire and flags the ones amenable to caching (declared-pure query
// methods).

#ifndef COIGN_SRC_ANALYSIS_HOTSPOTS_H_
#define COIGN_SRC_ANALYSIS_HOTSPOTS_H_

#include <string>
#include <vector>

#include "src/com/metadata.h"
#include "src/graph/distribution.h"
#include "src/net/network_profiler.h"
#include "src/profile/icc_profile.h"

namespace coign {

struct HotSpot {
  ClassificationId src = kNoClassification;
  ClassificationId dst = kNoClassification;
  std::string src_name;  // "<driver>" for the application driver.
  std::string dst_name;
  InterfaceId iid;
  std::string interface_name;  // Empty when no registry was supplied.
  MethodIndex method = 0;
  std::string method_name;
  uint64_t calls = 0;
  uint64_t bytes = 0;
  double seconds = 0.0;  // Predicted wire time under the network profile.
  bool cacheable = false;
};

// Ranks the cut-crossing calls of `profile` under `distribution`, heaviest
// first. `interfaces` (optional) resolves interface and method names and
// the cacheable flag. At most `max_spots` entries.
std::vector<HotSpot> FindHotSpots(const IccProfile& profile,
                                  const Distribution& distribution,
                                  const NetworkProfile& network,
                                  const InterfaceRegistry* interfaces = nullptr,
                                  size_t max_spots = 16);

// Renders the report the paper describes showing developers where custom
// marshaling/caching would pay.
std::string HotSpotReport(const std::vector<HotSpot>& spots);

}  // namespace coign

#endif  // COIGN_SRC_ANALYSIS_HOTSPOTS_H_
