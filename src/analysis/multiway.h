// Multi-machine partitioning — the paper's future-work extension.
//
// "The problem of partitioning applications across three or more machines
// is provably NP-hard [13]. Numerous heuristic algorithms exist for
// multi-way graph cutting." (paper §2) This engine applies the isolation
// heuristic (src/mincut/multiway.h) to the same concrete graph the
// two-way engine builds: one terminal per machine, API pins mapped to the
// caller-specified machines, non-remotable pairs still welded together.

#ifndef COIGN_SRC_ANALYSIS_MULTIWAY_H_
#define COIGN_SRC_ANALYSIS_MULTIWAY_H_

#include <utility>
#include <vector>

#include "src/graph/concrete_graph.h"
#include "src/graph/distribution.h"
#include "src/net/network_profiler.h"
#include "src/profile/icc_profile.h"
#include "src/support/status.h"

namespace coign {

struct MultiwayOptions {
  // Number of machines; machine 0 is the client (GUI + driver).
  int machine_count = 3;
  // Machine that GUI-pinned classifications are forced to.
  MachineId gui_machine = 0;
  // Machine that storage/ODBC-pinned classifications are forced to
  // (typically the last machine: the database/file server).
  MachineId storage_machine = 2;
  // Programmer/administrator pins (absolute constraints, paper §4.3) — the
  // usual way intermediate tiers acquire anchors.
  std::vector<std::pair<ClassificationId, MachineId>> extra_pins;
};

struct MultiwayAnalysisResult {
  Distribution distribution;  // Classification → machine in [0, k).
  double crossing_seconds = 0.0;      // Predicted inter-machine communication.
  std::vector<size_t> classifications_per_machine;
  std::vector<uint64_t> instances_per_machine;
};

// Partitions the profile's classifications across `machine_count` machines.
Result<MultiwayAnalysisResult> AnalyzeMultiway(const IccProfile& profile,
                                               const NetworkProfile& network,
                                               const MultiwayOptions& options);

// Predicted communication of a multi-machine distribution (every
// cross-machine pair counts, whatever the machines).
double PredictMultiwayCommunicationSeconds(const IccProfile& profile,
                                           const Distribution& distribution,
                                           const NetworkProfile& network);

}  // namespace coign

#endif  // COIGN_SRC_ANALYSIS_MULTIWAY_H_
