// Execution-time prediction (paper §4.6, Table 5).
//
// Coign's model of application execution time under a distribution:
// profiled local compute plus predicted inter-machine communication time.
// The paper validates this model against measured runs (error ≤ 8 %); our
// Table 5 bench does the same against the simulator's measured runs.
//
// Everything here stays in double seconds. Quantization to the min-cut
// layer's fixed-point CapUnits happens only at the flow-network boundary
// in the analysis engine (see SecondsToCapUnits), never in prediction.

#ifndef COIGN_SRC_ANALYSIS_PREDICTION_H_
#define COIGN_SRC_ANALYSIS_PREDICTION_H_

#include "src/graph/distribution.h"
#include "src/net/network_profiler.h"
#include "src/profile/icc_profile.h"

namespace coign {

struct ExecutionPrediction {
  double compute_seconds = 0.0;
  double communication_seconds = 0.0;

  double total_seconds() const { return compute_seconds + communication_seconds; }
};

// Predicts a scenario's execution time under `distribution`, given its
// profile and a network profile.
ExecutionPrediction PredictExecutionTime(const IccProfile& profile,
                                         const Distribution& distribution,
                                         const NetworkProfile& network);

// Predicted communication-only time (the Table 4 quantity).
double PredictCommunicationSeconds(const IccProfile& profile,
                                   const Distribution& distribution,
                                   const NetworkProfile& network);

}  // namespace coign

#endif  // COIGN_SRC_ANALYSIS_PREDICTION_H_
