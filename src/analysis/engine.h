// The profile analysis engine (paper §2).
//
// Pipeline: ICC profile + location constraints → abstract ICC graph →
// (× network profile) → concrete graph → minimum cut → distribution.
// The cut is the exact two-way lift-to-front algorithm; Edmonds-Karp is
// available for cross-checking and ablation.

#ifndef COIGN_SRC_ANALYSIS_ENGINE_H_
#define COIGN_SRC_ANALYSIS_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/graph/concrete_graph.h"
#include "src/graph/constraints.h"
#include "src/graph/distribution.h"
#include "src/graph/icc_graph.h"
#include "src/mincut/flow_network.h"
#include "src/net/network_profiler.h"
#include "src/profile/icc_profile.h"
#include "src/support/status.h"

namespace coign {

enum class CutAlgorithm {
  kRelabelToFront,  // The paper's lift-to-front min-cut.
  kEdmondsKarp,     // Baseline for verification/ablation.
};

struct AnalysisOptions {
  CutAlgorithm algorithm = CutAlgorithm::kRelabelToFront;
  // Extra explicit constraints merged on top of API-derived ones.
  LocationConstraints extra_constraints;
  // When false, API-derived pins are skipped (ablation).
  bool derive_api_constraints = true;
};

struct CutEdgeReport {
  ClassificationId client_side = kNoClassification;
  ClassificationId server_side = kNoClassification;
  double seconds = 0.0;
};

struct AnalysisResult {
  Distribution distribution;
  // The exact fixed-point cut value (picosecond units) the min-cut layer
  // chose — both algorithms return this identical integer. Reports convert
  // it back to seconds with CapUnitsToSeconds for display.
  CapUnits cut_value_units = 0;
  // Predicted inter-machine communication time of the chosen distribution.
  double predicted_comm_seconds = 0.0;
  // Communication time if every pair were split — the graph's total weight.
  double total_comm_seconds = 0.0;
  // Classifications per side.
  size_t client_classifications = 0;
  size_t server_classifications = 0;
  // Profiled instances per side (what the paper's figures count).
  uint64_t client_instances = 0;
  uint64_t server_instances = 0;
  // Pairs joined by non-remotable interfaces (solid black lines in Figs 4-5).
  size_t non_remotable_pairs = 0;
  // Crossing communication edges, heaviest first.
  std::vector<CutEdgeReport> cut_edges;
};

// Re-entrancy contract: Analyze is const and keeps all working state
// (graphs, flow network, cut) on the stack of the call; the min-cut layer
// underneath likewise operates on per-call copies. One engine may serve
// concurrent Analyze calls from many threads — the fleet partitioning
// service computes per-cohort cuts in parallel through a single engine.
class ProfileAnalysisEngine {
 public:
  explicit ProfileAnalysisEngine(AnalysisOptions options = {}) : options_(options) {}

  // Chooses the minimal-communication two-machine distribution.
  Result<AnalysisResult> Analyze(const IccProfile& profile,
                                 const NetworkProfile& network) const;

 private:
  AnalysisOptions options_;
};

}  // namespace coign

#endif  // COIGN_SRC_ANALYSIS_ENGINE_H_
