// The profile analysis engine (paper §2).
//
// Pipeline: ICC profile + location constraints → abstract ICC graph →
// (× network profile) → concrete graph → minimum cut → distribution.
// The production cut is highest-label push-relabel on a flat CSR network,
// warm-startable across calls through a MinCutSession; the paper's
// lift-to-front algorithm and Edmonds-Karp remain selectable for
// cross-checking and ablation. All three return the identical exact cut:
// for a maximum flow the residual-reachable source side is the unique
// minimal minimum cut, so the distribution does not depend on the
// algorithm (or on warm vs cold starts).

#ifndef COIGN_SRC_ANALYSIS_ENGINE_H_
#define COIGN_SRC_ANALYSIS_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/graph/concrete_graph.h"
#include "src/graph/constraints.h"
#include "src/graph/distribution.h"
#include "src/graph/icc_graph.h"
#include "src/mincut/flow_network.h"
#include "src/mincut/incremental.h"
#include "src/net/network_profiler.h"
#include "src/profile/icc_profile.h"
#include "src/support/status.h"

namespace coign {

enum class CutAlgorithm {
  kPushRelabel,     // Production: highest-label push-relabel, CSR, warm-startable.
  kRelabelToFront,  // The paper's lift-to-front min-cut (differential oracle).
  kEdmondsKarp,     // Baseline for verification/ablation.
};

struct AnalysisOptions {
  CutAlgorithm algorithm = CutAlgorithm::kPushRelabel;
  // Extra explicit constraints merged on top of API-derived ones.
  LocationConstraints extra_constraints;
  // When false, API-derived pins are skipped (ablation).
  bool derive_api_constraints = true;
};

struct CutEdgeReport {
  ClassificationId client_side = kNoClassification;
  ClassificationId server_side = kNoClassification;
  double seconds = 0.0;
};

struct AnalysisResult {
  Distribution distribution;
  // The exact fixed-point cut value (picosecond units) the min-cut layer
  // chose — both algorithms return this identical integer. Reports convert
  // it back to seconds with CapUnitsToSeconds for display.
  CapUnits cut_value_units = 0;
  // Predicted inter-machine communication time of the chosen distribution.
  double predicted_comm_seconds = 0.0;
  // Communication time if every pair were split — the graph's total weight.
  double total_comm_seconds = 0.0;
  // Classifications per side.
  size_t client_classifications = 0;
  size_t server_classifications = 0;
  // Profiled instances per side (what the paper's figures count).
  uint64_t client_instances = 0;
  uint64_t server_instances = 0;
  // Pairs joined by non-remotable interfaces (solid black lines in Figs 4-5).
  size_t non_remotable_pairs = 0;
  // Crossing communication edges, heaviest first.
  std::vector<CutEdgeReport> cut_edges;
};

// Warm-start cut state carried across Analyze calls. A session retains
// the CSR flow network and the previous maximum flow; when the next
// Analyze sees the same graph topology it applies capacity drift as
// deltas and resumes the solve instead of starting cold, and when the
// whole graph (topology + capacities) is byte-identical it returns the
// previous cut outright. Results are bit-for-bit identical with and
// without a session — the session only changes how much work the solve
// performs. Each session belongs to exactly one caller thread at a time
// (the fleet service keeps one per worker slot; the online repartitioner
// keeps one per policy).
class MinCutSession {
 public:
  MinCutSession() = default;

  // Cumulative solver work and warm-start accounting across the
  // session's lifetime (a fingerprint short-circuit counts as a
  // warm-start hit whose entire flow is reused).
  const MinCutSolveStats& stats() const { return stats_; }

 private:
  friend class ProfileAnalysisEngine;

  IncrementalMinCut incremental_;
  CutResult last_cut_;
  MinCutSolveStats stats_;
  uint64_t topology_signature_ = 0;
  uint64_t graph_fingerprint_ = 0;
  bool has_cut_ = false;
};

// Re-entrancy contract: Analyze is const and keeps all working state
// (graphs, flow network, cut) on the stack of the call; the min-cut layer
// underneath likewise operates on per-call state. One engine may serve
// concurrent Analyze calls from many threads — the fleet partitioning
// service computes per-cohort cuts in parallel through a single engine.
// The session overload concentrates all cross-call mutation in the
// caller-owned MinCutSession, so concurrency is preserved as long as a
// given session is used by one thread at a time.
class ProfileAnalysisEngine {
 public:
  explicit ProfileAnalysisEngine(AnalysisOptions options = {}) : options_(options) {}

  // Chooses the minimal-communication two-machine distribution.
  Result<AnalysisResult> Analyze(const IccProfile& profile,
                                 const NetworkProfile& network) const;

  // Same, reusing `session` to warm-start the cut when the graph repeats
  // or drifts. Null session behaves exactly like the overload above.
  Result<AnalysisResult> Analyze(const IccProfile& profile, const NetworkProfile& network,
                                 MinCutSession* session) const;

 private:
  CutResult SolveWithSession(const ConcreteGraph& concrete, MinCutSession* session) const;

  AnalysisOptions options_;
};

}  // namespace coign

#endif  // COIGN_SRC_ANALYSIS_ENGINE_H_
