#include "src/analysis/hotspots.h"

#include <algorithm>

#include "src/support/str_util.h"

namespace coign {
namespace {

std::string NameOf(const IccProfile& profile, ClassificationId id) {
  if (id == kNoClassification) {
    return "<driver>";
  }
  const ClassificationInfo* info = profile.FindClassification(id);
  return info != nullptr ? info->class_name : StrFormat("c%u", id);
}

MachineId MachineOf(const Distribution& distribution, ClassificationId id) {
  return id == kNoClassification ? kClientMachine : distribution.MachineFor(id);
}

}  // namespace

std::vector<HotSpot> FindHotSpots(const IccProfile& profile,
                                  const Distribution& distribution,
                                  const NetworkProfile& network,
                                  const InterfaceRegistry* interfaces, size_t max_spots) {
  std::vector<HotSpot> spots;
  for (const auto& [key, summary] : profile.calls()) {
    if (MachineOf(distribution, key.src) == MachineOf(distribution, key.dst)) {
      continue;  // Stays on one machine: not on the wire.
    }
    HotSpot spot;
    spot.src = key.src;
    spot.dst = key.dst;
    spot.src_name = NameOf(profile, key.src);
    spot.dst_name = NameOf(profile, key.dst);
    spot.iid = key.iid;
    spot.method = key.method;
    spot.calls = summary.call_count();
    spot.bytes = summary.total_bytes();
    const double messages = static_cast<double>(summary.requests.total_count() +
                                                summary.replies.total_count());
    spot.seconds = messages * network.per_message_seconds +
                   static_cast<double>(spot.bytes) * network.seconds_per_byte;
    if (interfaces != nullptr) {
      const InterfaceDesc* iface = interfaces->Lookup(key.iid);
      if (iface != nullptr) {
        spot.interface_name = iface->name;
        const MethodDesc* method = iface->FindMethod(key.method);
        if (method != nullptr) {
          spot.method_name = method->name;
          spot.cacheable = method->cacheable;
        }
      }
    }
    spots.push_back(std::move(spot));
  }
  std::sort(spots.begin(), spots.end(),
            [](const HotSpot& a, const HotSpot& b) { return a.seconds > b.seconds; });
  if (spots.size() > max_spots) {
    spots.resize(max_spots);
  }
  return spots;
}

std::string HotSpotReport(const std::vector<HotSpot>& spots) {
  std::string out = "Communication hot spots (crossing the chosen cut, heaviest first):\n";
  for (const HotSpot& spot : spots) {
    const std::string call_site =
        spot.interface_name.empty()
            ? StrFormat("method %u", spot.method)
            : StrFormat("%s::%s", spot.interface_name.c_str(), spot.method_name.c_str());
    out += StrFormat("  %-34s %-22s -> %-22s %6llu calls %10llu B %9.4f s%s\n",
                     call_site.c_str(), spot.src_name.c_str(), spot.dst_name.c_str(),
                     static_cast<unsigned long long>(spot.calls),
                     static_cast<unsigned long long>(spot.bytes), spot.seconds,
                     spot.cacheable ? "  [cacheable]" : "");
  }
  if (spots.empty()) {
    out += "  (none: the distribution crosses no communication)\n";
  }
  return out;
}

}  // namespace coign
