#include "src/analysis/multiway.h"

#include "src/com/class_registry.h"
#include "src/graph/constraints.h"
#include "src/graph/icc_graph.h"
#include "src/mincut/multiway.h"

namespace coign {

double PredictMultiwayCommunicationSeconds(const IccProfile& profile,
                                           const Distribution& distribution,
                                           const NetworkProfile& network) {
  double seconds = 0.0;
  for (const auto& [key, summary] : profile.calls()) {
    const MachineId src =
        key.src == kNoClassification ? kClientMachine : distribution.MachineFor(key.src);
    const MachineId dst =
        key.dst == kNoClassification ? kClientMachine : distribution.MachineFor(key.dst);
    if (src == dst) {
      continue;
    }
    const double messages = static_cast<double>(summary.requests.total_count() +
                                                summary.replies.total_count());
    const double bytes = static_cast<double>(summary.requests.total_bytes() +
                                             summary.replies.total_bytes());
    seconds += messages * network.per_message_seconds + bytes * network.seconds_per_byte;
  }
  return seconds;
}

Result<MultiwayAnalysisResult> AnalyzeMultiway(const IccProfile& profile,
                                               const NetworkProfile& network,
                                               const MultiwayOptions& options) {
  if (options.machine_count < 2) {
    return InvalidArgumentError("multiway partitioning needs at least two machines");
  }
  if (options.gui_machine < 0 || options.gui_machine >= options.machine_count ||
      options.storage_machine < 0 || options.storage_machine >= options.machine_count) {
    return InvalidArgumentError("pin machines out of range");
  }
  if (profile.empty()) {
    return FailedPreconditionError("cannot analyze an empty profile");
  }

  const int k = options.machine_count;
  const std::vector<ClassificationId> ids = profile.SortedClassificationIds();
  const int node_count = k + static_cast<int>(ids.size());

  std::unordered_map<ClassificationId, int> index;
  for (size_t i = 0; i < ids.size(); ++i) {
    index.emplace(ids[i], k + static_cast<int>(i));
  }
  auto node_of = [&](ClassificationId id) -> int {
    if (id == kNoClassification) {
      return options.gui_machine;  // The driver lives with the GUI.
    }
    auto it = index.find(id);
    return it == index.end() ? options.gui_machine : it->second;
  };

  const AbstractIccGraph abstract = AbstractIccGraph::FromProfile(profile);
  EdgeList edges;
  for (const AbstractIccGraph::PairKey& pair : abstract.SortedPairs()) {
    const AbstractIccGraph::Edge& edge = abstract.edges().at(pair);
    const int a = node_of(pair.a);
    const int b = node_of(pair.b);
    if (a == b) {
      continue;
    }
    // Quantization boundary for the multiway path: seconds -> CapUnits
    // once per edge, same rule as the two-way engine.
    edges.emplace_back(a, b, SecondsToCapUnits(EdgeSeconds(edge, network)));
    if (edge.MustColocate()) {
      edges.emplace_back(a, b, kInfiniteCapacity);
    }
  }

  // Programmer/administrator pins.
  for (const auto& [id, machine] : options.extra_pins) {
    if (machine < 0 || machine >= k) {
      return InvalidArgumentError("extra pin machine out of range");
    }
    auto it = index.find(id);
    if (it != index.end()) {
      edges.emplace_back(machine, it->second, kInfiniteCapacity);
    }
  }

  // API pins.
  for (ClassificationId id : ids) {
    const ClassificationInfo* info = profile.FindClassification(id);
    if (info->api_usage & kApiGui) {
      edges.emplace_back(options.gui_machine, index.at(id), kInfiniteCapacity);
    } else if (info->api_usage & (kApiStorage | kApiOdbc)) {
      edges.emplace_back(options.storage_machine, index.at(id), kInfiniteCapacity);
    }
  }

  std::vector<int> terminals(static_cast<size_t>(k));
  for (int t = 0; t < k; ++t) {
    terminals[static_cast<size_t>(t)] = t;
  }
  const MultiwayCutResult cut = MultiwayCutIsolation(node_count, edges, terminals);
  if (cut.total_weight == kInfiniteCapacity) {
    return FailedPreconditionError("multiway constraints unsatisfiable");
  }

  MultiwayAnalysisResult result;
  result.classifications_per_machine.assign(static_cast<size_t>(k), 0);
  result.instances_per_machine.assign(static_cast<size_t>(k), 0);
  for (size_t i = 0; i < ids.size(); ++i) {
    const int machine = cut.assignment[static_cast<size_t>(k) + i];
    result.distribution.placement[ids[i]] = machine;
    result.classifications_per_machine[static_cast<size_t>(machine)] += 1;
    const ClassificationInfo* info = profile.FindClassification(ids[i]);
    result.instances_per_machine[static_cast<size_t>(machine)] += info->instance_count;
  }
  result.distribution.default_machine = options.gui_machine;
  result.crossing_seconds =
      PredictMultiwayCommunicationSeconds(profile, result.distribution, network);
  return result;
}

}  // namespace coign
