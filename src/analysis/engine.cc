#include "src/analysis/engine.h"

#include <algorithm>

#include "src/mincut/compact_flow_network.h"
#include "src/mincut/edmonds_karp.h"
#include "src/mincut/relabel_to_front.h"

namespace coign {
namespace {

// Per-edge capacity in exact units — the quantization boundary (see the
// comment at the FlowNetwork construction below).
CapUnits EdgeCapacity(const ConcreteEdge& edge) {
  return edge.constraint ? kInfiniteCapacity : SecondsToCapUnits(edge.seconds);
}

struct GraphSignatures {
  uint64_t topology = 0;  // Node count + edge endpoints.
  uint64_t full = 0;      // Topology + exact capacities.
};

GraphSignatures FingerprintConcrete(const ConcreteGraph& concrete) {
  uint64_t hash = 14695981039346656037ull;
  const auto mix = [&hash](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (byte * 8)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  GraphSignatures signatures;
  mix(static_cast<uint64_t>(concrete.node_count()));
  for (const ConcreteEdge& edge : concrete.edges()) {
    mix(static_cast<uint64_t>(edge.a));
    mix(static_cast<uint64_t>(edge.b));
  }
  signatures.topology = hash;
  for (const ConcreteEdge& edge : concrete.edges()) {
    mix(static_cast<uint64_t>(EdgeCapacity(edge)));
  }
  signatures.full = hash;
  return signatures;
}

}  // namespace

CutResult ProfileAnalysisEngine::SolveWithSession(const ConcreteGraph& concrete,
                                                  MinCutSession* session) const {
  const GraphSignatures signatures = FingerprintConcrete(concrete);
  if (session->has_cut_ && signatures.full == session->graph_fingerprint_) {
    // Unchanged window: the previous cut is the answer. Counts as a
    // warm-start hit whose entire flow was reused.
    ++session->stats_.warm_start_hits;
    if (session->last_cut_.cut_value != kInfiniteCapacity) {
      session->stats_.flow_reused_units =
          SatAdd(session->stats_.flow_reused_units, session->last_cut_.cut_value);
    }
    return session->last_cut_;
  }
  if (!session->has_cut_ || signatures.topology != session->topology_signature_) {
    // New or re-shaped graph: build the CSR network directly from the
    // concrete edges (edge id == concrete edge index, which is what the
    // delta path below relies on).
    CompactFlowNetwork network(concrete.node_count());
    for (const ConcreteEdge& edge : concrete.edges()) {
      network.AddEdge(edge.a, edge.b, EdgeCapacity(edge));
    }
    network.Finalize();
    session->incremental_.Reset(std::move(network), ConcreteGraph::kClientNode,
                                ConcreteGraph::kServerNode);
    session->topology_signature_ = signatures.topology;
  } else {
    // Same topology, drifted capacities: stage deltas against the
    // retained flow.
    const auto& edges = concrete.edges();
    for (size_t i = 0; i < edges.size(); ++i) {
      session->incremental_.SetEdgeCapacity(static_cast<int>(i), EdgeCapacity(edges[i]));
    }
  }
  const CutResult cut = session->incremental_.Solve();
  session->stats_.Accumulate(session->incremental_.last_stats());
  session->graph_fingerprint_ = signatures.full;
  session->last_cut_ = cut;
  session->has_cut_ = true;
  return cut;
}

Result<AnalysisResult> ProfileAnalysisEngine::Analyze(const IccProfile& profile,
                                                      const NetworkProfile& network) const {
  return Analyze(profile, network, nullptr);
}

Result<AnalysisResult> ProfileAnalysisEngine::Analyze(const IccProfile& profile,
                                                      const NetworkProfile& network,
                                                      MinCutSession* session) const {
  if (profile.empty()) {
    return FailedPreconditionError("cannot analyze an empty profile");
  }

  // Constraints: static API analysis + programmer-supplied extras.
  LocationConstraints constraints = options_.derive_api_constraints
                                        ? LocationConstraints::FromProfile(profile)
                                        : LocationConstraints();
  for (const auto& [id, machine] : options_.extra_constraints.absolute()) {
    constraints.PinAbsolute(id, machine);
  }
  for (const auto& [a, b] : options_.extra_constraints.colocated()) {
    constraints.Colocate(a, b);
  }

  const AbstractIccGraph abstract = AbstractIccGraph::FromProfile(profile);
  const ConcreteGraph concrete = ConcreteGraph::Build(abstract, network, constraints);

  // The quantization boundary: predicted seconds become integer CapUnits
  // here, exactly once per edge (rounding rule and error bound documented
  // at SecondsToCapUnits; EdgeCapacity above applies it). Everything
  // below the boundary — all cut algorithms, the cut value, infeasibility
  // detection — is exact 64-bit arithmetic; everything above (prediction,
  // reports) stays in seconds.
  CutResult cut;
  if (options_.algorithm == CutAlgorithm::kPushRelabel) {
    // Production path: flat CSR network, built straight from the concrete
    // edges. A caller-provided session warm-starts across calls; without
    // one the solve is cold but still avoids the adjacency-list network.
    MinCutSession local_session;
    cut = SolveWithSession(concrete, session != nullptr ? session : &local_session);
  } else {
    FlowNetwork flow(concrete.node_count());
    for (const ConcreteEdge& edge : concrete.edges()) {
      flow.AddEdge(edge.a, edge.b, EdgeCapacity(edge));
    }
    cut = options_.algorithm == CutAlgorithm::kRelabelToFront
              ? MinCutRelabelToFront(flow, ConcreteGraph::kClientNode,
                                     ConcreteGraph::kServerNode)
              : MinCutEdmondsKarp(flow, ConcreteGraph::kClientNode, ConcreteGraph::kServerNode);
  }

  if (cut.cut_value == kInfiniteCapacity) {
    return FailedPreconditionError(
        "constraints are unsatisfiable: a constraint edge crosses every cut");
  }

  AnalysisResult result;
  result.cut_value_units = cut.cut_value;
  result.total_comm_seconds = concrete.TotalCommunicationSeconds();

  // Build the classification → machine map from the cut sides.
  for (int node = 2; node < concrete.node_count(); ++node) {
    const ClassificationId id = concrete.ClassificationAt(node);
    const bool on_client = cut.in_source_side[static_cast<size_t>(node)];
    result.distribution.placement[id] = on_client ? kClientMachine : kServerMachine;
    const ClassificationInfo* info = profile.FindClassification(id);
    const uint64_t instances = info != nullptr ? info->instance_count : 0;
    if (on_client) {
      ++result.client_classifications;
      result.client_instances += instances;
    } else {
      ++result.server_classifications;
      result.server_instances += instances;
    }
  }
  result.distribution.default_machine = kClientMachine;

  // Crossing communication edges and the exact predicted communication time
  // (recomputed from the concrete edges: the flow value is equal, but this
  // also yields the per-edge report).
  for (const ConcreteEdge& edge : concrete.edges()) {
    if (edge.constraint) {
      continue;
    }
    const bool a_client = cut.in_source_side[static_cast<size_t>(edge.a)];
    const bool b_client = cut.in_source_side[static_cast<size_t>(edge.b)];
    if (a_client == b_client) {
      continue;
    }
    result.predicted_comm_seconds += edge.seconds;
    CutEdgeReport report;
    const int client_node = a_client ? edge.a : edge.b;
    const int server_node = a_client ? edge.b : edge.a;
    report.client_side = client_node >= 2 ? concrete.ClassificationAt(client_node)
                                          : kNoClassification;
    report.server_side = server_node >= 2 ? concrete.ClassificationAt(server_node)
                                          : kNoClassification;
    report.seconds = edge.seconds;
    result.cut_edges.push_back(report);
  }
  std::sort(result.cut_edges.begin(), result.cut_edges.end(),
            [](const CutEdgeReport& x, const CutEdgeReport& y) {
              return x.seconds > y.seconds;
            });

  for (const auto& [pair, edge] : abstract.edges()) {
    if (edge.MustColocate()) {
      ++result.non_remotable_pairs;
    }
  }
  return result;
}

}  // namespace coign
