#include "src/analysis/engine.h"

#include <algorithm>

#include "src/mincut/edmonds_karp.h"
#include "src/mincut/relabel_to_front.h"

namespace coign {

Result<AnalysisResult> ProfileAnalysisEngine::Analyze(const IccProfile& profile,
                                                      const NetworkProfile& network) const {
  if (profile.empty()) {
    return FailedPreconditionError("cannot analyze an empty profile");
  }

  // Constraints: static API analysis + programmer-supplied extras.
  LocationConstraints constraints = options_.derive_api_constraints
                                        ? LocationConstraints::FromProfile(profile)
                                        : LocationConstraints();
  for (const auto& [id, machine] : options_.extra_constraints.absolute()) {
    constraints.PinAbsolute(id, machine);
  }
  for (const auto& [a, b] : options_.extra_constraints.colocated()) {
    constraints.Colocate(a, b);
  }

  const AbstractIccGraph abstract = AbstractIccGraph::FromProfile(profile);
  const ConcreteGraph concrete = ConcreteGraph::Build(abstract, network, constraints);

  // The quantization boundary: predicted seconds become integer CapUnits
  // here, exactly once per edge (rounding rule and error bound documented
  // at SecondsToCapUnits). Everything below the boundary — both cut
  // algorithms, the cut value, infeasibility detection — is exact 64-bit
  // arithmetic; everything above (prediction, reports) stays in seconds.
  FlowNetwork flow(concrete.node_count());
  for (const ConcreteEdge& edge : concrete.edges()) {
    flow.AddEdge(edge.a, edge.b,
                 edge.constraint ? kInfiniteCapacity : SecondsToCapUnits(edge.seconds));
  }

  const CutResult cut =
      options_.algorithm == CutAlgorithm::kRelabelToFront
          ? MinCutRelabelToFront(flow, ConcreteGraph::kClientNode, ConcreteGraph::kServerNode)
          : MinCutEdmondsKarp(flow, ConcreteGraph::kClientNode, ConcreteGraph::kServerNode);

  if (cut.cut_value == kInfiniteCapacity) {
    return FailedPreconditionError(
        "constraints are unsatisfiable: a constraint edge crosses every cut");
  }

  AnalysisResult result;
  result.cut_value_units = cut.cut_value;
  result.total_comm_seconds = concrete.TotalCommunicationSeconds();

  // Build the classification → machine map from the cut sides.
  for (int node = 2; node < concrete.node_count(); ++node) {
    const ClassificationId id = concrete.ClassificationAt(node);
    const bool on_client = cut.in_source_side[static_cast<size_t>(node)];
    result.distribution.placement[id] = on_client ? kClientMachine : kServerMachine;
    const ClassificationInfo* info = profile.FindClassification(id);
    const uint64_t instances = info != nullptr ? info->instance_count : 0;
    if (on_client) {
      ++result.client_classifications;
      result.client_instances += instances;
    } else {
      ++result.server_classifications;
      result.server_instances += instances;
    }
  }
  result.distribution.default_machine = kClientMachine;

  // Crossing communication edges and the exact predicted communication time
  // (recomputed from the concrete edges: the flow value is equal, but this
  // also yields the per-edge report).
  for (const ConcreteEdge& edge : concrete.edges()) {
    if (edge.constraint) {
      continue;
    }
    const bool a_client = cut.in_source_side[static_cast<size_t>(edge.a)];
    const bool b_client = cut.in_source_side[static_cast<size_t>(edge.b)];
    if (a_client == b_client) {
      continue;
    }
    result.predicted_comm_seconds += edge.seconds;
    CutEdgeReport report;
    const int client_node = a_client ? edge.a : edge.b;
    const int server_node = a_client ? edge.b : edge.a;
    report.client_side = client_node >= 2 ? concrete.ClassificationAt(client_node)
                                          : kNoClassification;
    report.server_side = server_node >= 2 ? concrete.ClassificationAt(server_node)
                                          : kNoClassification;
    report.seconds = edge.seconds;
    result.cut_edges.push_back(report);
  }
  std::sort(result.cut_edges.begin(), result.cut_edges.end(),
            [](const CutEdgeReport& x, const CutEdgeReport& y) {
              return x.seconds > y.seconds;
            });

  for (const auto& [pair, edge] : abstract.edges()) {
    if (edge.MustColocate()) {
      ++result.non_remotable_pairs;
    }
  }
  return result;
}

}  // namespace coign
