#include "src/analysis/prediction.h"

namespace coign {
namespace {

MachineId MachineOfClassification(const Distribution& distribution, ClassificationId id) {
  if (id == kNoClassification) {
    return kClientMachine;  // The driver (user/GUI thread) is on the client.
  }
  return distribution.MachineFor(id);
}

}  // namespace

double PredictCommunicationSeconds(const IccProfile& profile,
                                   const Distribution& distribution,
                                   const NetworkProfile& network) {
  double seconds = 0.0;
  for (const auto& [key, summary] : profile.calls()) {
    const MachineId src = MachineOfClassification(distribution, key.src);
    const MachineId dst = MachineOfClassification(distribution, key.dst);
    if (src == dst) {
      continue;
    }
    // Affine model: n messages of total B bytes cost n*a + B*b, regardless
    // of how sizes distribute across the histogram's buckets.
    const double messages = static_cast<double>(summary.requests.total_count() +
                                                summary.replies.total_count());
    const double bytes = static_cast<double>(summary.requests.total_bytes() +
                                             summary.replies.total_bytes());
    seconds += messages * network.per_message_seconds + bytes * network.seconds_per_byte;
  }
  return seconds;
}

ExecutionPrediction PredictExecutionTime(const IccProfile& profile,
                                         const Distribution& distribution,
                                         const NetworkProfile& network) {
  ExecutionPrediction prediction;
  prediction.compute_seconds = profile.total_compute_seconds();
  prediction.communication_seconds =
      PredictCommunicationSeconds(profile, distribution, network);
  return prediction;
}

}  // namespace coign
