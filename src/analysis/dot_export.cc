#include "src/analysis/dot_export.h"

#include <fstream>

#include "src/graph/icc_graph.h"
#include "src/support/str_util.h"

namespace coign {
namespace {

std::string NodeId(ClassificationId id) {
  return id == kNoClassification ? std::string("driver") : StrFormat("c%u", id);
}

std::string Escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string ExportDistributionDot(const IccProfile& profile, const AnalysisResult& result,
                                  const DotExportOptions& options) {
  std::string out = StrFormat("graph \"%s\" {\n", Escape(options.graph_name).c_str());
  out += "  // Coign distribution: filled boxes = server, ellipses = client,\n";
  out += "  // bold black edges = non-distributable interfaces (must colocate).\n";
  out += "  node [fontsize=9];\n  edge [fontsize=8];\n";

  if (options.include_driver) {
    out += "  driver [label=\"<user/driver>\", shape=diamond];\n";
  }
  for (ClassificationId id : profile.SortedClassificationIds()) {
    const ClassificationInfo* info = profile.FindClassification(id);
    const bool on_server = result.distribution.MachineFor(id) == kServerMachine;
    out += StrFormat(
        "  %s [label=\"%s x%llu\", shape=%s%s];\n", NodeId(id).c_str(),
        Escape(info->class_name).c_str(),
        static_cast<unsigned long long>(info->instance_count),
        on_server ? "box" : "ellipse",
        on_server ? ", style=filled, fillcolor=gray75" : "");
  }

  const AbstractIccGraph abstract = AbstractIccGraph::FromProfile(profile);
  for (const AbstractIccGraph::PairKey& pair : abstract.SortedPairs()) {
    const AbstractIccGraph::Edge& edge = abstract.edges().at(pair);
    if (edge.messages.total_bytes() < options.min_edge_bytes && !edge.MustColocate()) {
      continue;
    }
    if (!options.include_driver &&
        (pair.a == kNoClassification || pair.b == kNoClassification)) {
      continue;
    }
    const char* style = edge.MustColocate()
                            ? "color=black, penwidth=2.0"   // Solid black lines.
                            : "color=gray60";               // Distributable.
    out += StrFormat("  %s -- %s [%s, label=\"%llu msgs, %s\"];\n",
                     NodeId(pair.a).c_str(), NodeId(pair.b).c_str(), style,
                     static_cast<unsigned long long>(edge.messages.total_count()),
                     FormatBytes(edge.messages.total_bytes()).c_str());
  }
  out += "}\n";
  return out;
}

Status WriteDistributionDot(const IccProfile& profile, const AnalysisResult& result,
                            const std::string& path, const DotExportOptions& options) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return InternalError("cannot open dot file for writing: " + path);
  }
  file << ExportDistributionDot(profile, result, options);
  if (!file.good()) {
    return InternalError("short write to dot file: " + path);
  }
  return Status::Ok();
}

}  // namespace coign
