#include "src/analysis/report.h"

#include <algorithm>
#include <map>

#include "src/support/str_util.h"

namespace coign {

std::string FigureSummary(const AnalysisResult& result) {
  const uint64_t total = result.client_instances + result.server_instances;
  return StrFormat("Of %llu components, Coign places %llu on the server.",
                   static_cast<unsigned long long>(total),
                   static_cast<unsigned long long>(result.server_instances));
}

std::string DistributionReport(const IccProfile& profile, const AnalysisResult& result,
                               size_t max_cut_edges) {
  std::string out = FigureSummary(result) + "\n";
  out += StrFormat(
      "  classifications: %zu client, %zu server; non-remotable pairs: %zu\n",
      result.client_classifications, result.server_classifications,
      result.non_remotable_pairs);
  out += StrFormat("  predicted communication: %.6f s (of %.6f s total potential)\n",
                   result.predicted_comm_seconds, result.total_comm_seconds);
  out += StrFormat("  exact cut value: %.6f s (%lld units)\n",
                   CapUnitsToSeconds(result.cut_value_units),
                   static_cast<long long>(result.cut_value_units));

  // Server placements grouped by component class.
  std::map<std::string, uint64_t> server_classes;
  for (const auto& [id, machine] : result.distribution.placement) {
    if (machine != kServerMachine) {
      continue;
    }
    const ClassificationInfo* info = profile.FindClassification(id);
    if (info != nullptr) {
      server_classes[info->class_name] += info->instance_count;
    }
  }
  if (!server_classes.empty()) {
    out += "  server components:\n";
    for (const auto& [name, count] : server_classes) {
      out += StrFormat("    %-40s x%llu\n", name.c_str(),
                       static_cast<unsigned long long>(count));
    }
  }

  if (!result.cut_edges.empty()) {
    out += "  heaviest cut edges (client side <-> server side):\n";
    const size_t limit = std::min(max_cut_edges, result.cut_edges.size());
    for (size_t i = 0; i < limit; ++i) {
      const CutEdgeReport& edge = result.cut_edges[i];
      auto name_of = [&profile](ClassificationId id) -> std::string {
        if (id == kNoClassification) {
          return "<driver>";
        }
        const ClassificationInfo* info = profile.FindClassification(id);
        return info != nullptr ? info->class_name : StrFormat("c%u", id);
      };
      out += StrFormat("    %-32s <-> %-32s %.6f s\n", name_of(edge.client_side).c_str(),
                       name_of(edge.server_side).c_str(), edge.seconds);
    }
  }
  return out;
}

}  // namespace coign
