// Human-readable reports of chosen distributions — the textual equivalent
// of the paper's Figures 4-8 ("N of M components placed on the server",
// non-distributable interface counts, heaviest cut edges).

#ifndef COIGN_SRC_ANALYSIS_REPORT_H_
#define COIGN_SRC_ANALYSIS_REPORT_H_

#include <string>

#include "src/analysis/engine.h"
#include "src/profile/icc_profile.h"

namespace coign {

// One-line figure summary: "Of 458 components, Coign places 2 on the server."
std::string FigureSummary(const AnalysisResult& result);

// Detailed report: per-side classification/instance counts, per-class
// server placements, heaviest cut edges, non-remotable pair count.
std::string DistributionReport(const IccProfile& profile, const AnalysisResult& result,
                               size_t max_cut_edges = 8);

}  // namespace coign

#endif  // COIGN_SRC_ANALYSIS_REPORT_H_
