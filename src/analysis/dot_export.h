// Graphviz export of a chosen distribution — the machine-readable form of
// the paper's Figures 4-8, which draw every component instance with gray
// lines for distributable interfaces, solid black lines for
// non-distributable interfaces, and marked nodes for the instances placed
// on the server.

#ifndef COIGN_SRC_ANALYSIS_DOT_EXPORT_H_
#define COIGN_SRC_ANALYSIS_DOT_EXPORT_H_

#include <string>

#include "src/analysis/engine.h"
#include "src/profile/icc_profile.h"

namespace coign {

struct DotExportOptions {
  // Include the pseudo-node for the application driver.
  bool include_driver = true;
  // Suppress edges below this many total bytes to keep large graphs legible.
  uint64_t min_edge_bytes = 0;
  std::string graph_name = "coign";
};

// Renders the classification graph under `result`'s distribution:
// client nodes are plain ellipses, server nodes are filled boxes,
// non-remotable edges are bold black, remotable edges gray with weight
// proportional to traffic.
std::string ExportDistributionDot(const IccProfile& profile, const AnalysisResult& result,
                                  const DotExportOptions& options = {});

// Convenience: writes the DOT text to a file.
Status WriteDistributionDot(const IccProfile& profile, const AnalysisResult& result,
                            const std::string& path, const DotExportOptions& options = {});

}  // namespace coign

#endif  // COIGN_SRC_ANALYSIS_DOT_EXPORT_H_
