#include "src/marshal/ndr.h"

#include <cassert>
#include <cstring>

#include "src/support/str_util.h"

namespace coign {
namespace {

// Wire tags; stable values, part of the format.
enum WireTag : uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt32 = 2,
  kTagInt64 = 3,
  kTagDouble = 4,
  kTagString = 5,
  kTagBlob = 6,
  kTagInterface = 7,
  kTagArray = 8,
  kTagRecord = 9,
};

}  // namespace

void NdrWriter::Align(uint64_t alignment) {
  const uint64_t misalign = offset_ % alignment;
  if (misalign == 0) {
    return;
  }
  for (uint64_t i = misalign; i < alignment; ++i) {
    PutByte(0);
  }
}

void NdrWriter::PutByte(uint8_t b) {
  if (buffer_ != nullptr) {
    buffer_->push_back(b);
  }
  ++offset_;
}

void NdrWriter::PutU16(uint16_t v) {
  PutByte(static_cast<uint8_t>(v));
  PutByte(static_cast<uint8_t>(v >> 8));
}

void NdrWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    PutByte(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void NdrWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    PutByte(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void NdrWriter::PutBlobBytes(const Blob& blob) {
  if (buffer_ == nullptr) {
    // Counting mode: skip generating the pattern.
    offset_ += blob.size;
    return;
  }
  for (uint64_t i = 0; i < blob.size; ++i) {
    PutByte(blob.ByteAt(i));
  }
}

Status NdrWriter::WriteValue(const Value& value) {
  switch (value.kind()) {
    case ValueKind::kNull:
      PutByte(kTagNull);
      return Status::Ok();
    case ValueKind::kBool:
      PutByte(kTagBool);
      Align(4);
      PutU32(value.AsBool() ? 1 : 0);
      return Status::Ok();
    case ValueKind::kInt32:
      PutByte(kTagInt32);
      Align(4);
      PutU32(static_cast<uint32_t>(value.AsInt32()));
      return Status::Ok();
    case ValueKind::kInt64:
      PutByte(kTagInt64);
      Align(8);
      PutU64(static_cast<uint64_t>(value.AsInt64()));
      return Status::Ok();
    case ValueKind::kDouble: {
      PutByte(kTagDouble);
      Align(8);
      uint64_t bits;
      const double d = value.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(bits);
      return Status::Ok();
    }
    case ValueKind::kString: {
      const std::string& s = value.AsString();
      PutByte(kTagString);
      Align(4);
      PutU32(static_cast<uint32_t>(s.size()));
      for (char c : s) {
        PutByte(static_cast<uint8_t>(c));
      }
      Align(4);
      return Status::Ok();
    }
    case ValueKind::kBlob: {
      const Blob& blob = value.AsBlob();
      PutByte(kTagBlob);
      Align(8);
      PutU64(blob.size);
      PutBlobBytes(blob);
      Align(4);
      return Status::Ok();
    }
    case ValueKind::kInterface: {
      // Interface pointers marshal by reference: a fixed-size OBJREF, never
      // a deep copy of the component behind them.
      const ObjectRef& ref = value.AsInterface();
      PutByte(kTagInterface);
      Align(4);
      PutU64(ref.iid.hi);
      PutU64(ref.iid.lo);
      PutU64(ref.instance);
      // Remaining OBJREF body (OXID/OID/IPID/bindings model): zero fill.
      const uint64_t body = kObjRefBytes - 24;
      for (uint64_t i = 0; i < body; ++i) {
        PutByte(0);
      }
      return Status::Ok();
    }
    case ValueKind::kArray: {
      const auto& elements = value.AsArray();
      PutByte(kTagArray);
      Align(4);
      PutU32(static_cast<uint32_t>(elements.size()));
      for (const Value& element : elements) {
        COIGN_RETURN_IF_ERROR(WriteValue(element));
      }
      return Status::Ok();
    }
    case ValueKind::kRecord: {
      const auto& fields = value.AsRecord();
      PutByte(kTagRecord);
      Align(4);
      PutU32(static_cast<uint32_t>(fields.size()));
      for (const auto& [name, field] : fields) {
        PutU16(static_cast<uint16_t>(name.size()));
        for (char c : name) {
          PutByte(static_cast<uint8_t>(c));
        }
        COIGN_RETURN_IF_ERROR(WriteValue(field));
      }
      return Status::Ok();
    }
    case ValueKind::kOpaque:
      return FailedPreconditionError("opaque pointer cannot be marshaled");
  }
  return InternalError("unhandled value kind");
}

Status NdrWriter::WriteMessage(const Message& message) {
  PutU32(static_cast<uint32_t>(message.size()));
  for (const Message::Argument& arg : message.args()) {
    PutU16(static_cast<uint16_t>(arg.name.size()));
    for (char c : arg.name) {
      PutByte(static_cast<uint8_t>(c));
    }
    Align(4);
    COIGN_RETURN_IF_ERROR(WriteValue(arg.value));
  }
  return Status::Ok();
}

Result<uint64_t> WireSize(const Value& value) {
  NdrWriter writer;
  COIGN_RETURN_IF_ERROR(writer.WriteValue(value));
  return writer.bytes_written();
}

Result<uint64_t> WireSize(const Message& message) {
  NdrWriter writer;
  COIGN_RETURN_IF_ERROR(writer.WriteMessage(message));
  return writer.bytes_written();
}

Result<std::vector<uint8_t>> Serialize(const Message& message) {
  std::vector<uint8_t> buffer;
  NdrWriter writer(&buffer);
  COIGN_RETURN_IF_ERROR(writer.WriteMessage(message));
  return buffer;
}

namespace {

class NdrReader {
 public:
  explicit NdrReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  Result<Message> ReadMessage();

 private:
  Status Align(uint64_t alignment) {
    const uint64_t misalign = offset_ % alignment;
    if (misalign != 0) {
      return Skip(alignment - misalign);
    }
    return Status::Ok();
  }

  Status Skip(uint64_t n) {
    if (offset_ + n > bytes_.size()) {
      return OutOfRangeError("truncated NDR stream");
    }
    offset_ += n;
    return Status::Ok();
  }

  Result<uint8_t> GetByte() {
    if (offset_ >= bytes_.size()) {
      return OutOfRangeError("truncated NDR stream");
    }
    return bytes_[offset_++];
  }

  Result<uint16_t> GetU16() {
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      Result<uint8_t> b = GetByte();
      if (!b.ok()) {
        return b.status();
      }
      v |= static_cast<uint16_t>(*b) << (8 * i);
    }
    return v;
  }

  Result<uint32_t> GetU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      Result<uint8_t> b = GetByte();
      if (!b.ok()) {
        return b.status();
      }
      v |= static_cast<uint32_t>(*b) << (8 * i);
    }
    return v;
  }

  Result<uint64_t> GetU64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      Result<uint8_t> b = GetByte();
      if (!b.ok()) {
        return b.status();
      }
      v |= static_cast<uint64_t>(*b) << (8 * i);
    }
    return v;
  }

  Result<std::string> GetString(uint64_t length) {
    if (offset_ + length > bytes_.size()) {
      return OutOfRangeError("truncated NDR string");
    }
    std::string out(reinterpret_cast<const char*>(bytes_.data() + offset_), length);
    offset_ += length;
    return out;
  }

  Result<Value> ReadValue();

  std::span<const uint8_t> bytes_;
  uint64_t offset_ = 0;
};

Result<Value> NdrReader::ReadValue() {
  Result<uint8_t> tag = GetByte();
  if (!tag.ok()) {
    return tag.status();
  }
  switch (*tag) {
    case kTagNull:
      return Value::Null();
    case kTagBool: {
      COIGN_RETURN_IF_ERROR(Align(4));
      Result<uint32_t> v = GetU32();
      if (!v.ok()) {
        return v.status();
      }
      return Value::FromBool(*v != 0);
    }
    case kTagInt32: {
      COIGN_RETURN_IF_ERROR(Align(4));
      Result<uint32_t> v = GetU32();
      if (!v.ok()) {
        return v.status();
      }
      return Value::FromInt32(static_cast<int32_t>(*v));
    }
    case kTagInt64: {
      COIGN_RETURN_IF_ERROR(Align(8));
      Result<uint64_t> v = GetU64();
      if (!v.ok()) {
        return v.status();
      }
      return Value::FromInt64(static_cast<int64_t>(*v));
    }
    case kTagDouble: {
      COIGN_RETURN_IF_ERROR(Align(8));
      Result<uint64_t> v = GetU64();
      if (!v.ok()) {
        return v.status();
      }
      double d;
      std::memcpy(&d, &*v, sizeof(d));
      return Value::FromDouble(d);
    }
    case kTagString: {
      COIGN_RETURN_IF_ERROR(Align(4));
      Result<uint32_t> length = GetU32();
      if (!length.ok()) {
        return length.status();
      }
      Result<std::string> s = GetString(*length);
      if (!s.ok()) {
        return s.status();
      }
      COIGN_RETURN_IF_ERROR(Align(4));
      return Value::FromString(std::move(*s));
    }
    case kTagBlob: {
      COIGN_RETURN_IF_ERROR(Align(8));
      Result<uint64_t> length = GetU64();
      if (!length.ok()) {
        return length.status();
      }
      if (offset_ + *length > bytes_.size()) {
        return OutOfRangeError("truncated NDR blob");
      }
      std::vector<uint8_t> data(bytes_.begin() + static_cast<ptrdiff_t>(offset_),
                                bytes_.begin() + static_cast<ptrdiff_t>(offset_ + *length));
      offset_ += *length;
      COIGN_RETURN_IF_ERROR(Align(4));
      return Value::FromBytes(std::move(data));
    }
    case kTagInterface: {
      COIGN_RETURN_IF_ERROR(Align(4));
      ObjectRef ref;
      Result<uint64_t> hi = GetU64();
      if (!hi.ok()) {
        return hi.status();
      }
      Result<uint64_t> lo = GetU64();
      if (!lo.ok()) {
        return lo.status();
      }
      Result<uint64_t> instance = GetU64();
      if (!instance.ok()) {
        return instance.status();
      }
      ref.iid = Guid{*hi, *lo};
      ref.instance = *instance;
      COIGN_RETURN_IF_ERROR(Skip(kObjRefBytes - 24));
      return Value::FromInterface(ref);
    }
    case kTagArray: {
      COIGN_RETURN_IF_ERROR(Align(4));
      Result<uint32_t> count = GetU32();
      if (!count.ok()) {
        return count.status();
      }
      std::vector<Value> elements;
      elements.reserve(*count);
      for (uint32_t i = 0; i < *count; ++i) {
        Result<Value> element = ReadValue();
        if (!element.ok()) {
          return element.status();
        }
        elements.push_back(std::move(*element));
      }
      return Value::FromArray(std::move(elements));
    }
    case kTagRecord: {
      COIGN_RETURN_IF_ERROR(Align(4));
      Result<uint32_t> count = GetU32();
      if (!count.ok()) {
        return count.status();
      }
      std::vector<std::pair<std::string, Value>> fields;
      fields.reserve(*count);
      for (uint32_t i = 0; i < *count; ++i) {
        Result<uint16_t> name_length = GetU16();
        if (!name_length.ok()) {
          return name_length.status();
        }
        Result<std::string> name = GetString(*name_length);
        if (!name.ok()) {
          return name.status();
        }
        Result<Value> field = ReadValue();
        if (!field.ok()) {
          return field.status();
        }
        fields.emplace_back(std::move(*name), std::move(*field));
      }
      return Value::FromRecord(std::move(fields));
    }
    default:
      return InvalidArgumentError(StrFormat("unknown NDR tag %u", *tag));
  }
}

Result<Message> NdrReader::ReadMessage() {
  Result<uint32_t> count = GetU32();
  if (!count.ok()) {
    return count.status();
  }
  Message message;
  for (uint32_t i = 0; i < *count; ++i) {
    Result<uint16_t> name_length = GetU16();
    if (!name_length.ok()) {
      return name_length.status();
    }
    Result<std::string> name = GetString(*name_length);
    if (!name.ok()) {
      return name.status();
    }
    COIGN_RETURN_IF_ERROR(Align(4));
    Result<Value> value = ReadValue();
    if (!value.ok()) {
      return value.status();
    }
    message.Add(std::move(*name), std::move(*value));
  }
  return message;
}

}  // namespace

Result<Message> Deserialize(std::span<const uint8_t> bytes) {
  NdrReader reader(bytes);
  return reader.ReadMessage();
}

}  // namespace coign
