// Simulated interface proxies and stubs.
//
// During profiling Coign invokes DCOM's proxy/stub code inside the
// application's address space to measure exactly what a call would cost on
// the wire (paper §2). MeasureCall is that measurement: header + deep-copy
// payload for the request, header + payload for the reply. It also reports
// the facts the analysis needs (interface pointers passed, remotability).

#ifndef COIGN_SRC_MARSHAL_PROXY_STUB_H_
#define COIGN_SRC_MARSHAL_PROXY_STUB_H_

#include <cstdint>
#include <vector>

#include "src/com/message.h"
#include "src/com/metadata.h"
#include "src/support/status.h"

namespace coign {

struct WireCall {
  uint64_t request_bytes = 0;  // Header + marshaled [in] parameters.
  uint64_t reply_bytes = 0;    // Header + marshaled [out] parameters.
  // Interface pointers crossing the boundary in either direction.
  std::vector<ObjectRef> passed_interfaces;
  // False when this call could never be remoted (non-remotable interface or
  // opaque parameter); bytes are then a best-effort local estimate of 0
  // payload and the analysis must colocate the endpoints.
  bool remotable = true;

  uint64_t total_bytes() const { return request_bytes + reply_bytes; }
};

// Measures one completed call on `iface`.`method` with input and output
// messages. Never fails: non-marshalable calls come back remotable=false.
WireCall MeasureCall(const InterfaceDesc& iface, MethodIndex method, const Message& in,
                     const Message& out);

// Full proxy/stub round trip for a request message: serialize, transmit
// (the caller models that), deserialize. Exposed so tests can pin sizing to
// real buffers.
Result<Message> RoundTrip(const Message& message);

}  // namespace coign

#endif  // COIGN_SRC_MARSHAL_PROXY_STUB_H_
