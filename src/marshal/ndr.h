// NDR-style marshaling with DCOM deep-copy semantics.
//
// Coign measures "the number of bytes that would be transferred from one
// machine to another if the two communicating components were distributed"
// by running DCOM's own proxy/stub sizing code in-process (paper §2). This
// module is that code path for our component model: it walks Values
// recursively (deep copy), marshals interface pointers by reference (a
// fixed-size OBJREF), and refuses opaque pointers.
//
// Wire format (little-endian, 4-byte alignment between fields):
//   value   := tag:u8 pad-to-4 payload
//   bool    -> u32 (NDR marshals BOOL as 4 bytes)
//   int32   -> u32; int64/double -> u64 (aligned to 8)
//   string  -> len:u32 bytes pad  (conformant array)
//   blob    -> len:u64 bytes pad
//   iface   -> OBJREF (kObjRefBytes, fixed)
//   array   -> count:u32 values...
//   record  -> count:u32 (namelen:u16 name value)...
//
// Sizing and serialization share one code path (a Writer that can run in
// counting-only mode), so WireSize is exact by construction.

#ifndef COIGN_SRC_MARSHAL_NDR_H_
#define COIGN_SRC_MARSHAL_NDR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/com/message.h"
#include "src/com/value.h"
#include "src/support/status.h"

namespace coign {

// Fixed envelope costs, modeled on DCE RPC + ORPC headers.
inline constexpr uint64_t kRequestHeaderBytes = 80;  // RPC header + ORPCTHIS.
inline constexpr uint64_t kReplyHeaderBytes = 60;    // RPC header + ORPCTHAT.
// Marshaled interface pointer: a standard OBJREF (IID + OXID + OID + IPID +
// string bindings, rounded).
inline constexpr uint64_t kObjRefBytes = 68;

// Serializer that can either write bytes or merely count them.
class NdrWriter {
 public:
  // Counting-only writer.
  NdrWriter() : buffer_(nullptr) {}
  // Writing writer.
  explicit NdrWriter(std::vector<uint8_t>* buffer) : buffer_(buffer) {}

  Status WriteValue(const Value& value);
  Status WriteMessage(const Message& message);

  uint64_t bytes_written() const { return offset_; }

 private:
  void Align(uint64_t alignment);
  void PutByte(uint8_t b);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutBlobBytes(const Blob& blob);

  std::vector<uint8_t>* buffer_;
  uint64_t offset_ = 0;
};

// Exact count of payload bytes `value`/`message` marshals to (headers not
// included). Fails on opaque pointers.
Result<uint64_t> WireSize(const Value& value);
Result<uint64_t> WireSize(const Message& message);

// Serializes a message to wire bytes.
Result<std::vector<uint8_t>> Serialize(const Message& message);

// Reconstructs a message from wire bytes. Synthetic blobs come back
// materialized (the receiver sees real bytes, as it would over DCOM).
Result<Message> Deserialize(std::span<const uint8_t> bytes);

}  // namespace coign

#endif  // COIGN_SRC_MARSHAL_NDR_H_
