#include "src/marshal/proxy_stub.h"

#include "src/marshal/ndr.h"

namespace coign {

WireCall MeasureCall(const InterfaceDesc& iface, MethodIndex method, const Message& in,
                     const Message& out) {
  (void)method;
  WireCall wire;
  if (!iface.remotable || in.ContainsOpaque() || out.ContainsOpaque()) {
    wire.remotable = false;
    // Still collect interface pointers: ownership tracking needs them even
    // on non-remotable paths.
    in.CollectInterfaces(&wire.passed_interfaces);
    out.CollectInterfaces(&wire.passed_interfaces);
    return wire;
  }

  Result<uint64_t> request_payload = WireSize(in);
  Result<uint64_t> reply_payload = WireSize(out);
  if (!request_payload.ok() || !reply_payload.ok()) {
    wire.remotable = false;
    return wire;
  }
  wire.request_bytes = kRequestHeaderBytes + *request_payload;
  wire.reply_bytes = kReplyHeaderBytes + *reply_payload;
  in.CollectInterfaces(&wire.passed_interfaces);
  out.CollectInterfaces(&wire.passed_interfaces);
  return wire;
}

Result<Message> RoundTrip(const Message& message) {
  Result<std::vector<uint8_t>> bytes = Serialize(message);
  if (!bytes.ok()) {
    return bytes.status();
  }
  return Deserialize(*bytes);
}

}  // namespace coign
