// Microbenchmark: runtime instrumentation overhead, the paper's §3.2
// numbers — "profiling currently adds up to 85% to application execution
// time (although in most cases the overhead is closer to 45%) ... the
// distribution informer imposes an overhead of less than 3%".
//
// Measures wall time of the same Octarine scenario executed (a) without
// any Coign runtime, (b) under the lightweight distributed-mode runtime
// (distribution informer + null logger), and (c) under full profiling
// instrumentation (profiling informer + profiling logger).

#include <benchmark/benchmark.h>

#include "src/apps/octarine.h"
#include "src/runtime/rte.h"

namespace coign {
namespace {

void RunScenarioOnce(Application& app, ObjectSystem& system, const char* id) {
  Rng rng(5);
  Result<Scenario> scenario = app.FindScenario(id);
  if (!scenario.ok() || !scenario->run(system, rng).ok()) {
    std::abort();
  }
  system.DestroyAll();
}

void BM_Uninstrumented(benchmark::State& state) {
  std::unique_ptr<Application> app = MakeOctarine();
  ObjectSystem system;
  if (!app->Install(&system).ok()) {
    std::abort();
  }
  for (auto _ : state) {
    RunScenarioOnce(*app, system, "o_oldwp0");
  }
}
BENCHMARK(BM_Uninstrumented)->Unit(benchmark::kMillisecond);

void BM_DistributionRuntime(benchmark::State& state) {
  std::unique_ptr<Application> app = MakeOctarine();
  ObjectSystem system;
  if (!app->Install(&system).ok()) {
    std::abort();
  }
  ConfigurationRecord config;
  config.mode = RuntimeMode::kDistributed;  // Everything defaults to client.
  CoignRuntime runtime(&system, config);
  for (auto _ : state) {
    runtime.BeginScenario();
    RunScenarioOnce(*app, system, "o_oldwp0");
  }
}
BENCHMARK(BM_DistributionRuntime)->Unit(benchmark::kMillisecond);

void BM_ProfilingRuntime(benchmark::State& state) {
  std::unique_ptr<Application> app = MakeOctarine();
  ObjectSystem system;
  if (!app->Install(&system).ok()) {
    std::abort();
  }
  ConfigurationRecord config;  // Profiling defaults.
  CoignRuntime runtime(&system, config);
  for (auto _ : state) {
    runtime.BeginScenario();
    RunScenarioOnce(*app, system, "o_oldwp0");
  }
}
BENCHMARK(BM_ProfilingRuntime)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coign

BENCHMARK_MAIN();
