// Ablation: the same application re-partitioned for different networks
// (paper §1/§4.4: "changes in underlying network, from ISDN to 100BaseT to
// ATM to SAN, strain static distributions as bandwidth-to-latency
// tradeoffs change by more than an order of magnitude").
//
// For one workload, Coign re-analyzes per network and the distribution
// (how many components cross) shifts with the bandwidth/latency balance;
// a single static distribution cannot do this.

#include <cstdio>

#include "bench/harness.h"

using namespace coign;  // NOLINT: bench binary.

int main() {
  const char* kScenario = "o_oldbth";
  const NetworkModel kNetworks[] = {
      NetworkModel::Isdn(),    NetworkModel::TenBaseT(), NetworkModel::HundredBaseT(),
      NetworkModel::Atm155(),  NetworkModel::San(),
  };

  Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(kScenario);
  if (!app.ok()) {
    return 1;
  }
  Result<IccProfile> profile = ProfileScenarios(**app, {kScenario});
  if (!profile.ok()) {
    return 1;
  }

  std::printf("Ablation: re-partitioning %s across networks.\n", kScenario);
  PrintRule(86);
  std::printf("%-10s %14s %12s %12s %12s %10s\n", "Network", "Server comps", "Default(s)",
              "Coign(s)", "Savings", "Cut edges");
  PrintRule(86);

  for (const NetworkModel& network : kNetworks) {
    ProfileAnalysisEngine engine;
    Result<AnalysisResult> analysis = engine.Analyze(*profile, FitNetwork(network));
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s: %s\n", network.name.c_str(),
                   analysis.status().ToString().c_str());
      return 1;
    }
    Result<RunMeasurement> default_run = MeasureDefault(**app, kScenario, network);
    Result<RunMeasurement> coign_run =
        MeasureDistributed(**app, kScenario, analysis->distribution, network);
    if (!default_run.ok() || !coign_run.ok()) {
      return 1;
    }
    const double savings =
        default_run->communication_seconds > 0.0
            ? 100.0 * (1.0 - coign_run->communication_seconds /
                                 default_run->communication_seconds)
            : 0.0;
    const FigureCounts counts = CountFigureInstances(**app, *profile, analysis->distribution);
    std::printf("%-10s %14llu %12.3f %12.3f %11.0f%% %10zu\n", network.name.c_str(),
                static_cast<unsigned long long>(counts.on_server),
                default_run->communication_seconds, coign_run->communication_seconds,
                savings, analysis->cut_edges.size());
  }
  PrintRule(86);
  return 0;
}
