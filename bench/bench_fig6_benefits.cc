// Figure 6: the Corporate Benefits distribution. Coign keeps the business
// logic on the middle tier but moves the caching components to the client,
// reducing communication ~35% versus the programmer's 3-tier split (135 of
// 196 components on the middle tier versus the programmer's 187).

#include "bench/figure_common.h"

int main() {
  return coign::RunFigureBench(
      "Figure 6. Corporate Benefits Distribution (bigone).", "b_bigone",
      "Of 196 components in client and middle tier, Coign places 135 on the middle "
      "tier where the programmer placed 187; communication drops ~35%.");
}
