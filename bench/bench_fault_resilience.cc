// Extension: fault resilience of the online repartitioner.
//
// The online loop (bench_online_repartition) assumes the live message
// counts and timings it observes describe the application. Under network
// faults they do not: drops are masked by retries that inflate observed
// per-edge message counts, and latency spikes inflate the live
// per-message estimate the policy prices cuts with. A naive adaptive
// loop ingests those poisoned windows, re-cuts against a transient
// network, migrates real state, and re-cuts back when the episode ends —
// paying migration twice for a distribution that was never better.
//
// The quarantine rule (`QuarantineConfig`) detects fault episodes from
// transport health (faulted-call fraction per epoch) and discards those
// windows wholesale: no weight fold, no estimator update, no evaluation.
// This bench escalates background drop rates over the phase-shifting
// Octarine workload, then adds an episode storm (short latency spikes
// and drop bursts) on top of the 1% level. It asserts the two resilience
// properties the design claims: with quarantine, execution at a 1% drop
// rate stays within 10% of the fault-free adaptive run, and under the
// episode storm the naive loop thrashes (at least 2x the recuts) while
// the quarantined loop keeps adaptation bounded.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/apps/octarine.h"
#include "src/fault/injector.h"
#include "src/online/measure_online.h"

using namespace coign;  // NOLINT: bench binary.

namespace {

struct FaultLevel {
  const char* label;
  double drop;         // Background per-attempt drop probability.
  bool episodes;       // Add scheduled latency/drop episodes.
};

// The episode storm: short, sharp episodes placed at fractions of the
// fault-free horizon — latency spikes interleaved with drop bursts, each
// covering roughly one epoch so the quarantine rule has a clean
// detection target and the naive estimator swings up and decays back
// between episodes.
FaultSchedule EpisodeSchedule(double horizon) {
  std::vector<FaultEpisode> episodes;
  for (int i = 0; i < 8; ++i) {
    FaultEpisode episode;
    episode.kind = i % 2 == 0 ? FaultKind::kLatencySpike : FaultKind::kBandwidthDrop;
    episode.start_seconds = (0.08 + 0.11 * i) * horizon;
    episode.duration_seconds = 0.04 * horizon;
    episode.magnitude = 10.0;
    episodes.push_back(episode);
  }
  return FaultSchedule::FromEpisodes(std::move(episodes));
}

// The corruption storm: one long symmetric corrupt-burst over the middle
// of the run, heavy enough (90% flip probability while the Gilbert chain
// is pinned bad) that an unprotected wire consumes garbage constantly and
// a checksummed one burns most of its retry budget. Scaled to the
// fault-free *adaptive* horizon: the breaker run spends the burst in the
// fast all-local plan, so a storm scaled to the slower static horizon
// would outlive the run and the breaker would never see the link heal.
FaultSchedule CorruptionStorm(double adaptive_horizon) {
  FaultEpisode burst;
  burst.kind = FaultKind::kCorruptBurst;
  burst.start_seconds = 0.1 * adaptive_horizon;
  burst.duration_seconds = 0.3 * adaptive_horizon;
  burst.magnitude = 0.9;
  burst.gilbert.p_good_to_bad = 0.0;
  burst.gilbert.p_bad_to_good = 0.0;
  burst.gilbert.loss_good = 0.9;
  burst.gilbert.loss_bad = 0.9;
  return FaultSchedule::FromEpisodes({burst});
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  BenchTrajectory trajectory("bench_fault_resilience");

  std::unique_ptr<Application> app = MakeOctarine();

  // Same story as bench_online_repartition: profiled on text usage only,
  // workload alternates text and table-mix phases.
  const std::vector<std::string> kTextScenarios = {"o_oldwp0", "o_oldwp3", "o_oldwp7"};
  std::vector<Descriptor> table;
  Result<IccProfile> text_profile =
      ProfileScenarios(*app, kTextScenarios, ClassifierKind::kInternalFunctionCalledBy,
                       kCompleteStackWalk, 17, &table);
  if (!text_profile.ok()) {
    std::fprintf(stderr, "profile: %s\n", text_profile.status().ToString().c_str());
    return 1;
  }

  const NetworkModel network = NetworkModel::TenBaseT();
  const NetworkProfile fitted = FitNetwork(network);
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(*text_profile, fitted);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analyze: %s\n", analysis.status().ToString().c_str());
    return 1;
  }

  const std::vector<OnlinePhase> workload =
      CyclicWorkload({"o_oldwp3", "o_mixed9"}, /*repetitions=*/3, /*cycles=*/4);

  ConfigurationRecord config;
  config.mode = RuntimeMode::kDistributed;
  config.classifier_table = table;
  config.distribution = analysis->distribution;

  OnlineMeasurementOptions base;
  base.network = network;
  base.fitted = fitted;
  base.online.window.decay = 0.5;
  base.online.policy.min_window_messages = 50.0;
  base.online.policy.min_relative_gain = 0.05;
  base.online.policy.horizon_windows = 2.0;
  base.online.policy.state_bytes_per_instance = 4096;
  base.online.epochs_per_recut = 0;  // Purely drift-driven.
  // No post-recut cooldown: both adaptive runs react every epoch, so the
  // only anti-thrash defense under comparison is the quarantine rule.
  base.online.cooldown_epochs = 0;
  base.retry = SuggestedRetryPolicy(network);

  // Fault-free references: the static shipped cut and the adaptive run.
  base.adaptive = false;
  Result<OnlineRunResult> clean_static =
      MeasureOnlineRun(*app, workload, config, *text_profile, base);
  if (!clean_static.ok()) {
    std::fprintf(stderr, "clean static: %s\n", clean_static.status().ToString().c_str());
    return 1;
  }
  base.adaptive = true;
  Result<OnlineRunResult> clean_adaptive =
      MeasureOnlineRun(*app, workload, config, *text_profile, base);
  if (!clean_adaptive.ok()) {
    std::fprintf(stderr, "clean adaptive: %s\n",
                 clean_adaptive.status().ToString().c_str());
    return 1;
  }
  const double horizon = clean_static->run.execution_seconds;
  const double clean_adaptive_exec = clean_adaptive->run.execution_seconds;

  const std::vector<FaultLevel> levels = {
      {"0% drop", 0.0, false},   {"0.5% drop", 0.005, false},
      {"1% drop", 0.01, false},  {"2% drop", 0.02, false},
      {"5% drop", 0.05, false},  {"1% + episode storm", 0.01, true},
  };

  std::printf(
      "Extension: fault resilience of online repartitioning (Octarine,\n"
      "text/table phase-shifting workload, %s, retries mask drops).\n"
      "Fault-free: static %.3f s, adaptive %.3f s (%llu recuts).\n\n",
      network.name.c_str(), horizon, clean_adaptive_exec,
      static_cast<unsigned long long>(clean_adaptive->online.repartitions));
  PrintRule(94);
  std::printf("%-20s %-22s %10s %10s %7s %6s %7s\n", "Fault level", "Run", "Comm (s)",
              "Exec (s)", "Recuts", "Moves", "Quar.");
  PrintRule(94);

  uint64_t storm_quarantined_recuts = 0;
  uint64_t storm_naive_recuts = 0;
  double quarantined_exec_at_1pct = 0.0;

  for (const FaultLevel& level : levels) {
    FaultSchedule schedule = level.episodes ? EpisodeSchedule(horizon) : FaultSchedule();
    FaultRates background;
    background.drop = level.drop;

    struct Row {
      const char* label;
      bool adaptive;
      bool quarantine;
    };
    const std::vector<Row> rows = {
        {"static", false, false},
        {"adaptive (quarantine)", true, true},
        {"adaptive (naive)", true, false},
    };
    for (const Row& row : rows) {
      FaultInjector injector(schedule, background, /*seed=*/97);
      OnlineMeasurementOptions options = base;
      options.adaptive = row.adaptive;
      options.faults = &injector;
      options.online.quarantine.enabled = row.quarantine;
      Result<OnlineRunResult> run =
          MeasureOnlineRun(*app, workload, config, *text_profile, options);
      if (!run.ok()) {
        std::fprintf(stderr, "%s / %s: %s\n", level.label, row.label,
                     run.status().ToString().c_str());
        return 1;
      }
      if (row.adaptive) {
        std::printf("%-20s %-22s %10.3f %10.3f %7llu %6llu %7llu\n", level.label,
                    row.label, run->run.communication_seconds,
                    run->run.execution_seconds,
                    static_cast<unsigned long long>(run->online.repartitions),
                    static_cast<unsigned long long>(run->online.instances_moved),
                    static_cast<unsigned long long>(run->online.quarantined_epochs));
      } else {
        std::printf("%-20s %-22s %10.3f %10.3f %7s %6s %7s\n", level.label, row.label,
                    run->run.communication_seconds, run->run.execution_seconds, "-", "-",
                    "-");
      }
      if (row.adaptive) {
        std::printf("    %s\n", run->online.ToString().c_str());
      }
      trajectory.Add(std::string(level.label) + " / " + row.label,
                     {{"exec_seconds", run->run.execution_seconds},
                      {"comm_seconds", run->run.communication_seconds},
                      {"recuts", static_cast<double>(run->online.repartitions)},
                      {"moves", static_cast<double>(run->online.instances_moved)},
                      {"quarantined_epochs",
                       static_cast<double>(run->online.quarantined_epochs)}});
      if (row.adaptive && row.quarantine && level.drop == 0.01 && !level.episodes) {
        quarantined_exec_at_1pct = run->run.execution_seconds;
      }
      if (level.episodes && row.adaptive) {
        if (row.quarantine) {
          storm_quarantined_recuts = run->online.repartitions;
        } else {
          storm_naive_recuts = run->online.repartitions;
        }
      }
    }
  }
  PrintRule(94);

  const double overhead =
      clean_adaptive_exec > 0.0 ? quarantined_exec_at_1pct / clean_adaptive_exec : 0.0;
  std::printf(
      "\nAt 1%% drop: quarantined adaptive runs %.3f s, %.2fx the fault-free\n"
      "adaptive %.3f s. Under the episode storm: quarantine recuts %llu times,\n"
      "the naive loop %llu times.\n",
      quarantined_exec_at_1pct, overhead, clean_adaptive_exec,
      static_cast<unsigned long long>(storm_quarantined_recuts),
      static_cast<unsigned long long>(storm_naive_recuts));

  // ----- Corruption storm: what protects the answer, not just the time.
  // Three wire configurations through the same corrupt-burst schedule:
  // a naive unframed wire consumes flipped payloads as truth (wrong
  // answers, silently), the checksummed wire detects and retries every
  // one (right answers, retry cost while the burst lasts), and the
  // breaker adds safe mode on top (degrade to all-local, re-promote when
  // the link heals — bounded slowdown, zero wrong placements).
  struct CorruptionRow {
    const char* label;
    bool checksums;
    bool breaker;
  };
  const std::vector<CorruptionRow> corruption_rows = {
      {"naive (no checksums)", false, false},
      {"checksum-only", true, false},
      {"breaker+safe-mode", true, true},
  };
  std::printf("\nCorruption storm (90%% flip probability over 30%% of the run):\n");
  PrintRule(94);
  std::printf("%-22s %10s %7s %9s %9s %6s %5s %6s\n", "Wire", "Exec (s)", "Recuts",
              "Rejected", "Consumed", "Trips", "Safe", "Match");
  PrintRule(94);

  uint64_t naive_consumed = 0;
  uint64_t checksum_rejected = 0;
  uint64_t checksum_consumed = 0;
  uint64_t breaker_trips = 0;
  uint64_t breaker_safe_exits = 0;
  bool breaker_partitions_match = false;
  double breaker_exec = 0.0;
  for (const CorruptionRow& row : corruption_rows) {
    FaultSchedule schedule = CorruptionStorm(clean_adaptive_exec);
    FaultInjector injector(schedule, FaultRates{}, /*seed=*/97);
    OnlineMeasurementOptions options = base;
    options.adaptive = true;
    options.faults = &injector;
    options.checksums = row.checksums;
    options.online.quarantine.enabled = true;
    options.online.breaker.enabled = row.breaker;
    // The scripted burst concentrates its damage in few epochs, so trip on
    // the first bad one and hold long enough to span a clean epoch.
    options.online.breaker.trip_after = 1;
    options.online.breaker.open_epochs = 3;
    Result<OnlineRunResult> run =
        MeasureOnlineRun(*app, workload, config, *text_profile, options);
    if (!run.ok()) {
      std::fprintf(stderr, "corruption / %s: %s\n", row.label,
                   run.status().ToString().c_str());
      return 1;
    }
    const bool match =
        run->final_distribution.placement ==
            clean_adaptive->final_distribution.placement &&
        run->final_distribution.default_machine ==
            clean_adaptive->final_distribution.default_machine;
    std::printf("%-22s %10.3f %7llu %9llu %9llu %6llu %5llu %6s\n", row.label,
                run->run.execution_seconds,
                static_cast<unsigned long long>(run->online.repartitions),
                static_cast<unsigned long long>(run->transport.corrupt_rejected),
                static_cast<unsigned long long>(run->transport.corrupt_consumed),
                static_cast<unsigned long long>(run->online.breaker_trips),
                static_cast<unsigned long long>(run->online.safe_mode_epochs),
                match ? "yes" : "no");
    trajectory.Add(std::string("corruption storm / ") + row.label,
                   {{"exec_seconds", run->run.execution_seconds},
                    {"recuts", static_cast<double>(run->online.repartitions)},
                    {"corrupt_rejected",
                     static_cast<double>(run->transport.corrupt_rejected)},
                    {"corrupt_consumed",
                     static_cast<double>(run->transport.corrupt_consumed)},
                    {"breaker_trips", static_cast<double>(run->online.breaker_trips)},
                    {"safe_mode_epochs",
                     static_cast<double>(run->online.safe_mode_epochs)},
                    {"partitions_match", match ? 1.0 : 0.0}});
    if (!row.checksums) {
      naive_consumed = run->transport.corrupt_consumed;
    } else if (!row.breaker) {
      checksum_rejected = run->transport.corrupt_rejected;
      checksum_consumed += run->transport.corrupt_consumed;
    } else {
      breaker_trips = run->online.breaker_trips;
      breaker_safe_exits = run->online.safe_mode_exits;
      breaker_partitions_match = match;
      breaker_exec = run->run.execution_seconds;
      checksum_consumed += run->transport.corrupt_consumed;
    }
  }
  PrintRule(94);
  std::printf(
      "\nNaive wire consumed %llu poisoned payloads; the checksummed wire\n"
      "rejected %llu and consumed none. Breaker: %llu trip(s), %llu\n"
      "re-promotion(s), final partition %s the fault-free run's,\n"
      "%.2fx its execution time.\n",
      static_cast<unsigned long long>(naive_consumed),
      static_cast<unsigned long long>(checksum_rejected),
      static_cast<unsigned long long>(breaker_trips),
      static_cast<unsigned long long>(breaker_safe_exits),
      breaker_partitions_match ? "matches" : "DIVERGES FROM",
      clean_adaptive_exec > 0.0 ? breaker_exec / clean_adaptive_exec : 0.0);

  if (!json_path.empty()) {
    const Status written = trajectory.WriteFile(json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Steady 1% loss is absorbed by retries: exec within 10% of fault-free.
  if (overhead > 1.10) {
    std::printf("WARNING: quarantined adaptive exceeds 1.10x fault-free (%.2fx).\n",
                overhead);
    return 1;
  }
  // Episode storms make the naive loop thrash; quarantine bounds recuts.
  if (storm_naive_recuts < 2 * storm_quarantined_recuts ||
      storm_naive_recuts == storm_quarantined_recuts) {
    std::printf("WARNING: naive loop did not thrash (%llu recuts vs %llu quarantined).\n",
                static_cast<unsigned long long>(storm_naive_recuts),
                static_cast<unsigned long long>(storm_quarantined_recuts));
    return 1;
  }
  // The unframed wire must actually be wrong (poison consumed as truth)
  // while the checksummed wire rejects every flip and consumes nothing.
  if (naive_consumed == 0 || checksum_rejected == 0 || checksum_consumed != 0) {
    std::printf("WARNING: corruption baselines off (consumed=%llu rejected=%llu "
                "hardened_consumed=%llu).\n",
                static_cast<unsigned long long>(naive_consumed),
                static_cast<unsigned long long>(checksum_rejected),
                static_cast<unsigned long long>(checksum_consumed));
    return 1;
  }
  // Breaker + safe mode: trips during the burst, re-promotes after it,
  // lands on the fault-free partition, and keeps the slowdown bounded.
  if (breaker_trips == 0 || breaker_safe_exits == 0 || !breaker_partitions_match) {
    std::printf("WARNING: breaker run wrong (trips=%llu exits=%llu match=%d).\n",
                static_cast<unsigned long long>(breaker_trips),
                static_cast<unsigned long long>(breaker_safe_exits),
                breaker_partitions_match ? 1 : 0);
    return 1;
  }
  if (clean_adaptive_exec > 0.0 && breaker_exec > 3.0 * clean_adaptive_exec) {
    std::printf("WARNING: breaker slowdown unbounded (%.2fx fault-free).\n",
                breaker_exec / clean_adaptive_exec);
    return 1;
  }
  return 0;
}
