// Shared driver for the Figure 4-8 benches: profile one figure workload,
// choose a distribution, and print the figure's headline ("Of N components,
// Coign places M on the server") plus the detailed placement report.

#ifndef COIGN_BENCH_FIGURE_COMMON_H_
#define COIGN_BENCH_FIGURE_COMMON_H_

#include <string>

namespace coign {

// Returns the process exit code.
int RunFigureBench(const std::string& title, const std::string& scenario_id,
                   const std::string& expectation);

}  // namespace coign

#endif  // COIGN_BENCH_FIGURE_COMMON_H_
