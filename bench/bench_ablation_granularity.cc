// Ablation: instance granularity vs class granularity.
//
// The paper's §5 contrast with ICOPS: "Unlike Coign, which can distribute
// individual component instances, ICOPS was procedure-oriented. ICOPS
// placed all instances of a specific class on the same machine; a serious
// deficiency for commercial applications." The Static-Type classifier *is*
// class granularity: every instance of a class shares one classification
// and therefore one machine. Comparing distributions chosen with ST vs
// IFCB quantifies what per-instance placement buys.

#include <cstdio>

#include "bench/harness.h"

using namespace coign;  // NOLINT: bench binary.

namespace {

struct GranularityResult {
  double default_seconds = 0.0;
  double coign_seconds = 0.0;
};

Result<GranularityResult> Run(const std::string& scenario_id, ClassifierKind kind) {
  Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(scenario_id);
  if (!app.ok()) {
    return app.status();
  }
  std::vector<Descriptor> table;
  Result<IccProfile> profile =
      ProfileScenarios(**app, {scenario_id}, kind, kCompleteStackWalk, 17, &table);
  if (!profile.ok()) {
    return profile.status();
  }
  const NetworkModel network = NetworkModel::TenBaseT();
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(*profile, FitNetwork(network));
  if (!analysis.ok()) {
    return analysis.status();
  }
  Result<RunMeasurement> default_run = MeasureDefault(**app, scenario_id, network);
  if (!default_run.ok()) {
    return default_run.status();
  }
  Result<RunMeasurement> coign_run =
      MeasureDistributed(**app, scenario_id, analysis->distribution, network, nullptr, 17,
                         &table, kind, kCompleteStackWalk);
  if (!coign_run.ok()) {
    return coign_run.status();
  }
  GranularityResult result;
  result.default_seconds = default_run->communication_seconds;
  result.coign_seconds = coign_run->communication_seconds;
  return result;
}

}  // namespace

int main() {
  std::printf("Ablation: per-instance (IFCB) vs per-class (ST) placement granularity.\n");
  PrintRule(86);
  std::printf("%-10s %12s | %12s %10s | %12s %10s\n", "Scenario", "Default(s)",
              "IFCB Coign", "savings", "ST Coign", "savings");
  PrintRule(86);
  for (const char* id : {"o_oldwp7", "o_oldtb3", "o_oldbth", "o_mixed9", "b_bigone",
                         "p_oldmsr"}) {
    Result<GranularityResult> instance_level =
        Run(id, ClassifierKind::kInternalFunctionCalledBy);
    Result<GranularityResult> class_level = Run(id, ClassifierKind::kStaticType);
    if (!instance_level.ok() || !class_level.ok()) {
      std::fprintf(stderr, "%s: analysis failed\n", id);
      return 1;
    }
    auto savings = [](const GranularityResult& r) {
      return r.default_seconds > 0.0
                 ? 100.0 * (1.0 - r.coign_seconds / r.default_seconds)
                 : 0.0;
    };
    std::printf("%-10s %12.3f | %12.3f %9.0f%% | %12.3f %9.0f%%\n", id,
                instance_level->default_seconds, instance_level->coign_seconds,
                savings(*instance_level), class_level->coign_seconds,
                savings(*class_level));
  }
  PrintRule(86);
  std::printf("Class granularity can never separate two instances of one class — e.g.\n"
              "the caches a user is browsing from the caches the rules engine drives —\n"
              "so its cut is at best equal and usually worse (ICOPS's deficiency).\n");
  return 0;
}
