// Table 2: classifier accuracy. Runs each of the seven instance
// classifiers through all Octarine profiling scenarios, then through the
// synthesized o_bigone scenario, and reports:
//   * profiled classifications
//   * new classifications first seen in bigone (0 is ideal)
//   * average instances per classification
//   * average instance-vs-profile communication-vector correlation.
//
// Expected shape (paper): the Incremental straw man finds only new
// classifications in bigone and correlates poorly; ST lumps instances
// (high instances/classification, mediocre correlation); the call-chain
// classifiers (PCB/STCB/IFCB/EPCB/IB) recognize everything; IFCB yields
// the most classifications at the highest correlation.

#include <cstdio>

#include "bench/harness.h"

using namespace coign;  // NOLINT: bench binary.

int main() {
  std::printf("Table 2. Classifier Accuracy (Octarine, bigone evaluation).\n");
  PrintRule(96);
  std::printf("%-26s %15s %15s %18s %12s\n", "Instance Classifier", "Profiled",
              "New (bigone)", "Ave. Instances /", "Average");
  std::printf("%-26s %15s %15s %18s %12s\n", "", "Classifications", "Classifications",
              "Classification", "Correlation");
  PrintRule(96);
  for (ClassifierKind kind : AllClassifierKinds()) {
    Result<ClassifierAccuracyRow> row = EvaluateOctarineClassifier(kind, kCompleteStackWalk);
    if (!row.ok()) {
      std::fprintf(stderr, "%s: %s\n", ClassifierKindName(kind).c_str(),
                   row.status().ToString().c_str());
      return 1;
    }
    std::printf("%-26s %15zu %15zu %18.1f %12.3f\n", row->name.c_str(),
                row->profiled_classifications, row->new_classifications,
                row->avg_instances_per_classification, row->avg_correlation);
  }
  PrintRule(96);
  return 0;
}
