// Table 1: the profiling scenario suite. Lists every scenario with its
// description plus the live component population and call volume it
// produces — the inputs to every other experiment.

#include <cstdio>

#include "bench/harness.h"

using namespace coign;  // NOLINT: bench binary.

int main() {
  std::printf("Table 1. Profiling Scenarios.\n");
  PrintRule(86);
  std::printf("%-10s %-42s %10s %10s %10s\n", "Scenario", "Description", "Components",
              "Calls", "ICC bytes");
  PrintRule(86);

  for (const std::string& id : Table1ScenarioIds()) {
    Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(id);
    if (!app.ok()) {
      std::fprintf(stderr, "%s: %s\n", id.c_str(), app.status().ToString().c_str());
      return 1;
    }
    Result<Scenario> scenario = (*app)->FindScenario(id);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s: %s\n", id.c_str(), scenario.status().ToString().c_str());
      return 1;
    }
    Result<IccProfile> profile = ProfileScenarios(**app, {id});
    if (!profile.ok()) {
      std::fprintf(stderr, "%s: %s\n", id.c_str(), profile.status().ToString().c_str());
      return 1;
    }
    uint64_t components = 0;
    for (const auto& [cid, info] : profile->classifications()) {
      if (!(*app)->IsInfrastructureClass(info.class_name)) {
        components += info.instance_count;
      }
    }
    std::printf("%-10s %-42s %10llu %10llu %10llu\n", id.c_str(),
                scenario->description.c_str(), static_cast<unsigned long long>(components),
                static_cast<unsigned long long>(profile->total_calls()),
                static_cast<unsigned long long>(profile->total_bytes()));
  }
  PrintRule(86);
  return 0;
}
