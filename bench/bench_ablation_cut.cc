// Ablation: the exact two-way cut algorithms agree on every scenario graph
// (lift-to-front push-relabel vs Edmonds-Karp), and what the API-derived
// location constraints contribute — disabling static analysis lets the cut
// collapse the application onto one machine (communication zero, usefulness
// zero: GUI on the server would not work).

#include <cstdio>

#include "bench/harness.h"

using namespace coign;  // NOLINT: bench binary.

int main() {
  const NetworkProfile fitted = FitNetwork(NetworkModel::TenBaseT());

  std::printf("Ablation: cut algorithm agreement and constraint contribution.\n");
  PrintRule(92);
  std::printf("%-10s %16s %16s %10s | %22s\n", "Scenario", "RTF cut (s)", "EK cut (s)",
              "Agree", "No-API-pins cut (s)");
  PrintRule(92);

  for (const std::string& id : Table1ScenarioIds()) {
    Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(id);
    if (!app.ok()) {
      return 1;
    }
    Result<IccProfile> profile = ProfileScenarios(**app, {id});
    if (!profile.ok()) {
      return 1;
    }

    AnalysisOptions rtf_options;
    rtf_options.algorithm = CutAlgorithm::kRelabelToFront;
    Result<AnalysisResult> rtf = ProfileAnalysisEngine(rtf_options).Analyze(*profile, fitted);

    AnalysisOptions ek_options;
    ek_options.algorithm = CutAlgorithm::kEdmondsKarp;
    Result<AnalysisResult> ek = ProfileAnalysisEngine(ek_options).Analyze(*profile, fitted);

    AnalysisOptions unpinned_options;
    unpinned_options.derive_api_constraints = false;
    Result<AnalysisResult> unpinned =
        ProfileAnalysisEngine(unpinned_options).Analyze(*profile, fitted);

    if (!rtf.ok() || !ek.ok() || !unpinned.ok()) {
      std::fprintf(stderr, "%s: analysis failed\n", id.c_str());
      return 1;
    }
    const bool agree =
        std::abs(rtf->predicted_comm_seconds - ek->predicted_comm_seconds) < 1e-9;
    std::printf("%-10s %16.6f %16.6f %10s | %22.6f\n", id.c_str(),
                rtf->predicted_comm_seconds, ek->predicted_comm_seconds,
                agree ? "yes" : "NO", unpinned->predicted_comm_seconds);
  }
  PrintRule(92);
  std::printf("Without API pins the cut degenerates to ~0 (everything colocates), which\n"
              "is why static analysis of GUI/storage API usage is load-bearing.\n");
  return 0;
}
