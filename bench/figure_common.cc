#include "bench/figure_common.h"

#include <cstdio>

#include "bench/harness.h"
#include "src/analysis/dot_export.h"
#include "src/analysis/report.h"

namespace coign {

namespace {

// Scenario id -> a stable .dot output name next to the working directory.
std::string DotPathFor(const std::string& scenario_id) {
  return "coign_" + scenario_id + ".dot";
}

}  // namespace

int RunFigureBench(const std::string& title, const std::string& scenario_id,
                   const std::string& expectation) {
  std::printf("%s\n", title.c_str());
  std::printf("Paper: %s\n", expectation.c_str());
  PrintRule(78);

  Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(scenario_id);
  if (!app.ok()) {
    std::fprintf(stderr, "%s\n", app.status().ToString().c_str());
    return 1;
  }
  Result<IccProfile> profile = ProfileScenarios(**app, {scenario_id});
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  const NetworkModel network = NetworkModel::TenBaseT();
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(*profile, FitNetwork(network));
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s\n", analysis.status().ToString().c_str());
    return 1;
  }

  const FigureCounts counts =
      CountFigureInstances(**app, *profile, analysis->distribution);
  std::printf("Measured: of %llu application components, Coign places %llu on the "
              "server.\n",
              static_cast<unsigned long long>(counts.total),
              static_cast<unsigned long long>(counts.on_server));
  std::printf("(Including machine infrastructure: %llu of %llu on the server.)\n\n",
              static_cast<unsigned long long>(analysis->server_instances),
              static_cast<unsigned long long>(analysis->server_instances +
                                              analysis->client_instances));
  std::printf("%s\n", DistributionReport(*profile, *analysis).c_str());

  // The figure itself, as Graphviz (render with `dot -Tsvg`).
  DotExportOptions dot_options;
  dot_options.graph_name = scenario_id;
  const std::string dot_path = DotPathFor(scenario_id);
  if (WriteDistributionDot(*profile, *analysis, dot_path, dot_options).ok()) {
    std::printf("Graphviz rendering of this figure written to %s\n\n", dot_path.c_str());
  }

  // Communication comparison for the figure's workload.
  Result<RunMeasurement> default_run = MeasureDefault(**app, scenario_id, network);
  Result<RunMeasurement> coign_run =
      MeasureDistributed(**app, scenario_id, analysis->distribution, network);
  if (default_run.ok() && coign_run.ok() && default_run->communication_seconds > 0.0) {
    std::printf("Communication: default %.3f s -> Coign %.3f s (%.0f%% saved)\n",
                default_run->communication_seconds, coign_run->communication_seconds,
                100.0 * (1.0 - coign_run->communication_seconds /
                                   default_run->communication_seconds));
  }
  return 0;
}

}  // namespace coign
