// Microbenchmark: the min-cut solver family on random communication-
// graph-shaped inputs — the paper's lift-to-front (relabel-to-front)
// algorithm, Edmonds-Karp, and the production highest-label push-relabel
// solver with warm-started incremental re-cuts. All are exact over
// integer CapUnits; this quantifies both the cost of the paper's
// algorithm choice and the payoff of flow reuse across drifting epochs.
//
// Besides the google-benchmark timing mode:
//   --coign-cut-table     deterministic table of exact cut values (all
//                         solvers, cold and warm, several sizes/seeds);
//                         exits nonzero on any disagreement. CI byte-diffs
//                         two same-seed tables: no timing noise, so any
//                         diff is a real change in what the solvers
//                         compute.
//   --coign-epoch-series  seeded capacity-drift epoch sequences at several
//                         sizes, timing cold relabel-to-front vs cold
//                         push-relabel vs one warm-started session; exits
//                         nonzero on any cut-value disagreement. With
//                         --json <path> the per-size totals land in a
//                         BenchTrajectory file; with --enforce-speedup the
//                         run fails unless the warm session beats cold
//                         relabel-to-front by at least 2x at the largest
//                         size (the CI perf-smoke gate).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/mincut/compact_flow_network.h"
#include "src/mincut/edmonds_karp.h"
#include "src/mincut/incremental.h"
#include "src/mincut/push_relabel.h"
#include "src/mincut/relabel_to_front.h"
#include "src/support/rng.h"
#include "src/support/str_util.h"

namespace coign {
namespace {

struct BenchEdge {
  int a = 0;
  int b = 0;
  CapUnits capacity = 0;
};

// Edges shaped like a concrete ICC graph: two terminals, a big star of
// GUI-ish nodes around the client, a storage chain at the server, and
// random cross edges. Weights are drawn in seconds and quantized at the
// same boundary the analysis engine uses.
std::vector<BenchEdge> BuildEdges(int nodes, double edge_probability, uint64_t seed) {
  Rng rng(seed);
  std::vector<BenchEdge> edges;
  for (int v = 2; v < nodes; ++v) {
    // Every node talks to one of the terminals at least once.
    edges.push_back({rng.Bernoulli(0.7) ? 0 : 1, v,
                     SecondsToCapUnits(rng.UniformDouble(0.001, 1.0))});
  }
  for (int a = 2; a < nodes; ++a) {
    for (int b = a + 1; b < nodes; ++b) {
      if (rng.Bernoulli(edge_probability)) {
        edges.push_back({a, b, SecondsToCapUnits(rng.UniformDouble(0.001, 2.0))});
      }
    }
  }
  return edges;
}

FlowNetwork ToFlowNetwork(int nodes, const std::vector<BenchEdge>& edges) {
  FlowNetwork network(nodes);
  for (const BenchEdge& edge : edges) {
    network.AddEdge(edge.a, edge.b, edge.capacity);
  }
  return network;
}

CompactFlowNetwork ToCompactNetwork(int nodes, const std::vector<BenchEdge>& edges) {
  CompactFlowNetwork network(nodes);
  for (const BenchEdge& edge : edges) {
    network.AddEdge(edge.a, edge.b, edge.capacity);
  }
  network.Finalize();
  return network;
}

FlowNetwork BuildGraph(int nodes, double edge_probability, uint64_t seed) {
  return ToFlowNetwork(nodes, BuildEdges(nodes, edge_probability, seed));
}

void BM_RelabelToFront(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  FlowNetwork network = BuildGraph(nodes, 8.0 / nodes, 7);
  CapUnits cut_value = 0;
  for (auto _ : state) {
    // The const& entry point copies internally; the copy is part of what a
    // caller pays per cut, so it belongs inside the timed region.
    const CutResult cut = MinCutRelabelToFront(network, 0, 1);
    cut_value = cut.cut_value;
    benchmark::DoNotOptimize(cut_value);
  }
  state.counters["cut_seconds"] = CapUnitsToSeconds(cut_value);
}
BENCHMARK(BM_RelabelToFront)->Arg(32)->Arg(128)->Arg(512)->Arg(1024);

void BM_EdmondsKarp(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  FlowNetwork network = BuildGraph(nodes, 8.0 / nodes, 7);
  CapUnits cut_value = 0;
  for (auto _ : state) {
    const CutResult cut = MinCutEdmondsKarp(network, 0, 1);
    cut_value = cut.cut_value;
    benchmark::DoNotOptimize(cut_value);
  }
  state.counters["cut_seconds"] = CapUnitsToSeconds(cut_value);
}
BENCHMARK(BM_EdmondsKarp)->Arg(32)->Arg(128)->Arg(512)->Arg(1024);

void BM_PushRelabelCold(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  const std::vector<BenchEdge> edges = BuildEdges(nodes, 8.0 / nodes, 7);
  CapUnits cut_value = 0;
  for (auto _ : state) {
    // Cold = everything a fresh caller pays: CSR build + solve + cut
    // extraction, mirroring what the timed copy does for the others.
    CompactFlowNetwork network = ToCompactNetwork(nodes, edges);
    PushRelabelSolver solver;
    const CapUnits flow = solver.Solve(network, 0, 1);
    const CutResult cut = network.ExtractCut(0, flow);
    cut_value = cut.cut_value;
    benchmark::DoNotOptimize(cut_value);
  }
  state.counters["cut_seconds"] = CapUnitsToSeconds(cut_value);
}
BENCHMARK(BM_PushRelabelCold)->Arg(32)->Arg(128)->Arg(512)->Arg(1024);

// Applies one epoch of seeded capacity drift: ~5% of edges are redrawn
// from the cross-edge weight distribution. Returns the indices touched.
std::vector<size_t> DriftEdges(std::vector<BenchEdge>& edges, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> touched;
  for (size_t i = 0; i < edges.size(); ++i) {
    if (rng.Bernoulli(0.05)) {
      edges[i].capacity = SecondsToCapUnits(rng.UniformDouble(0.001, 2.0));
      touched.push_back(i);
    }
  }
  return touched;
}

// Deterministic cut-value table: exact units, no timing, fixed format.
// The warm column re-cuts with a session that previously solved a
// perturbed-capacity variant of the same graph, so it exercises the
// incremental repair path; exactness says it must equal the cold values.
int PrintCutTable() {
  std::printf("# bench_micro_mincut cut table v2 (units = picoseconds)\n");
  std::printf("# nodes seed rtf_units ek_units pr_units warm_units source_side\n");
  int disagreements = 0;
  for (const int nodes : {32, 128, 512}) {
    for (uint64_t seed = 7; seed < 15; ++seed) {
      std::vector<BenchEdge> edges = BuildEdges(nodes, 8.0 / nodes, seed);
      const FlowNetwork network = ToFlowNetwork(nodes, edges);
      const CutResult rtf = MinCutRelabelToFront(network, 0, 1);
      const CutResult ek = MinCutEdmondsKarp(network, 0, 1);
      const CutResult pr = MinCutPushRelabel(network, 0, 1);

      // Warm leg: solve a drifted predecessor first, then apply the true
      // capacities as deltas and re-solve from the retained flow.
      std::vector<BenchEdge> perturbed = edges;
      DriftEdges(perturbed, seed + 1000);
      IncrementalMinCut session;
      session.Reset(ToCompactNetwork(nodes, perturbed), 0, 1);
      session.Solve();
      for (size_t i = 0; i < edges.size(); ++i) {
        session.SetEdgeCapacity(static_cast<int>(i), edges[i].capacity);
      }
      const CutResult warm = session.Solve();

      std::printf("%d %llu %lld %lld %lld %lld %d\n", nodes,
                  static_cast<unsigned long long>(seed),
                  static_cast<long long>(rtf.cut_value),
                  static_cast<long long>(ek.cut_value),
                  static_cast<long long>(pr.cut_value),
                  static_cast<long long>(warm.cut_value),
                  rtf.SourceSideCount());
      if (rtf.cut_value != ek.cut_value || rtf.cut_value != pr.cut_value ||
          rtf.cut_value != warm.cut_value) {
        ++disagreements;
      }
    }
  }
  if (disagreements > 0) {
    std::fprintf(stderr, "cut table: %d disagreements between solvers\n",
                 disagreements);
    return 1;
  }
  return 0;
}

double ElapsedSeconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

// Epoch-series benchmark: a drifting capacity sequence solved three ways —
// cold relabel-to-front each epoch (the pre-engine production path), cold
// push-relabel each epoch, and one warm session carrying flow across
// epochs. Every epoch's three cut values must agree exactly.
int RunEpochSeries(const std::string& json_path, bool enforce_speedup) {
  constexpr int kEpochs = 24;
  constexpr uint64_t kSeed = 7;
  const std::vector<int> sizes = {32, 128, 512, 1024};

  BenchTrajectory trajectory("bench_micro_mincut_epoch_series");
  int disagreements = 0;
  double largest_speedup = 0.0;
  int largest_nodes = 0;

  std::printf("# epoch-series: %d drift epochs per size, seed %llu\n", kEpochs,
              static_cast<unsigned long long>(kSeed));
  std::printf("%8s %14s %14s %14s %10s %12s %12s\n", "nodes", "cold_rtf_s",
              "cold_pr_s", "warm_s", "speedup", "warm_pushes", "reused_units");

  for (const int nodes : sizes) {
    std::vector<BenchEdge> edges = BuildEdges(nodes, 8.0 / nodes, kSeed);

    IncrementalMinCut session;
    session.Reset(ToCompactNetwork(nodes, edges), 0, 1);

    double cold_rtf_seconds = 0.0;
    double cold_pr_seconds = 0.0;
    double warm_seconds = 0.0;

    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      if (epoch > 0) {
        const std::vector<size_t> touched =
            DriftEdges(edges, kSeed + 1000 * static_cast<uint64_t>(epoch));
        for (const size_t i : touched) {
          session.SetEdgeCapacity(static_cast<int>(i), edges[i].capacity);
        }
      }

      auto start = std::chrono::steady_clock::now();
      const FlowNetwork flow = ToFlowNetwork(nodes, edges);
      const CutResult rtf = MinCutRelabelToFront(flow, 0, 1);
      cold_rtf_seconds += ElapsedSeconds(start);

      start = std::chrono::steady_clock::now();
      CompactFlowNetwork compact = ToCompactNetwork(nodes, edges);
      PushRelabelSolver solver;
      const CapUnits pr_flow = solver.Solve(compact, 0, 1);
      const CutResult pr = compact.ExtractCut(0, pr_flow);
      cold_pr_seconds += ElapsedSeconds(start);

      start = std::chrono::steady_clock::now();
      const CutResult warm = session.Solve();
      warm_seconds += ElapsedSeconds(start);

      if (rtf.cut_value != pr.cut_value || rtf.cut_value != warm.cut_value) {
        std::fprintf(stderr,
                     "epoch-series: nodes=%d epoch=%d disagreement "
                     "rtf=%lld pr=%lld warm=%lld\n",
                     nodes, epoch, static_cast<long long>(rtf.cut_value),
                     static_cast<long long>(pr.cut_value),
                     static_cast<long long>(warm.cut_value));
        ++disagreements;
      }
    }

    const MinCutSolveStats& stats = session.total_stats();
    const double speedup =
        warm_seconds > 0.0 ? cold_rtf_seconds / warm_seconds : 0.0;
    if (nodes >= largest_nodes) {
      largest_nodes = nodes;
      largest_speedup = speedup;
    }
    std::printf("%8d %14.6f %14.6f %14.6f %9.2fx %12llu %12.3e\n", nodes,
                cold_rtf_seconds, cold_pr_seconds, warm_seconds, speedup,
                static_cast<unsigned long long>(stats.pushes),
                static_cast<double>(stats.flow_reused_units));
    trajectory.Add(
        StrFormat("nodes_%d", nodes),
        {{"nodes", static_cast<double>(nodes)},
         {"epochs", static_cast<double>(kEpochs)},
         {"edges", static_cast<double>(edges.size())},
         {"cold_rtf_seconds", cold_rtf_seconds},
         {"cold_pr_seconds", cold_pr_seconds},
         {"warm_seconds", warm_seconds},
         {"speedup_warm_vs_cold_rtf", speedup},
         {"pushes", static_cast<double>(stats.pushes)},
         {"relabels", static_cast<double>(stats.relabels)},
         {"global_relabels", static_cast<double>(stats.global_relabels)},
         {"warm_start_hits", static_cast<double>(stats.warm_start_hits)},
         {"flow_reused_units", static_cast<double>(stats.flow_reused_units)}});
  }

  if (!json_path.empty()) {
    const Status written = trajectory.WriteFile(json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "epoch-series: %s\n", written.ToString().c_str());
      return 1;
    }
  }
  if (disagreements > 0) {
    std::fprintf(stderr, "epoch-series: %d cut disagreements\n", disagreements);
    return 1;
  }
  if (enforce_speedup && largest_speedup < 2.0) {
    std::fprintf(stderr,
                 "epoch-series: warm speedup %.2fx at %d nodes below the 2x "
                 "gate\n",
                 largest_speedup, largest_nodes);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace coign

int main(int argc, char** argv) {
  bool epoch_series = false;
  bool enforce_speedup = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--coign-cut-table") == 0) {
      return coign::PrintCutTable();
    }
    if (std::strcmp(argv[i], "--coign-epoch-series") == 0) {
      epoch_series = true;
    } else if (std::strcmp(argv[i], "--enforce-speedup") == 0) {
      enforce_speedup = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (epoch_series) {
    return coign::RunEpochSeries(json_path, enforce_speedup);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
