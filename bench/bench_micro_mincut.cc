// Microbenchmark: lift-to-front (relabel-to-front) push-relabel vs
// Edmonds-Karp on random communication-graph-shaped inputs. Both are exact;
// this quantifies the cost of the paper's algorithm choice.

#include <benchmark/benchmark.h>

#include "src/mincut/edmonds_karp.h"
#include "src/mincut/relabel_to_front.h"
#include "src/support/rng.h"

namespace coign {
namespace {

// Builds a graph shaped like a concrete ICC graph: two terminals, a big
// star of GUI-ish nodes around the client, a storage chain at the server,
// and random cross edges.
FlowNetwork BuildGraph(int nodes, double edge_probability, uint64_t seed) {
  Rng rng(seed);
  FlowNetwork network(nodes);
  for (int v = 2; v < nodes; ++v) {
    // Every node talks to one of the terminals at least once.
    network.AddEdge(rng.Bernoulli(0.7) ? 0 : 1, v, rng.UniformDouble(0.001, 1.0));
  }
  for (int a = 2; a < nodes; ++a) {
    for (int b = a + 1; b < nodes; ++b) {
      if (rng.Bernoulli(edge_probability)) {
        network.AddEdge(a, b, rng.UniformDouble(0.001, 2.0));
      }
    }
  }
  return network;
}

void BM_RelabelToFront(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  FlowNetwork network = BuildGraph(nodes, 8.0 / nodes, 7);
  double cut_value = 0.0;
  for (auto _ : state) {
    // The const& entry point copies internally; the copy is part of what a
    // caller pays per cut, so it belongs inside the timed region.
    const CutResult cut = MinCutRelabelToFront(network, 0, 1);
    cut_value = cut.cut_value;
    benchmark::DoNotOptimize(cut_value);
  }
  state.counters["cut_value"] = cut_value;
}
BENCHMARK(BM_RelabelToFront)->Arg(32)->Arg(128)->Arg(512)->Arg(1024);

void BM_EdmondsKarp(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  FlowNetwork network = BuildGraph(nodes, 8.0 / nodes, 7);
  double cut_value = 0.0;
  for (auto _ : state) {
    const CutResult cut = MinCutEdmondsKarp(network, 0, 1);
    cut_value = cut.cut_value;
    benchmark::DoNotOptimize(cut_value);
  }
  state.counters["cut_value"] = cut_value;
}
BENCHMARK(BM_EdmondsKarp)->Arg(32)->Arg(128)->Arg(512)->Arg(1024);

}  // namespace
}  // namespace coign

BENCHMARK_MAIN();
