// Microbenchmark: lift-to-front (relabel-to-front) push-relabel vs
// Edmonds-Karp on random communication-graph-shaped inputs. Both are exact
// over integer CapUnits; this quantifies the cost of the paper's algorithm
// choice.
//
// Besides the google-benchmark timing mode, `--coign-cut-table` prints a
// deterministic table of exact cut values (both algorithms, several sizes
// and seeds) and exits nonzero on any disagreement. CI byte-diffs two
// same-seed tables: the output carries no timing noise, so any diff is a
// real change in what the algorithms compute.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>

#include "src/mincut/edmonds_karp.h"
#include "src/mincut/relabel_to_front.h"
#include "src/support/rng.h"

namespace coign {
namespace {

// Builds a graph shaped like a concrete ICC graph: two terminals, a big
// star of GUI-ish nodes around the client, a storage chain at the server,
// and random cross edges. Weights are drawn in seconds and quantized at
// the same boundary the analysis engine uses.
FlowNetwork BuildGraph(int nodes, double edge_probability, uint64_t seed) {
  Rng rng(seed);
  FlowNetwork network(nodes);
  for (int v = 2; v < nodes; ++v) {
    // Every node talks to one of the terminals at least once.
    network.AddEdge(rng.Bernoulli(0.7) ? 0 : 1,
                    v, SecondsToCapUnits(rng.UniformDouble(0.001, 1.0)));
  }
  for (int a = 2; a < nodes; ++a) {
    for (int b = a + 1; b < nodes; ++b) {
      if (rng.Bernoulli(edge_probability)) {
        network.AddEdge(a, b, SecondsToCapUnits(rng.UniformDouble(0.001, 2.0)));
      }
    }
  }
  return network;
}

void BM_RelabelToFront(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  FlowNetwork network = BuildGraph(nodes, 8.0 / nodes, 7);
  CapUnits cut_value = 0;
  for (auto _ : state) {
    // The const& entry point copies internally; the copy is part of what a
    // caller pays per cut, so it belongs inside the timed region.
    const CutResult cut = MinCutRelabelToFront(network, 0, 1);
    cut_value = cut.cut_value;
    benchmark::DoNotOptimize(cut_value);
  }
  state.counters["cut_seconds"] = CapUnitsToSeconds(cut_value);
}
BENCHMARK(BM_RelabelToFront)->Arg(32)->Arg(128)->Arg(512)->Arg(1024);

void BM_EdmondsKarp(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  FlowNetwork network = BuildGraph(nodes, 8.0 / nodes, 7);
  CapUnits cut_value = 0;
  for (auto _ : state) {
    const CutResult cut = MinCutEdmondsKarp(network, 0, 1);
    cut_value = cut.cut_value;
    benchmark::DoNotOptimize(cut_value);
  }
  state.counters["cut_seconds"] = CapUnitsToSeconds(cut_value);
}
BENCHMARK(BM_EdmondsKarp)->Arg(32)->Arg(128)->Arg(512)->Arg(1024);

// Deterministic cut-value table: exact units, no timing, fixed format.
int PrintCutTable() {
  std::printf("# bench_micro_mincut cut table v1 (units = picoseconds)\n");
  std::printf("# nodes seed rtf_units ek_units source_side\n");
  int disagreements = 0;
  for (const int nodes : {32, 128, 512}) {
    for (uint64_t seed = 7; seed < 15; ++seed) {
      const FlowNetwork network = BuildGraph(nodes, 8.0 / nodes, seed);
      const CutResult rtf = MinCutRelabelToFront(network, 0, 1);
      const CutResult ek = MinCutEdmondsKarp(network, 0, 1);
      std::printf("%d %llu %lld %lld %d\n", nodes,
                  static_cast<unsigned long long>(seed),
                  static_cast<long long>(rtf.cut_value),
                  static_cast<long long>(ek.cut_value),
                  rtf.SourceSideCount());
      if (rtf.cut_value != ek.cut_value) {
        ++disagreements;
      }
    }
  }
  if (disagreements > 0) {
    std::fprintf(stderr, "cut table: %d disagreements between algorithms\n",
                 disagreements);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace coign

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--coign-cut-table") == 0) {
      return coign::PrintCutTable();
    }
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
