// Figure 5: the Octarine distribution for a 35-page text-only document.
// Only the document reader and the text-property provider belong on the
// server; the GUI forest (hundreds of components, many non-distributable
// interfaces) stays on the client.

#include "bench/figure_common.h"

int main() {
  return coign::RunFigureBench(
      "Figure 5. Octarine Distribution (35-page text document).", "o_fig5",
      "Of 458 components, Coign places 2 on the server (the document reader and "
      "the text-property provider).");
}
