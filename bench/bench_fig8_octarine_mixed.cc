// Figure 8: Octarine with tables and text. With fewer than a dozen small
// tables embedded in a five-page text document, the page-placement
// negotiation between table and text components binds the whole layout
// cluster to the reader side: the distribution changes radically and a
// large fraction of the application moves to the server.

#include "bench/figure_common.h"

int main() {
  return coign::RunFigureBench(
      "Figure 8. Octarine with Tables and Text (5 pages + 9 tables).", "o_mixed9",
      "Of 786 components, Coign places 281 on the server; output from the "
      "page-placement negotiation to the rest of the application is minimal.");
}
