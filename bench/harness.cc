#include "bench/harness.h"

#include <cstdio>
#include <fstream>

#include "src/apps/octarine.h"
#include "src/profile/log_file.h"
#include "src/runtime/binary_rewriter.h"
#include "src/support/str_util.h"

namespace coign {

Result<IccProfile> ProfileScenarios(Application& app, const std::vector<std::string>& ids,
                                    ClassifierKind classifier, int depth, uint64_t seed,
                                    std::vector<Descriptor>* classifier_table) {
  ObjectSystem system;
  COIGN_RETURN_IF_ERROR(app.Install(&system));

  BinaryRewriter rewriter;
  ConfigurationRecord config;
  config.classifier_kind = classifier;
  config.classifier_depth = depth;
  Result<ApplicationImage> instrumented = rewriter.Instrument(app.Image(), config);
  if (!instrumented.ok()) {
    return instrumented.status();
  }
  Result<std::unique_ptr<CoignRuntime>> runtime =
      CoignRuntime::LoadFromImage(&system, *instrumented);
  if (!runtime.ok()) {
    return runtime.status();
  }

  Rng rng(seed);
  for (const std::string& id : ids) {
    Result<Scenario> scenario = app.FindScenario(id);
    if (!scenario.ok()) {
      return scenario.status();
    }
    (*runtime)->BeginScenario();
    COIGN_RETURN_IF_ERROR(scenario->run(system, rng));
    system.DestroyAll();
  }
  if (classifier_table != nullptr) {
    *classifier_table = (*runtime)->classifier().ExportDescriptors();
  }
  return (*runtime)->profiling_logger()->profile();
}

NetworkProfile FitNetwork(const NetworkModel& model, uint64_t seed) {
  Rng rng(seed);
  NetworkProfiler profiler;
  return profiler.Profile(Transport(model), rng);
}

Result<RunMeasurement> MeasureDefault(Application& app, const std::string& scenario_id,
                                      const NetworkModel& network, Rng* jitter,
                                      uint64_t seed) {
  ObjectSystem system;
  COIGN_RETURN_IF_ERROR(app.Install(&system));
  const ClassPlacement placement = app.DefaultPlacement(system);
  system.SetPlacementPolicy(placement.AsPolicy());
  Result<Scenario> scenario = app.FindScenario(scenario_id);
  if (!scenario.ok()) {
    return scenario.status();
  }
  MeasurementOptions options;
  options.network = network;
  options.jitter_rng = jitter;
  Rng rng(seed);
  return MeasureRun(
      system, [&](ObjectSystem& sys) { return scenario->run(sys, rng); }, options);
}

Result<RunMeasurement> MeasureDistributed(Application& app, const std::string& scenario_id,
                                          const Distribution& distribution,
                                          const NetworkModel& network, Rng* jitter,
                                          uint64_t seed,
                                          const std::vector<Descriptor>* classifier_table,
                                          ClassifierKind classifier, int depth) {
  ObjectSystem system;
  COIGN_RETURN_IF_ERROR(app.Install(&system));
  ConfigurationRecord config;
  config.mode = RuntimeMode::kDistributed;
  config.distribution = distribution;
  config.classifier_kind = classifier;
  config.classifier_depth = depth;
  if (classifier_table != nullptr) {
    config.classifier_table = *classifier_table;
  }
  CoignRuntime runtime(&system, config);
  runtime.BeginScenario();
  Result<Scenario> scenario = app.FindScenario(scenario_id);
  if (!scenario.ok()) {
    return scenario.status();
  }
  MeasurementOptions options;
  options.network = network;
  options.jitter_rng = jitter;
  Rng rng(seed);
  return MeasureRun(
      system, [&](ObjectSystem& sys) { return scenario->run(sys, rng); }, options);
}

Result<AnalysisResult> AnalyzeScenario(Application& app, const std::string& scenario_id,
                                       const NetworkModel& network, uint64_t seed) {
  Result<IccProfile> profile = ProfileScenarios(app, {scenario_id},
                                                ClassifierKind::kInternalFunctionCalledBy,
                                                kCompleteStackWalk, seed);
  if (!profile.ok()) {
    return profile.status();
  }
  ProfileAnalysisEngine engine;
  return engine.Analyze(*profile, FitNetwork(network, seed));
}

FigureCounts CountFigureInstances(const Application& app, const IccProfile& profile,
                                  const Distribution& distribution) {
  FigureCounts counts;
  for (const auto& [id, info] : profile.classifications()) {
    if (app.IsInfrastructureClass(info.class_name)) {
      continue;
    }
    counts.total += info.instance_count;
    if (distribution.MachineFor(id) == kServerMachine) {
      counts.on_server += info.instance_count;
    }
  }
  return counts;
}

void PrintRule(int width) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

Result<ClassifierAccuracyRow> EvaluateOctarineClassifier(ClassifierKind kind, int depth) {
  // Every Table 1 Octarine scenario except the bigone synthesis.
  static const std::vector<std::string> kProfilingScenarios = {
      "o_newdoc", "o_newmus", "o_newtbl", "o_oldtb0", "o_oldtb3", "o_oldwp0",
      "o_oldwp3", "o_oldwp7", "o_oldbth", "o_offtb3", "o_offwp7",
  };

  std::unique_ptr<Application> app = MakeOctarine();
  ObjectSystem system;
  COIGN_RETURN_IF_ERROR(app->Install(&system));

  ConfigurationRecord config;
  config.classifier_kind = kind;
  config.classifier_depth = depth;
  CoignRuntime runtime(&system, config);
  ClassifierEvaluator evaluator(&runtime.classifier());

  Rng rng(41);
  for (const std::string& id : kProfilingScenarios) {
    Result<Scenario> scenario = app->FindScenario(id);
    if (!scenario.ok()) {
      return scenario.status();
    }
    runtime.BeginScenario();
    COIGN_RETURN_IF_ERROR(scenario->run(system, rng));
    evaluator.AccumulateProfilingRun(runtime.profiling_logger()->comm_matrix());
    system.DestroyAll();
  }

  evaluator.BeginEvaluationPhase();
  Result<Scenario> bigone = app->FindScenario("o_bigone");
  if (!bigone.ok()) {
    return bigone.status();
  }
  runtime.BeginScenario();
  COIGN_RETURN_IF_ERROR(bigone->run(system, rng));
  evaluator.AccumulateEvaluationRun(runtime.profiling_logger()->comm_matrix());
  system.DestroyAll();
  return evaluator.Row();
}

void BenchTrajectory::Add(std::string record,
                          std::vector<std::pair<std::string, double>> fields) {
  records_.push_back(Record{std::move(record), std::move(fields)});
}

std::string BenchTrajectory::ToJson() const {
  // Insertion order and %.17g keep the file byte-deterministic for a given
  // bench run while round-tripping every double exactly.
  std::string out = StrFormat("{\"bench\":\"%s\",\"records\":[", bench_.c_str());
  for (size_t r = 0; r < records_.size(); ++r) {
    const Record& record = records_[r];
    out += StrFormat("%s\n  {\"name\":\"%s\"", r == 0 ? "" : ",",
                     record.name.c_str());
    for (const auto& [key, value] : record.fields) {
      out += StrFormat(",\"%s\":%.17g", key.c_str(), value);
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Status BenchTrajectory::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return InternalError("trajectory: cannot open for write: " + path);
  }
  out << ToJson();
  out.flush();
  if (!out) {
    return InternalError("trajectory: write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace coign
