// Extension: per-interface caching + hot-spot feedback (paper §4.3/§6).
//
// "Coign can also selectively enable per-interface caching (as
// appropriate) through COM's semi-custom marshaling mechanism" and
// "provides the developer with feedback about which interfaces are
// communication hot spots."
//
// For the Benefits view workload: print the hot-spot report for the chosen
// distribution, then measure the distributed run with and without the
// caching proxy on the cacheable query interfaces.

#include <cstdio>

#include "bench/harness.h"
#include "src/analysis/hotspots.h"
#include "src/runtime/cache.h"

using namespace coign;  // NOLINT: bench binary.

namespace {

struct CachedRun {
  RunMeasurement run;
  uint64_t cache_hits = 0;
};

Result<CachedRun> MeasureWithCache(Application& app, const std::string& scenario_id,
                                   const Distribution& distribution,
                                   const std::vector<Descriptor>& table,
                                   const NetworkModel& network, bool enable_cache) {
  ObjectSystem system;
  COIGN_RETURN_IF_ERROR(app.Install(&system));
  ConfigurationRecord config;
  config.mode = RuntimeMode::kDistributed;
  config.distribution = distribution;
  config.classifier_table = table;
  CoignRuntime runtime(&system, config);
  runtime.BeginScenario();
  std::unique_ptr<InterfaceCache> cache;
  if (enable_cache) {
    cache = std::make_unique<InterfaceCache>(&system);
  }
  Result<Scenario> scenario = app.FindScenario(scenario_id);
  if (!scenario.ok()) {
    return scenario.status();
  }
  MeasurementOptions options;
  options.network = network;
  Rng rng(17);
  Result<RunMeasurement> run = MeasureRun(
      system, [&](ObjectSystem& sys) { return scenario->run(sys, rng); }, options);
  if (!run.ok()) {
    return run.status();
  }
  CachedRun out;
  out.run = *run;
  out.cache_hits = cache ? cache->hits() : 0;
  return out;
}

}  // namespace

int main() {
  const char* kScenario = "b_bigone";
  const NetworkModel network = NetworkModel::TenBaseT();

  Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(kScenario);
  if (!app.ok()) {
    return 1;
  }
  std::vector<Descriptor> table;
  Result<IccProfile> profile =
      ProfileScenarios(**app, {kScenario}, ClassifierKind::kInternalFunctionCalledBy,
                       kCompleteStackWalk, 17, &table);
  if (!profile.ok()) {
    return 1;
  }
  const NetworkProfile fitted = FitNetwork(network);
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(*profile, fitted);
  if (!analysis.ok()) {
    return 1;
  }

  // Hot-spot feedback for the developer.
  ObjectSystem names;
  if (!(*app)->Install(&names).ok()) {
    return 1;
  }
  const std::vector<HotSpot> spots =
      FindHotSpots(*profile, analysis->distribution, fitted, &names.interfaces(), 8);
  std::printf("Extension: hot-spot feedback + per-interface caching (%s).\n\n", kScenario);
  std::printf("%s\n", HotSpotReport(spots).c_str());

  Result<CachedRun> plain = MeasureWithCache(**app, kScenario, analysis->distribution,
                                             table, network, /*enable_cache=*/false);
  Result<CachedRun> cached = MeasureWithCache(**app, kScenario, analysis->distribution,
                                              table, network, /*enable_cache=*/true);
  if (!plain.ok() || !cached.ok()) {
    return 1;
  }
  PrintRule(74);
  std::printf("%-22s %14s %14s %12s\n", "", "Remote calls", "Comm (s)", "Cache hits");
  std::printf("%-22s %14llu %14.3f %12s\n", "Coign distribution",
              static_cast<unsigned long long>(plain->run.remote_calls),
              plain->run.communication_seconds, "-");
  std::printf("%-22s %14llu %14.3f %12llu\n", "+ interface caching",
              static_cast<unsigned long long>(cached->run.remote_calls),
              cached->run.communication_seconds,
              static_cast<unsigned long long>(cached->cache_hits));
  PrintRule(74);
  std::printf("Savings from caching: %.0f%% of remaining communication time.\n",
              100.0 * (1.0 - cached->run.communication_seconds /
                                 plain->run.communication_seconds));
  return 0;
}
