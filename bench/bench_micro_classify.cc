// Microbenchmark: per-instantiation classification cost for each instance
// classifier, over back-traces of realistic depth. This is the overhead
// the RTE pays inside every trapped CoCreateInstance.

#include <benchmark/benchmark.h>

#include "src/classify/classifiers.h"
#include "src/support/rng.h"

namespace coign {
namespace {

std::vector<CallFrame> MakeBackTrace(int depth, Rng& rng) {
  std::vector<CallFrame> trace;
  for (int i = 0; i < depth; ++i) {
    CallFrame frame;
    frame.instance = static_cast<InstanceId>(rng.UniformInt(1, 40));
    frame.clsid = Guid::FromName("clsid:C" + std::to_string(rng.UniformInt(0, 20)));
    frame.iid = Guid::FromName("iid:I" + std::to_string(rng.UniformInt(0, 5)));
    frame.method = static_cast<MethodIndex>(rng.UniformInt(0, 3));
    trace.push_back(frame);
  }
  return trace;
}

void RunClassifierBench(benchmark::State& state, ClassifierKind kind) {
  const int depth = static_cast<int>(state.range(0));
  Rng rng(11);
  ClassDesc cls;
  cls.clsid = Guid::FromName("clsid:Bench");
  cls.name = "Bench";
  // A pool of realistic back-traces to cycle through.
  std::vector<std::vector<CallFrame>> traces;
  for (int i = 0; i < 64; ++i) {
    traces.push_back(MakeBackTrace(depth, rng));
  }
  std::unique_ptr<InstanceClassifier> classifier = MakeClassifier(kind);
  InstanceId next = 1;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier->Classify(cls, traces[i % traces.size()], next++));
    ++i;
  }
  state.counters["classifications"] =
      static_cast<double>(classifier->classification_count());
}

void BM_ClassifyIncremental(benchmark::State& state) {
  RunClassifierBench(state, ClassifierKind::kIncremental);
}
void BM_ClassifyStaticType(benchmark::State& state) {
  RunClassifierBench(state, ClassifierKind::kStaticType);
}
void BM_ClassifyPcb(benchmark::State& state) {
  RunClassifierBench(state, ClassifierKind::kProcedureCalledBy);
}
void BM_ClassifyStcb(benchmark::State& state) {
  RunClassifierBench(state, ClassifierKind::kStaticTypeCalledBy);
}
void BM_ClassifyIfcb(benchmark::State& state) {
  RunClassifierBench(state, ClassifierKind::kInternalFunctionCalledBy);
}
void BM_ClassifyEpcb(benchmark::State& state) {
  RunClassifierBench(state, ClassifierKind::kEntryPointCalledBy);
}
void BM_ClassifyIb(benchmark::State& state) {
  RunClassifierBench(state, ClassifierKind::kInstantiatedBy);
}

BENCHMARK(BM_ClassifyIncremental)->Arg(8);
BENCHMARK(BM_ClassifyStaticType)->Arg(8);
BENCHMARK(BM_ClassifyPcb)->Arg(8)->Arg(32);
BENCHMARK(BM_ClassifyStcb)->Arg(8)->Arg(32);
BENCHMARK(BM_ClassifyIfcb)->Arg(8)->Arg(32);
BENCHMARK(BM_ClassifyEpcb)->Arg(8)->Arg(32);
BENCHMARK(BM_ClassifyIb)->Arg(8);

}  // namespace
}  // namespace coign

BENCHMARK_MAIN();
