// Extension: crash-consistency of live migration under a crash storm.
//
// The journaled two-phase migrator claims that a coordinator crash at any
// point mid-migration loses nothing: the write-ahead journal makes the
// commit point durable, recovery rolls in-flight copies back (or redoes
// committed flips), and the interrupted migration re-enters the policy
// loop to finish at a later healthy epoch. This bench puts that claim
// under a deliberately hostile regime — the CrashStorm fault schedule
// (repeated machine crashes, an asymmetric Gilbert-Elliott loss episode,
// a mid-run partition) plus a coordinator crash gate that fires during
// the migration protocol itself — and measures what resilience costs.
//
// The oracle is the fault-free adaptive run: its migration bytes are the
// minimum any crash-free coordinator would ship. Per storm seed we report
// executed time, interrupted migrations, resume rounds, rollbacks, and
// wasted (retransmitted or rolled-back) state bytes relative to that
// oracle. The bench fails if any seed needs more resume rounds than the
// configured bound, or if the storm prevents migrations from completing
// at all (no seed moves state even though the oracle does).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/apps/octarine.h"
#include "src/fault/injector.h"
#include "src/online/measure_online.h"
#include "src/profile/icc_profile.h"

using namespace coign;  // NOLINT: bench binary.

namespace {

// The coordinator crash gate: fires `crashes` times, at protocol steps
// spaced geometrically so early crashes land mid-copy and later ones test
// the resumed attempts. Deterministic per seed.
struct StormGate {
  uint64_t step = 0;
  uint64_t next = 0;
  int crashes_left = 0;
};

}  // namespace

int main() {
  std::unique_ptr<Application> app = MakeOctarine();

  // Drift base: profiled on the text-heavy scenario only, then run over a
  // text/table phase-shifting workload — so drift fires, the policy
  // accepts a recut, and real state migrates while the storm rages.
  const std::vector<std::string> kProfiled = {"o_oldwp7"};
  std::vector<Descriptor> table;
  Result<IccProfile> profile =
      ProfileScenarios(*app, kProfiled, ClassifierKind::kInternalFunctionCalledBy,
                       kCompleteStackWalk, 17, &table);
  if (!profile.ok()) {
    std::fprintf(stderr, "profile: %s\n", profile.status().ToString().c_str());
    return 1;
  }

  const NetworkModel network = NetworkModel::TenBaseT();
  // Profiler-fitted (as the CLI does), not the analytic fit: the live
  // estimator compares against this same baseline during the runs.
  Rng fit_rng(23);
  NetworkProfiler profiler;
  const NetworkProfile fitted = profiler.Profile(Transport(network), fit_rng);
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(*profile, fitted);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analyze: %s\n", analysis.status().ToString().c_str());
    return 1;
  }

  const std::vector<OnlinePhase> workload =
      CyclicWorkload({"o_oldwp7", "o_mixed9"}, /*repetitions=*/3, /*cycles=*/2);

  ConfigurationRecord config;
  config.mode = RuntimeMode::kDistributed;
  config.classifier_table = table;
  config.distribution = analysis->distribution;

  OnlineMeasurementOptions base;
  base.network = network;
  base.fitted = fitted;
  // Default OnlineOptions (the CLI chaos configuration): drift-driven
  // recuts that migrate live state, not just lazy adoptions.
  base.retry = SuggestedRetryPolicy(network);

  // Fault-free references: the shipped static cut (for the horizon) and
  // the adaptive oracle (minimum migration bytes, zero waste).
  base.adaptive = false;
  Result<OnlineRunResult> clean_static =
      MeasureOnlineRun(*app, workload, config, *profile, base);
  if (!clean_static.ok()) {
    std::fprintf(stderr, "clean static: %s\n", clean_static.status().ToString().c_str());
    return 1;
  }
  base.adaptive = true;
  Result<OnlineRunResult> oracle =
      MeasureOnlineRun(*app, workload, config, *profile, base);
  if (!oracle.ok()) {
    std::fprintf(stderr, "oracle: %s\n", oracle.status().ToString().c_str());
    return 1;
  }
  const double horizon = clean_static->run.execution_seconds;
  // State sizes are heterogeneous: each instance's migration cost is its
  // profiled allocation footprint (falling back to the flat policy default
  // for classes that never allocated). Report the spread so the waste
  // ratios below are read against real per-instance costs, not one number.
  const uint64_t flat_bytes = base.online.policy.state_bytes_per_instance;
  uint64_t min_state = ~0ull, max_state = 0, sum_state = 0, profiled_classes = 0;
  for (const auto& [id, info] : profile->classifications()) {
    if (info.allocation_bytes == 0) {
      continue;
    }
    const uint64_t state = ProfiledStateBytes(&info, flat_bytes);
    min_state = std::min(min_state, state);
    max_state = std::max(max_state, state);
    sum_state += state;
    ++profiled_classes;
  }
  if (profiled_classes == 0) {
    std::fprintf(stderr, "no profiled allocations: state sizes are all flat\n");
    return 1;
  }

  std::printf(
      "Extension: crash-consistent live migration under a crash storm\n"
      "(Octarine, text/table drift workload, %s).\n"
      "Fault-free adaptive reference: %.3f s exec, %llu recuts, %llu instances\n"
      "moved (drift recuts land between executions, so clean runs adopt\n"
      "lazily; the storm's estimator swings are what force live moves).\n"
      "Profiled per-instance state: %llu..%llu B (mean %llu B) across %llu\n"
      "allocating classes; unprofiled classes fall back to %llu B flat.\n"
      "The oracle cost of a run is its committed migration bytes — each\n"
      "moved instance's profiled state shipped exactly once, zero waste.\n\n",
      network.name.c_str(), oracle->run.execution_seconds,
      static_cast<unsigned long long>(oracle->online.repartitions),
      static_cast<unsigned long long>(oracle->online.instances_moved),
      static_cast<unsigned long long>(min_state),
      static_cast<unsigned long long>(max_state),
      static_cast<unsigned long long>(sum_state / profiled_classes),
      static_cast<unsigned long long>(profiled_classes),
      static_cast<unsigned long long>(flat_bytes));
  PrintRule(96);
  std::printf("%-6s %9s %6s %7s %8s %7s %9s %7s %9s\n", "Seed", "Exec (s)", "Moves",
              "Interr.", "Resumes", "Rollbk", "Waste (B)", "Dedup", "Waste/orc");
  PrintRule(96);

  const uint64_t kSeeds = 5;
  uint64_t total_interrupted = 0;
  uint64_t total_moved = 0;
  uint64_t worst_resumes = 0;
  bool resume_bound_violated = false;
  bool interrupted_without_completion = false;

  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    CrashStormOptions storm_options;
    storm_options.horizon_seconds = horizon;
    FaultSchedule schedule = FaultSchedule::CrashStorm(storm_options, seed);
    FaultRates background;
    background.drop = 0.01;

    FaultInjector injector(schedule, background, seed + 1);
    OnlineMeasurementOptions options = base;
    options.adaptive = true;
    options.faults = &injector;
    // The coordinator crash gate: 3 crashes per run, the first a few
    // protocol steps in, the rest geometrically later.
    auto gate = std::make_shared<StormGate>();
    gate->next = 3 + seed % 5;
    gate->crashes_left = 3;
    options.migration_crash_gate = [gate]() {
      if (gate->crashes_left <= 0) {
        return false;
      }
      if (++gate->step >= gate->next) {
        gate->step = 0;
        gate->next *= 2;
        --gate->crashes_left;
        return true;
      }
      return false;
    };

    Result<OnlineRunResult> run =
        MeasureOnlineRun(*app, workload, config, *profile, options);
    if (!run.ok()) {
      std::fprintf(stderr, "seed %llu: %s\n",
                   static_cast<unsigned long long>(seed),
                   run.status().ToString().c_str());
      return 1;
    }
    const OnlineStats& stats = run->online;
    // Heterogeneous oracle: committed migration bytes are each moved
    // instance's profiled state shipped exactly once — what a crash-free
    // coordinator would pay for the same moves.
    const uint64_t run_oracle_bytes = stats.migration_bytes;
    const double waste_ratio =
        run_oracle_bytes > 0 ? static_cast<double>(stats.migration_wasted_bytes) /
                                   static_cast<double>(run_oracle_bytes)
                             : 0.0;
    std::printf("%-6llu %9.3f %6llu %7llu %8llu %7llu %9llu %7llu %8.2fx\n",
                static_cast<unsigned long long>(seed), run->run.execution_seconds,
                static_cast<unsigned long long>(stats.instances_moved),
                static_cast<unsigned long long>(stats.interrupted_migrations),
                static_cast<unsigned long long>(stats.migration_resumes),
                static_cast<unsigned long long>(stats.migration_rollbacks),
                static_cast<unsigned long long>(stats.migration_wasted_bytes),
                static_cast<unsigned long long>(stats.duplicates_suppressed),
                waste_ratio);
    total_interrupted += stats.interrupted_migrations;
    total_moved += stats.instances_moved;
    if (stats.migration_resumes > worst_resumes) {
      worst_resumes = stats.migration_resumes;
    }
    if (stats.migration_resumes > base.online.max_migration_resumes) {
      resume_bound_violated = true;
    }
    if (stats.interrupted_migrations > 0 && stats.instances_moved == 0) {
      interrupted_without_completion = true;
    }
  }
  PrintRule(96);

  std::printf(
      "\nAcross %llu storm seeds: %llu interrupted migrations, %llu instances\n"
      "moved, worst resume count %llu (bound %llu).\n",
      static_cast<unsigned long long>(kSeeds),
      static_cast<unsigned long long>(total_interrupted),
      static_cast<unsigned long long>(total_moved),
      static_cast<unsigned long long>(worst_resumes),
      static_cast<unsigned long long>(base.online.max_migration_resumes));

  // The storm must actually interrupt migrations — otherwise the bench is
  // measuring nothing.
  if (total_interrupted == 0) {
    std::printf("WARNING: no migration was interrupted; the crash gate never bit.\n");
    return 1;
  }
  // Migrations complete under the storm: every seed whose migration was
  // crashed mid-protocol still lands its state on the new cut.
  if (interrupted_without_completion || total_moved == 0) {
    std::printf("WARNING: an interrupted migration never completed under the storm.\n");
    return 1;
  }
  // Bounded retries: recovery converges within the configured resume budget.
  if (resume_bound_violated) {
    std::printf("WARNING: a storm run exceeded max_migration_resumes (%llu > %llu).\n",
                static_cast<unsigned long long>(worst_resumes),
                static_cast<unsigned long long>(base.online.max_migration_resumes));
    return 1;
  }
  return 0;
}
