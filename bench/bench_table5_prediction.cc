// Table 5: accuracy of the prediction models. For each scenario optimized
// for itself, compare Coign's predicted execution time (profiled compute +
// predicted communication under the fitted network profile) with the
// "measured" execution time of a jittered simulated run of the chosen
// distribution.
//
// Expected shape (paper): errors within single-digit percent; none beyond
// ~8 %.

#include <cmath>
#include <cstdio>

#include "bench/harness.h"

using namespace coign;  // NOLINT: bench binary.

int main() {
  const NetworkModel network = NetworkModel::TenBaseT();
  const NetworkProfile fitted = FitNetwork(network);

  std::printf("Table 5. Accuracy of Prediction Models (%s).\n", network.name.c_str());
  PrintRule(66);
  std::printf("%-10s | %14s %14s %10s\n", "", "Execution", "Time (sec.)", "");
  std::printf("%-10s | %14s %14s %10s\n", "Scenario", "Predicted", "Measured", "Error");
  PrintRule(66);

  double worst_error = 0.0;
  for (const std::string& id : Table1ScenarioIds()) {
    Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(id);
    if (!app.ok()) {
      return 1;
    }
    Result<IccProfile> profile = ProfileScenarios(**app, {id});
    if (!profile.ok()) {
      return 1;
    }
    ProfileAnalysisEngine engine;
    Result<AnalysisResult> analysis = engine.Analyze(*profile, fitted);
    if (!analysis.ok()) {
      return 1;
    }

    const ExecutionPrediction prediction =
        PredictExecutionTime(*profile, analysis->distribution, fitted);

    Rng jitter(1234);
    Result<RunMeasurement> measured =
        MeasureDistributed(**app, id, analysis->distribution, network, &jitter);
    if (!measured.ok()) {
      return 1;
    }

    const double predicted_seconds = prediction.total_seconds();
    const double measured_seconds = measured->execution_seconds;
    const double error =
        measured_seconds > 0.0
            ? 100.0 * (predicted_seconds - measured_seconds) / measured_seconds
            : 0.0;
    worst_error = std::max(worst_error, std::abs(error));
    std::printf("%-10s | %14.3f %14.3f %9.1f%%\n", id.c_str(), predicted_seconds,
                measured_seconds, error);
  }
  PrintRule(66);
  std::printf("Worst absolute error: %.1f%% (paper: none beyond 8%%)\n", worst_error);
  return 0;
}
