// Figure 4: the PhotoDraw distribution. Loading a 3 MB composition from
// storage; the reader and the high-level property sets (created directly
// from file data, with larger input than output) move to the server, while
// the sprite caches are held to the client by the non-distributable
// shared-memory interfaces.

#include "bench/figure_common.h"

int main() {
  return coign::RunFigureBench(
      "Figure 4. PhotoDraw Distribution (view composition).", "p_oldmsr",
      "Of 295 components, Coign places 8 on the server (the document reader and "
      "seven property sets); almost 50 non-distributable interfaces pin the sprite "
      "caches to the GUI.");
}
