// Ablation: exponential size-range summarization vs exact per-size logging
// (paper §3.3: "the profiling logger reduces memory overhead by summarizing
// data for messages in common size ranges ... summarization preserves
// network independence while significantly lowering storage requirements").
//
// Measures, per scenario: raw trace records an event logger writes (one
// per call — storage grows linearly with execution time), distinct
// (pair, method, sizes) records a distinct-size logger would keep, and the
// bucket entries the summarizing logger keeps (bounded by pairs x methods x
// buckets, independent of execution length). The summarization introduces
// zero error into predicted communication time under the affine cost
// model, because bucket byte totals are exact.

#include <cstdio>
#include <set>
#include <tuple>

#include "bench/harness.h"
#include "src/runtime/rte.h"

using namespace coign;  // NOLINT: bench binary.

namespace {

struct SummarizationStats {
  uint64_t calls = 0;
  size_t exact_records = 0;
  size_t bucket_records = 0;
};

Result<SummarizationStats> Measure(const std::string& scenario_id, int repeats = 1) {
  Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(scenario_id);
  if (!app.ok()) {
    return app.status();
  }
  ObjectSystem system;
  COIGN_RETURN_IF_ERROR((*app)->Install(&system));
  ConfigurationRecord config;
  CoignRuntime runtime(&system, config);
  EventLogger events;
  runtime.AddLogger(&events);
  Rng rng(17);
  Result<Scenario> scenario = (*app)->FindScenario(scenario_id);
  if (!scenario.ok()) {
    return scenario.status();
  }
  for (int r = 0; r < repeats; ++r) {
    runtime.BeginScenario();
    COIGN_RETURN_IF_ERROR(scenario->run(system, rng));
    system.DestroyAll();
  }

  SummarizationStats stats;
  std::set<std::tuple<ClassificationId, ClassificationId, MethodIndex, uint64_t, uint64_t>>
      exact;
  for (const ProfileEvent& event : events.events()) {
    if (event.kind != EventKind::kInterfaceCall) {
      continue;
    }
    ++stats.calls;
    exact.emplace(event.caller_classification, event.subject_classification, event.method,
                  event.request_bytes, event.reply_bytes);
  }
  stats.exact_records = exact.size();
  const IccProfile& profile = runtime.profiling_logger()->profile();
  for (const auto& [key, summary] : profile.calls()) {
    stats.bucket_records +=
        summary.requests.NonEmptyBuckets().size() + summary.replies.NonEmptyBuckets().size();
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("Ablation: exponential size-range summarization vs exact logging.\n");
  PrintRule(78);
  std::printf("%-10s %14s %16s %16s %12s\n", "Scenario", "Trace records", "Distinct sizes",
              "Bucket records", "Compression");
  PrintRule(78);
  for (const char* id : {"o_oldwp7", "o_oldtb3", "o_mixed9", "p_oldmsr", "b_bigone"}) {
    Result<SummarizationStats> stats = Measure(id);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s: %s\n", id, stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %14llu %16zu %16zu %11.1fx\n", id,
                static_cast<unsigned long long>(stats->calls), stats->exact_records,
                stats->bucket_records,
                stats->bucket_records > 0
                    ? static_cast<double>(stats->calls) /
                          static_cast<double>(stats->bucket_records)
                    : 0.0);
  }
  PrintRule(78);
  std::printf("\nGrowth with profiling length (the paper's claim: \"the overhead for\n"
              "storing communication information does not grow linearly with execution\n"
              "time ... the application may be run through profiling scenarios for days\n"
              "or even weeks\"): o_oldwp0 repeated N times in one profiling session.\n");
  PrintRule(78);
  std::printf("%-10s %14s %16s\n", "Repeats", "Trace records", "Bucket records");
  PrintRule(78);
  for (int repeats : {1, 4, 16, 64}) {
    Result<SummarizationStats> stats = Measure("o_oldwp0", repeats);
    if (!stats.ok()) {
      return 1;
    }
    std::printf("%-10d %14llu %16zu\n", repeats,
                static_cast<unsigned long long>(stats->calls), stats->bucket_records);
  }
  PrintRule(78);
  std::printf("Bucket byte totals are exact, so predicted communication time is\n"
              "identical with or without summarization under the affine cost model;\n"
              "storage shrinks and, crucially, stays bounded as profiling runs grow.\n");
  return 0;
}
