// Microbenchmark: deep-copy sizing vs full serialization vs round trip —
// the in-process proxy/stub work the profiling informer performs on every
// intercepted call.

#include <benchmark/benchmark.h>

#include "src/marshal/ndr.h"
#include "src/marshal/proxy_stub.h"

namespace coign {
namespace {

Message SmallControlMessage() {
  Message m;
  m.Add("handle", Value::FromInt32(3));
  m.Add("offset", Value::FromInt64(4096));
  m.Add("size", Value::FromInt32(1536));
  return m;
}

Message NestedMessage() {
  std::vector<Value> rows;
  for (int r = 0; r < 16; ++r) {
    rows.push_back(Value::FromRecord({
        {"id", Value::FromInt32(r)},
        {"name", Value::FromString("row name with some text")},
        {"cells", Value::FromArray({Value::FromDouble(1.5), Value::FromDouble(2.5),
                                    Value::FromInt64(1 << 20)})},
    }));
  }
  Message m;
  m.Add("rows", Value::FromArray(std::move(rows)));
  m.Add("iface", Value::FromInterface(ObjectRef{7, Guid::FromName("iid:IX")}));
  return m;
}

Message BlobMessage(uint64_t bytes) {
  Message m;
  m.Add("pixels", Value::BlobOfSize(bytes, 9));
  return m;
}

void BM_WireSizeControl(benchmark::State& state) {
  const Message m = SmallControlMessage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(WireSize(m));
  }
}
BENCHMARK(BM_WireSizeControl);

void BM_WireSizeNested(benchmark::State& state) {
  const Message m = NestedMessage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(WireSize(m));
  }
}
BENCHMARK(BM_WireSizeNested);

void BM_WireSizeBlob(benchmark::State& state) {
  const Message m = BlobMessage(static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(WireSize(m));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireSizeBlob)->Arg(1024)->Arg(65536)->Arg(1 << 20);

void BM_SerializeNested(benchmark::State& state) {
  const Message m = NestedMessage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Serialize(m));
  }
}
BENCHMARK(BM_SerializeNested);

void BM_RoundTripNested(benchmark::State& state) {
  const Message m = NestedMessage();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoundTrip(m));
  }
}
BENCHMARK(BM_RoundTripNested);

void BM_MeasureCall(benchmark::State& state) {
  const InterfaceDesc iface = InterfaceBuilder("IBench")
                                  .Method("M")
                                  .In("rows", ValueKind::kArray)
                                  .Out("ok", ValueKind::kBool)
                                  .Build();
  const Message in = NestedMessage();
  Message out;
  out.Add("ok", Value::FromBool(true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MeasureCall(iface, 0, in, out));
  }
}
BENCHMARK(BM_MeasureCall);

}  // namespace
}  // namespace coign

BENCHMARK_MAIN();
