// Table 4: reduction in communication time. For every Table 1 scenario:
// profile it, choose a distribution, and measure communication time under
// the developer's default distribution and under the Coign-chosen one
// (10BaseT network, deterministic accounting).
//
// Expected shape (paper): Coign is never worse than the default; savings
// are near zero for the small/new-document scenarios, huge (>= 95 %) for
// the large table/text documents, moderate for PhotoDraw (bulk pixel
// transfers remain), and substantial for the Benefits 3-tier application.

#include <cstdio>

#include "bench/harness.h"

using namespace coign;  // NOLINT: bench binary.

int main() {
  const NetworkModel network = NetworkModel::TenBaseT();
  const NetworkProfile fitted = FitNetwork(network);

  std::printf("Table 4. Reduction in Communication Time (%s).\n", network.name.c_str());
  PrintRule(64);
  std::printf("%-10s | %12s %12s %10s\n", "", "Comm. Time", "(secs.)", "");
  std::printf("%-10s | %12s %12s %10s\n", "Scenario", "Default", "Coign", "Savings");
  PrintRule(64);

  for (const std::string& id : Table1ScenarioIds()) {
    Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(id);
    if (!app.ok()) {
      std::fprintf(stderr, "%s: %s\n", id.c_str(), app.status().ToString().c_str());
      return 1;
    }

    Result<IccProfile> profile = ProfileScenarios(**app, {id});
    if (!profile.ok()) {
      std::fprintf(stderr, "%s: %s\n", id.c_str(), profile.status().ToString().c_str());
      return 1;
    }
    ProfileAnalysisEngine engine;
    Result<AnalysisResult> analysis = engine.Analyze(*profile, fitted);
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s: %s\n", id.c_str(), analysis.status().ToString().c_str());
      return 1;
    }

    Result<RunMeasurement> default_run = MeasureDefault(**app, id, network);
    Result<RunMeasurement> coign_run =
        MeasureDistributed(**app, id, analysis->distribution, network);
    if (!default_run.ok() || !coign_run.ok()) {
      std::fprintf(stderr, "%s: measurement failed\n", id.c_str());
      return 1;
    }

    const double default_seconds = default_run->communication_seconds;
    const double coign_seconds = coign_run->communication_seconds;
    const double savings =
        default_seconds > 0.0 ? 100.0 * (1.0 - coign_seconds / default_seconds) : 0.0;
    std::printf("%-10s | %12.3f %12.3f %9.0f%%\n", id.c_str(), default_seconds,
                coign_seconds, savings);
  }
  PrintRule(64);
  return 0;
}
