// Extension: usage-drift detection (paper §6). Trains Octarine on
// text-document scenarios, distributes it accordingly, then runs the
// lightweight runtime (with cheap message counting) under three usage
// patterns: the trained usage, a drifted usage (tables instead of text),
// and a mixed usage. The drift detector flags when re-profiling would pay.

#include <cstdio>

#include "bench/harness.h"
#include "src/apps/octarine.h"
#include "src/runtime/drift.h"

using namespace coign;  // NOLINT: bench binary.

namespace {

Result<DriftReport> ObserveUsage(Application& app, const IccProfile& trained,
                                 const Distribution& distribution,
                                 const std::vector<Descriptor>& classifier_table,
                                 const std::vector<std::string>& usage) {
  ObjectSystem system;
  COIGN_RETURN_IF_ERROR(app.Install(&system));
  ConfigurationRecord config;
  config.mode = RuntimeMode::kDistributed;
  config.distribution = distribution;
  config.classifier_table = classifier_table;
  CoignRuntime runtime(&system, config);
  runtime.EnableMessageCounting();
  Rng rng(19);
  for (const std::string& id : usage) {
    Result<Scenario> scenario = app.FindScenario(id);
    if (!scenario.ok()) {
      return scenario.status();
    }
    runtime.BeginScenario();
    COIGN_RETURN_IF_ERROR(scenario->run(system, rng));
    system.DestroyAll();
  }
  return DetectDrift(trained, runtime.message_counts());
}

}  // namespace

int main() {
  std::unique_ptr<Application> app = MakeOctarine();

  // Train on text documents only; keep the classification table — the
  // lightweight runtime needs it to map run-time instances to profiled ids.
  std::vector<Descriptor> classifier_table;
  Result<IccProfile> trained = ProfileScenarios(
      *app, {"o_newdoc", "o_oldwp0", "o_oldwp3", "o_oldwp7"},
      ClassifierKind::kInternalFunctionCalledBy, kCompleteStackWalk, 17, &classifier_table);
  if (!trained.ok()) {
    return 1;
  }
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis =
      engine.Analyze(*trained, FitNetwork(NetworkModel::TenBaseT()));
  if (!analysis.ok()) {
    return 1;
  }

  std::printf("Extension: usage-drift detection on Octarine (trained on text docs).\n");
  PrintRule(88);
  std::printf("%-34s %12s %12s %12s %10s\n", "Runtime usage", "Messages", "Similarity",
              "Unprofiled", "Reprofile?");
  PrintRule(88);

  struct UsageCase {
    const char* label;
    std::vector<std::string> scenarios;
  };
  const UsageCase kCases[] = {
      {"text documents (as trained)", {"o_oldwp0", "o_oldwp3", "o_oldwp7"}},
      {"table documents (drifted)", {"o_oldtb0", "o_oldtb3"}},
      {"mixed documents (drifted)", {"o_oldbth"}},
      {"music documents (drifted)", {"o_newmus"}},
  };
  for (const UsageCase& usage_case : kCases) {
    Result<DriftReport> report = ObserveUsage(*app, *trained, analysis->distribution,
                                              classifier_table, usage_case.scenarios);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", usage_case.label,
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%-34s %12llu %12.3f %11.1f%% %10s\n", usage_case.label,
                static_cast<unsigned long long>(report->observed_messages),
                report->similarity, report->unprofiled_fraction * 100.0,
                report->reprofile_recommended ? "YES" : "no");
  }
  PrintRule(88);
  std::printf("The trained usage stays above the similarity threshold; drifted usages\n"
              "are flagged, which would silently re-enable profiling (paper §6).\n");
  return 0;
}
