// Extension: multi-machine partitioning (the paper restricts its evaluation
// to the exact two-way algorithm; §2 points at multiway heuristics for
// three or more machines). Partitions the Corporate Benefits Sample across
// a true 3-tier deployment — client, middle tier, database server — with
// the isolation heuristic, and compares against the developer's 3-tier
// split and the two-way Coign cut.

#include <array>
#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "src/analysis/multiway.h"

using namespace coign;  // NOLINT: bench binary.

int main() {
  const char* kScenario = "b_bigone";
  Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(kScenario);
  if (!app.ok()) {
    return 1;
  }
  Result<IccProfile> profile = ProfileScenarios(**app, {kScenario});
  if (!profile.ok()) {
    return 1;
  }
  const NetworkProfile network = FitNetwork(NetworkModel::TenBaseT());

  std::printf("Extension: 3-machine partitioning of Benefits (isolation heuristic).\n");
  PrintRule(78);

  // Two-way Coign cut for reference.
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> twoway = engine.Analyze(*profile, network);
  if (!twoway.ok()) {
    return 1;
  }
  std::printf("Two-way cut:   %zu client / %zu server classifications, %.4f s crossing\n",
              twoway->client_classifications, twoway->server_classifications,
              twoway->predicted_comm_seconds);

  // Three-way: client (GUI), middle tier, database server (storage/ODBC).
  MultiwayOptions options;
  options.machine_count = 3;
  options.gui_machine = 0;
  options.storage_machine = 2;
  // The administrator anchors the trusted business logic to the middle
  // tier (absolute constraints, paper §4.3); Coign places everything else.
  for (const auto& [id, info] : profile->classifications()) {
    if (info.class_name == "BN.SessionMgr" || info.class_name == "BN.BizRules" ||
        info.class_name == "BN.Validator") {
      options.extra_pins.emplace_back(id, 1);
    }
  }
  Result<MultiwayAnalysisResult> threeway = AnalyzeMultiway(*profile, network, options);
  if (!threeway.ok()) {
    std::fprintf(stderr, "%s\n", threeway.status().ToString().c_str());
    return 1;
  }
  std::printf("Three-way cut: ");
  const char* kTierNames[] = {"client", "middle", "db"};
  for (int machine = 0; machine < 3; ++machine) {
    std::printf("%s=%zu cls/%llu inst%s", kTierNames[machine],
                threeway->classifications_per_machine[static_cast<size_t>(machine)],
                static_cast<unsigned long long>(
                    threeway->instances_per_machine[static_cast<size_t>(machine)]),
                machine < 2 ? ", " : "");
  }
  std::printf(", %.4f s crossing\n", threeway->crossing_seconds);
  PrintRule(78);

  // Per-tier class placement summary.
  std::printf("Per-class tiering (three-way):\n");
  std::map<std::string, std::array<uint64_t, 3>> by_class;
  for (const auto& [id, machine] : threeway->distribution.placement) {
    const ClassificationInfo* info = profile->FindClassification(id);
    if (info != nullptr && machine >= 0 && machine < 3) {
      by_class[info->class_name][static_cast<size_t>(machine)] += info->instance_count;
    }
  }
  std::printf("%-24s %8s %8s %8s\n", "class", "client", "middle", "db");
  for (const auto& [name, counts] : by_class) {
    std::printf("%-24s %8llu %8llu %8llu\n", name.c_str(),
                static_cast<unsigned long long>(counts[0]),
                static_cast<unsigned long long>(counts[1]),
                static_cast<unsigned long long>(counts[2]));
  }
  PrintRule(78);
  std::printf("The isolation heuristic keeps the GUI on the client, the ODBC/database\n"
              "components on the db tier, and splits the middle: chatty caches join the\n"
              "client exactly as in the two-way cut, database-bound logic joins the db.\n");
  return 0;
}
