// Extension: fleet partitioning at population scale.
//
// The paper partitions one application for one client over one measured
// network. A deployed service faces thousands of clients at once, each
// with its own measured link. This bench drives the fleet partitioning
// service over a seeded 2,000-client population and reports the numbers
// that justify its three design moves:
//   - cohorting:  plans/sec over cohorts vs naive per-client planning,
//                 and the execution-time regret cohorted plans pay vs
//                 each client's individually optimal cut;
//   - threading:  parallel speedup of the worker pool over the serial
//                 path (bounded above by the host's core count — printed
//                 so single-core CI numbers read correctly);
//   - caching:    warm-pass hit rate and speedup when the same fleet is
//                 planned again (the steady state of a long-running
//                 service).

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/apps/octarine.h"
#include "src/fleet/service.h"
#include "src/sim/fleet_population.h"

using namespace coign;  // NOLINT: bench binary.

namespace {

constexpr int kClients = 2000;
constexpr uint64_t kFleetSeed = 42;

double SecondsOf(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

}  // namespace

int main() {
  std::unique_ptr<Application> app = MakeOctarine();
  Result<IccProfile> profile =
      ProfileScenarios(*app, {"o_newdoc", "o_oldwp3"});
  if (!profile.ok()) {
    std::fprintf(stderr, "profiling: %s\n", profile.status().ToString().c_str());
    return 1;
  }

  FleetPopulationOptions population;
  population.client_count = kClients;
  const std::vector<FleetClient> fleet = GenerateFleet(population, kFleetSeed);

  std::printf("fleet partitioning: %d clients, seed %llu, host cores %u\n\n", kClients,
              static_cast<unsigned long long>(kFleetSeed),
              std::thread::hardware_concurrency());

  // Serial baseline, cache off: raw per-cohort analysis throughput.
  double serial_seconds = 0.0;
  size_t cohorts = 0;
  {
    FleetServiceOptions options;
    options.worker_threads = 1;
    options.cache_capacity = 0;
    FleetPartitionService service(options);
    Result<FleetPlanResult> planned(InternalError("unset"));
    serial_seconds = SecondsOf([&] { planned = service.Plan(*profile, fleet); });
    if (!planned.ok()) {
      std::fprintf(stderr, "serial plan: %s\n", planned.status().ToString().c_str());
      return 1;
    }
    cohorts = planned->stats.cohorts;
    std::printf("serial      | %4zu cohorts in %6.3f s | %7.1f plans/s | %8.1f clients/s\n",
                cohorts, serial_seconds, cohorts / serial_seconds,
                kClients / serial_seconds);
  }

  // Worker-pool sweep, cache off: parallel speedup over the serial path.
  for (const int threads : {2, 4, 8}) {
    FleetServiceOptions options;
    options.worker_threads = threads;
    options.cache_capacity = 0;
    FleetPartitionService service(options);
    Result<FleetPlanResult> planned(InternalError("unset"));
    const double seconds = SecondsOf([&] { planned = service.Plan(*profile, fleet); });
    if (!planned.ok()) {
      std::fprintf(stderr, "%d-thread plan: %s\n", threads,
                   planned.status().ToString().c_str());
      return 1;
    }
    std::printf("%d threads   | %4zu cohorts in %6.3f s | %7.1f plans/s | speedup %.2fx\n",
                threads, planned->stats.cohorts, seconds,
                planned->stats.cohorts / seconds, serial_seconds / seconds);
  }

  // Plan cache: the same fleet planned again is served without a single cut.
  {
    FleetServiceOptions options;
    options.worker_threads = 8;
    FleetPartitionService service(options);
    const double cold_seconds =
        SecondsOf([&] { (void)service.Plan(*profile, fleet); });
    Result<FleetPlanResult> warm(InternalError("unset"));
    const double warm_seconds =
        SecondsOf([&] { warm = service.Plan(*profile, fleet); });
    if (!warm.ok()) {
      std::fprintf(stderr, "warm plan: %s\n", warm.status().ToString().c_str());
      return 1;
    }
    const PlanCacheStats stats = service.cache_stats();
    std::printf("\ncache cold  | %6.3f s\n", cold_seconds);
    std::printf("cache warm  | %6.3f s | warm speedup %.1fx | warm hits %zu/%zu | %s\n",
                warm_seconds, cold_seconds / warm_seconds, warm->stats.cache_hits,
                warm->stats.cohorts, stats.ToString().c_str());
  }

  // Regret of cohorted plans vs per-client optimal cuts — the quality side
  // of the cohorting trade. The per-client pass is also the naive
  // service's cost, so it doubles as the cohorting-speedup denominator.
  {
    FleetServiceOptions options;
    options.worker_threads = 8;
    options.compute_regret = true;
    FleetPartitionService service(options);
    Result<FleetPlanResult> planned(InternalError("unset"));
    const double seconds = SecondsOf([&] { planned = service.Plan(*profile, fleet); });
    if (!planned.ok()) {
      std::fprintf(stderr, "regret plan: %s\n", planned.status().ToString().c_str());
      return 1;
    }
    std::printf("\nregret pass | %6.3f s (includes %d per-client optimal cuts)\n", seconds,
                kClients);
    std::printf("%s\n", planned->regret.ToString().c_str());
    std::printf("cohorting: %zu cuts serve %d clients (%.1fx fewer analyses)\n", cohorts,
                kClients, static_cast<double>(kClients) / cohorts);
  }
  return 0;
}
