// Shared pipeline plumbing for the table/figure reproduction benches.
//
// Each bench drives the same end-to-end flow the paper describes: install
// an application into a fresh ObjectSystem, attach an instrumented Coign
// runtime, run scenarios, analyze, and measure distributions under the
// simulated network.

#ifndef COIGN_BENCH_HARNESS_H_
#define COIGN_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/engine.h"
#include "src/analysis/prediction.h"
#include "src/classify/evaluation.h"
#include "src/apps/suite.h"
#include "src/net/network_profiler.h"
#include "src/runtime/rte.h"
#include "src/sim/measurement.h"

namespace coign {

// Profiles one or more scenarios of `app` (in one runtime, accumulating
// into one profile), using the given classifier configuration.
Result<IccProfile> ProfileScenarios(Application& app, const std::vector<std::string>& ids,
                                    ClassifierKind classifier = ClassifierKind::kInternalFunctionCalledBy,
                                    int depth = kCompleteStackWalk, uint64_t seed = 17,
                                    std::vector<Descriptor>* classifier_table = nullptr);

// A fitted network profile for a model (statistical sampling, fixed seed).
NetworkProfile FitNetwork(const NetworkModel& model, uint64_t seed = 23);

// Measures a scenario under the developer's default placement.
Result<RunMeasurement> MeasureDefault(Application& app, const std::string& scenario_id,
                                      const NetworkModel& network, Rng* jitter = nullptr,
                                      uint64_t seed = 17);

// Measures a scenario under a Coign-chosen distribution (lightweight
// runtime realizes it).
Result<RunMeasurement> MeasureDistributed(Application& app, const std::string& scenario_id,
                                          const Distribution& distribution,
                                          const NetworkModel& network, Rng* jitter = nullptr,
                                          uint64_t seed = 17,
                                          const std::vector<Descriptor>* classifier_table = nullptr,
                                          ClassifierKind classifier = ClassifierKind::kInternalFunctionCalledBy,
                                          int depth = kCompleteStackWalk);

// Full per-scenario pipeline: profile the scenario, analyze against the
// network, return the analysis.
Result<AnalysisResult> AnalyzeScenario(Application& app, const std::string& scenario_id,
                                       const NetworkModel& network, uint64_t seed = 17);

// Instance counts excluding infrastructure classes (file stores, ODBC), by
// machine — what the paper's figures count.
struct FigureCounts {
  uint64_t total = 0;
  uint64_t on_server = 0;
};
FigureCounts CountFigureInstances(const Application& app, const IccProfile& profile,
                                  const Distribution& distribution);

// Prints a right-aligned separator line for table output.
void PrintRule(int width = 72);

// Minimal JSON trajectory recorder for the reproduction benches: an
// insertion-ordered list of named records, each a flat map of numeric
// fields. Serialization is deterministic (insertion order, fixed number
// formatting), so two same-seed bench runs write byte-identical files and
// a run's trajectory can be diffed across commits. Benches opt in with a
// `--json <path>` flag.
class BenchTrajectory {
 public:
  explicit BenchTrajectory(std::string bench) : bench_(std::move(bench)) {}

  void Add(std::string record, std::vector<std::pair<std::string, double>> fields);
  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  struct Record {
    std::string name;
    std::vector<std::pair<std::string, double>> fields;
  };
  std::string bench_;
  std::vector<Record> records_;
};

// The Table 2/3 evaluation protocol: run the classifier through every
// Octarine profiling scenario, then score it on the o_bigone synthesis.
Result<ClassifierAccuracyRow> EvaluateOctarineClassifier(ClassifierKind kind, int depth);

}  // namespace coign

#endif  // COIGN_BENCH_HARNESS_H_
