// Extension: online repartitioning (closing the loop on paper §6).
//
// The §6 scenario: "Coign could automatically decide when usage differs
// significantly from profiled scenarios and silently enable profiling to
// re-optimize the distribution." Here Octarine is profiled on text-document
// usage only and ships the text-optimal cut. The user then starts
// alternating text work with table-heavy documents — components the
// profiling scenarios never instantiated. Those land as fresh runtime
// classifications with default (client) placement and hammer the
// server-pinned storage across the wire; every static cut derived from the
// shipped profile keeps paying that penalty. The online repartitioner
// counts live messages, detects the drift, registers the unprofiled
// classifications, re-cuts the sliding-window graph, and migrates live
// instances — paying the modeled state-transfer bill — after which table
// phases run near their hindsight optimum. Hysteresis plus the rent-or-buy
// rule bound the number of repartitions.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/apps/octarine.h"
#include "src/obs/obs.h"
#include "src/online/measure_online.h"

using namespace coign;  // NOLINT: bench binary.

namespace {

// Wall-clock cost of a closure — the one place wall time belongs: pricing
// the tracer itself. Modeled results stay deterministic either way.
template <typename Fn>
double WallSeconds(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Profiles scenarios with a pre-imported classification table so every
// candidate cut speaks the same classification ids.
Result<IccProfile> ProfileWithTable(Application& app, const std::vector<std::string>& ids,
                                    const std::vector<Descriptor>& table) {
  ObjectSystem system;
  COIGN_RETURN_IF_ERROR(app.Install(&system));
  ConfigurationRecord config;
  config.mode = RuntimeMode::kProfiling;
  config.classifier_table = table;
  CoignRuntime runtime(&system, config);
  Rng rng(17);
  for (const std::string& id : ids) {
    Result<Scenario> scenario = app.FindScenario(id);
    if (!scenario.ok()) {
      return scenario.status();
    }
    runtime.BeginScenario();
    COIGN_RETURN_IF_ERROR(scenario->run(system, rng));
    system.DestroyAll();
  }
  return runtime.profiling_logger()->profile();
}

}  // namespace

int main() {
  std::unique_ptr<Application> app = MakeOctarine();

  // Everything the operator profiled: text usage only.
  const std::vector<std::string> kTextScenarios = {"o_oldwp0", "o_oldwp3", "o_oldwp7"};

  std::vector<Descriptor> table;
  Result<IccProfile> text_profile =
      ProfileScenarios(*app, kTextScenarios, ClassifierKind::kInternalFunctionCalledBy,
                       kCompleteStackWalk, 17, &table);
  if (!text_profile.ok()) {
    std::fprintf(stderr, "profile: %s\n", text_profile.status().ToString().c_str());
    return 1;
  }
  Result<IccProfile> wp3_profile = ProfileWithTable(*app, {"o_oldwp3"}, table);
  if (!wp3_profile.ok()) {
    std::fprintf(stderr, "wp3 profile: %s\n", wp3_profile.status().ToString().c_str());
    return 1;
  }

  const NetworkModel network = NetworkModel::TenBaseT();
  const NetworkProfile fitted = FitNetwork(network);
  ProfileAnalysisEngine engine;

  struct StaticCandidate {
    const char* label;
    Distribution distribution;
  };
  std::vector<StaticCandidate> candidates;
  for (const auto& [label, profile] :
       {std::pair<const char*, const IccProfile*>{"static: text-profile cut",
                                                  &*text_profile},
        {"static: wp3-only cut", &*wp3_profile}}) {
    Result<AnalysisResult> analysis = engine.Analyze(*profile, fitted);
    if (!analysis.ok()) {
      std::fprintf(stderr, "%s: %s\n", label, analysis.status().ToString().c_str());
      return 1;
    }
    candidates.push_back({label, analysis->distribution});
  }

  // Hindsight oracle: a cut from a profile that DID cover table usage.
  // Not deployable in this story (the operator never profiled tables);
  // printed as the bound the adaptive run should approach.
  std::vector<std::string> oracle_ids = kTextScenarios;
  oracle_ids.push_back("o_mixed9");
  std::vector<Descriptor> oracle_table;
  Result<IccProfile> oracle_profile =
      ProfileScenarios(*app, oracle_ids, ClassifierKind::kInternalFunctionCalledBy,
                       kCompleteStackWalk, 17, &oracle_table);
  if (!oracle_profile.ok()) {
    std::fprintf(stderr, "oracle profile: %s\n",
                 oracle_profile.status().ToString().c_str());
    return 1;
  }
  Result<AnalysisResult> oracle_cut = engine.Analyze(*oracle_profile, fitted);
  if (!oracle_cut.ok()) {
    std::fprintf(stderr, "oracle cut: %s\n", oracle_cut.status().ToString().c_str());
    return 1;
  }

  // Phase-shifting workload: three text runs, then three table runs, cycled.
  const std::vector<OnlinePhase> workload =
      CyclicWorkload({"o_oldwp3", "o_mixed9"}, /*repetitions=*/3, /*cycles=*/3);
  const uint64_t phase_shifts = 2 * 3 - 1;  // Shifts between the 6 phases.

  ConfigurationRecord config;
  config.mode = RuntimeMode::kDistributed;
  config.classifier_table = table;

  OnlineMeasurementOptions options;
  options.network = network;
  options.fitted = fitted;
  options.online.window.decay = 0.5;
  options.online.policy.min_window_messages = 50.0;
  options.online.policy.min_relative_gain = 0.05;
  options.online.policy.horizon_windows = 2.0;
  options.online.policy.state_bytes_per_instance = 4096;
  options.online.epochs_per_recut = 0;  // Purely drift-driven.
  options.online.cooldown_epochs = 1;

  std::printf(
      "Extension: online repartitioning on Octarine (profiled on text only;\n"
      "workload alternates text/table-mix phases, 3 runs per phase, 3 cycles, %s).\n\n",
      network.name.c_str());
  PrintRule(86);
  std::printf("%-34s %12s %12s %8s %7s\n", "Run", "Comm (s)", "Exec (s)", "Moves",
              "Recuts");
  PrintRule(86);

  double best_static = -1.0;
  const char* best_label = nullptr;
  for (const StaticCandidate& candidate : candidates) {
    ConfigurationRecord static_config = config;
    static_config.distribution = candidate.distribution;
    OnlineMeasurementOptions static_options = options;
    static_options.adaptive = false;
    Result<OnlineRunResult> run =
        MeasureOnlineRun(*app, workload, static_config, *text_profile, static_options);
    if (!run.ok()) {
      std::fprintf(stderr, "%s: %s\n", candidate.label, run.status().ToString().c_str());
      return 1;
    }
    std::printf("%-34s %12.3f %12.3f %8s %7s\n", candidate.label,
                run->run.communication_seconds, run->run.execution_seconds, "-", "-");
    if (best_static < 0.0 || run->run.execution_seconds < best_static) {
      best_static = run->run.execution_seconds;
      best_label = candidate.label;
    }
  }

  // Oracle reference row (its own classifier table: hindsight knowledge).
  double oracle_seconds = 0.0;
  {
    ConfigurationRecord oracle_config;
    oracle_config.mode = RuntimeMode::kDistributed;
    oracle_config.classifier_table = oracle_table;
    oracle_config.distribution = oracle_cut->distribution;
    OnlineMeasurementOptions oracle_options = options;
    oracle_options.adaptive = false;
    Result<OnlineRunResult> run = MeasureOnlineRun(*app, workload, oracle_config,
                                                   *oracle_profile, oracle_options);
    if (!run.ok()) {
      std::fprintf(stderr, "oracle: %s\n", run.status().ToString().c_str());
      return 1;
    }
    oracle_seconds = run->run.execution_seconds;
    std::printf("%-34s %12.3f %12.3f %8s %7s\n", "oracle: text+table cut (ref)",
                run->run.communication_seconds, run->run.execution_seconds, "-", "-");
  }

  ConfigurationRecord adaptive_config = config;
  adaptive_config.distribution = candidates.front().distribution;  // Ship the text cut.
  Result<OnlineRunResult> adaptive =
      MeasureOnlineRun(*app, workload, adaptive_config, *text_profile, options);
  if (!adaptive.ok()) {
    std::fprintf(stderr, "adaptive: %s\n", adaptive.status().ToString().c_str());
    return 1;
  }
  std::printf("%-34s %12.3f %12.3f %8llu %7llu\n", "online repartitioning",
              adaptive->run.communication_seconds, adaptive->run.execution_seconds,
              static_cast<unsigned long long>(adaptive->online.instances_moved),
              static_cast<unsigned long long>(adaptive->online.repartitions));

  // Tracing overhead: the identical adaptive run with the observability
  // subsystem attached. Modeled results must be byte-identical (tracing
  // never touches the simulation clock or RNG); the wall-clock delta is
  // the tracer's real cost, kept under the 5% budget.
  Observability obs;
  OnlineMeasurementOptions traced_options = options;
  traced_options.obs = &obs;
  const double untraced_wall = WallSeconds([&] {
    Result<OnlineRunResult> rerun =
        MeasureOnlineRun(*app, workload, adaptive_config, *text_profile, options);
    if (!rerun.ok()) {
      std::exit(1);
    }
  });
  Result<OnlineRunResult> traced = InternalError("traced run never ran");
  const double traced_wall = WallSeconds([&] {
    traced = MeasureOnlineRun(*app, workload, adaptive_config, *text_profile,
                              traced_options);
    if (!traced.ok()) {
      std::exit(1);
    }
  });
  std::printf("%-34s %12.3f %12.3f %8llu %7llu\n", "online repartitioning (traced)",
              traced->run.communication_seconds, traced->run.execution_seconds,
              static_cast<unsigned long long>(traced->online.instances_moved),
              static_cast<unsigned long long>(traced->online.repartitions));
  PrintRule(86);

  const bool traced_matches =
      traced->run.communication_seconds == adaptive->run.communication_seconds &&
      traced->run.execution_seconds == adaptive->run.execution_seconds &&
      traced->online.repartitions == adaptive->online.repartitions &&
      traced->online.instances_moved == adaptive->online.instances_moved;
  const double overhead =
      untraced_wall > 0.0 ? traced_wall / untraced_wall - 1.0 : 0.0;
  std::printf(
      "\ntracing: %llu events recorded (%llu dropped), wall %.3fs -> %.3fs "
      "(%+.1f%% overhead)\n",
      static_cast<unsigned long long>(obs.tracer().recorded()),
      static_cast<unsigned long long>(obs.tracer().dropped()), untraced_wall,
      traced_wall, 100.0 * overhead);

  const OnlineStats& stats = adaptive->online;
  std::printf("\n%s\n", stats.ToString().c_str());
  std::printf("final drift: %s\n", adaptive->final_drift.ToString().c_str());
  const double savings = best_static > 0.0
                             ? 100.0 * (1.0 - adaptive->run.execution_seconds / best_static)
                             : 0.0;
  std::printf(
      "best deployable static: %s (%.3f s); online saves %.1f%%\n"
      "(oracle bound %.3f s) including %.4f s / %llu bytes of migration traffic.\n",
      best_label, best_static, savings, oracle_seconds, stats.migration_seconds,
      static_cast<unsigned long long>(stats.migration_bytes));
  std::printf(
      "hysteresis/cooldown bound adaptation: %llu repartitions across %llu phase\n"
      "shifts (%llu hysteresis rejections, %llu rent-or-buy rejections).\n",
      static_cast<unsigned long long>(stats.repartitions),
      static_cast<unsigned long long>(phase_shifts),
      static_cast<unsigned long long>(stats.hysteresis_rejections),
      static_cast<unsigned long long>(stats.cost_rejections));
  if (adaptive->run.execution_seconds >= best_static) {
    std::printf("WARNING: adaptive run did not beat the best static cut.\n");
    return 1;
  }
  if (stats.repartitions > phase_shifts + 1) {
    std::printf("WARNING: repartition thrash (%llu > %llu).\n",
                static_cast<unsigned long long>(stats.repartitions),
                static_cast<unsigned long long>(phase_shifts + 1));
    return 1;
  }
  // Tracing must be a pure observer: any drift in modeled results means it
  // leaked into the simulation, which is a bug, not overhead.
  if (!traced_matches) {
    std::printf("WARNING: traced run's modeled results differ from untraced.\n");
    return 1;
  }
  if (overhead > 0.05) {
    std::printf("WARNING: tracing overhead %.1f%% exceeds the 5%% budget "
                "(informational; wall clock is noisy).\n",
                100.0 * overhead);
  }
  return 0;
}
