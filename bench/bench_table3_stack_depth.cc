// Table 3: IFCB classifier accuracy as a function of stack-walk depth.
// Expected shape (paper): both the number of classifications and the
// average correlation increase with depth and saturate quickly (by depth
// three or four); depth 1 equals the Instantiated-By classifier.

#include <cstdio>

#include "bench/harness.h"

using namespace coign;  // NOLINT: bench binary.

int main() {
  std::printf("Table 3. IFCB Accuracy as a Function of Stack Depth (Octarine).\n");
  PrintRule(76);
  std::printf("%-12s %16s %20s %14s\n", "Stack-Walk", "Profiled", "Ave. Instances /",
              "Average");
  std::printf("%-12s %16s %20s %14s\n", "Depth", "Classifications", "Classification",
              "Correlation");
  PrintRule(76);

  struct DepthRow {
    const char* label;
    int depth;
  };
  const DepthRow kDepths[] = {{"1", 1},   {"2", 2},   {"3", 3},        {"4", 4},
                              {"8", 8},   {"16", 16}, {"Complete", kCompleteStackWalk}};
  for (const DepthRow& row : kDepths) {
    Result<ClassifierAccuracyRow> result =
        EvaluateOctarineClassifier(ClassifierKind::kInternalFunctionCalledBy, row.depth);
    if (!result.ok()) {
      std::fprintf(stderr, "depth %s: %s\n", row.label, result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12s %16zu %20.1f %14.3f\n", row.label, result->profiled_classifications,
                result->avg_instances_per_classification, result->avg_correlation);
  }
  PrintRule(76);
  return 0;
}
