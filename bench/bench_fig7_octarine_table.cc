// Figure 7: Octarine with a five-page table document. The optimal
// distribution changes with the document type: only a single component
// (the document reader) lands on the server.

#include "bench/figure_common.h"

int main() {
  return coign::RunFigureBench(
      "Figure 7. Octarine with Multi-page Table (5-page table).", "o_oldtb0",
      "Of 476 components, Coign locates only a single component on the server.");
}
