#include "src/support/guid.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "src/support/str_util.h"

namespace coign {
namespace {

TEST(GuidTest, DefaultIsNull) {
  Guid g;
  EXPECT_TRUE(g.IsNull());
}

TEST(GuidTest, FromNameIsDeterministic) {
  EXPECT_EQ(Guid::FromName("iid:IFoo"), Guid::FromName("iid:IFoo"));
}

TEST(GuidTest, DistinctNamesDistinctGuids) {
  EXPECT_NE(Guid::FromName("iid:IFoo"), Guid::FromName("iid:IBar"));
  EXPECT_NE(Guid::FromName("a"), Guid::FromName("a "));
}

TEST(GuidTest, FromNameNeverNull) {
  EXPECT_FALSE(Guid::FromName("").IsNull());
  EXPECT_FALSE(Guid::FromName("x").IsNull());
}

TEST(GuidTest, RoundTripsThroughString) {
  const Guid g = Guid::FromName("clsid:Octarine.App");
  Result<Guid> parsed = Guid::Parse(g.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, g);
}

TEST(GuidTest, ToStringFormat) {
  Guid g{0x0123456789abcdefull, 0xfedcba9876543210ull};
  EXPECT_EQ(g.ToString(), "{0123456789abcdef-fedcba9876543210}");
}

TEST(GuidTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Guid::Parse("").ok());
  EXPECT_FALSE(Guid::Parse("{123}").ok());
  EXPECT_FALSE(Guid::Parse("0123456789abcdef-fedcba9876543210").ok());   // No braces.
  EXPECT_FALSE(Guid::Parse("{0123456789abcdef+fedcba9876543210}").ok());  // Bad separator.
  EXPECT_FALSE(Guid::Parse("{0123456789abcdeg-fedcba9876543210}").ok());  // Bad digit.
}

TEST(GuidTest, OrderingIsTotal) {
  const Guid a = Guid::FromName("a");
  const Guid b = Guid::FromName("b");
  EXPECT_TRUE((a < b) != (b < a));
  EXPECT_TRUE(a <= a);
}

TEST(GuidTest, HashSpreadsAcrossNames) {
  // Property: 10k generated names produce 10k distinct GUIDs and no more
  // than a trivial number of hash collisions in the low bits.
  std::unordered_set<Guid> guids;
  std::unordered_set<uint64_t> low_bits;
  for (int i = 0; i < 10000; ++i) {
    const Guid g = Guid::FromName(StrFormat("class-%d", i));
    guids.insert(g);
    low_bits.insert(GuidHash{}(g) & 0xffff);
  }
  EXPECT_EQ(guids.size(), 10000u);
  // With 65536 buckets and 10k keys, expect good coverage.
  EXPECT_GT(low_bits.size(), 8000u);
}

}  // namespace
}  // namespace coign
