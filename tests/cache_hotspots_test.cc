// Tests for per-interface caching and the hot-spot report.

#include <gtest/gtest.h>

#include "src/analysis/hotspots.h"
#include "src/apps/component_library.h"
#include "src/runtime/cache.h"

namespace coign {
namespace {

enum Method : MethodIndex { kQuery = 0, kMutate = 1 };

class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.interfaces()
                    .Register(InterfaceBuilder("IQuery")
                                  .Method("Query")
                                  .Cacheable()
                                  .In("key", ValueKind::kInt32)
                                  .Out("value", ValueKind::kInt64)
                                  .Method("Mutate")
                                  .In("key", ValueKind::kInt32)
                                  .Out("value", ValueKind::kInt64)
                                  .Build())
                    .ok());
    iid_ = system_.interfaces().LookupByName("IQuery")->iid;
    // Both methods return a counter so repeated dispatches are observable.
    for (MethodIndex m : {kQuery, kMutate}) {
      handlers_.Set(iid_, m, [](ScriptedComponent& self, const Message& in, Message* out) {
        (void)in;
        const int64_t n = self.GetInt("calls") + 1;
        self.SetState("calls", Value::FromInt64(n));
        out->Add("value", Value::FromInt64(n));
        return Status::Ok();
      });
    }
    ASSERT_TRUE(RegisterScriptedClass(&system_, "Q", {iid_}, kApiNone, &handlers_).ok());
    Result<ObjectRef> target = CreateByName(system_, "Q", "IQuery");
    ASSERT_TRUE(target.ok());
    target_ = *target;
  }

  Result<int64_t> Call(MethodIndex method, int32_t key) {
    Message in;
    in.Add("key", Value::FromInt32(key));
    Result<Message> out = CallMethod(system_, target_, method, in);
    if (!out.ok()) {
      return out.status();
    }
    return out->Find("value")->AsInt64();
  }

  void MakeRemote() { ASSERT_TRUE(system_.MoveInstance(target_.instance, kServerMachine).ok()); }

  ObjectSystem system_;
  HandlerTable handlers_;
  InterfaceId iid_;
  ObjectRef target_;
};

TEST_F(CacheTest, RepeatedRemoteQueryServedFromCache) {
  MakeRemote();
  InterfaceCache cache(&system_);
  EXPECT_EQ(*Call(kQuery, 7), 1);  // Miss: dispatched.
  EXPECT_EQ(*Call(kQuery, 7), 1);  // Hit: same reply, no dispatch.
  EXPECT_EQ(*Call(kQuery, 7), 1);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(system_.filtered_calls(), 2u);
  // A different request misses.
  EXPECT_EQ(*Call(kQuery, 8), 2);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(CacheTest, LocalCallsNeverCached) {
  InterfaceCache cache(&system_);
  EXPECT_EQ(*Call(kQuery, 7), 1);
  EXPECT_EQ(*Call(kQuery, 7), 2);  // Dispatched again: local calls are cheap.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(CacheTest, NonCacheableMethodsNeverCached) {
  MakeRemote();
  InterfaceCache cache(&system_);
  EXPECT_EQ(*Call(kMutate, 7), 1);
  EXPECT_EQ(*Call(kMutate, 7), 2);  // Mutations always dispatch.
  EXPECT_EQ(cache.hits(), 0u);
}

TEST_F(CacheTest, DestructionInvalidatesEntries) {
  MakeRemote();
  InterfaceCache cache(&system_);
  EXPECT_EQ(*Call(kQuery, 7), 1);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(system_.DestroyInstance(target_.instance).ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(CacheTest, EvictionRespectsBound) {
  MakeRemote();
  InterfaceCache cache(&system_, /*max_entries=*/4);
  for (int32_t key = 0; key < 10; ++key) {
    ASSERT_TRUE(Call(kQuery, key).ok());
  }
  EXPECT_LE(cache.size(), 4u);
  // The newest entries survive.
  EXPECT_EQ(*Call(kQuery, 9), 10);  // Hit: dispatch count unchanged.
  EXPECT_GT(cache.hits(), 0u);
}

TEST_F(CacheTest, ClearAndDetach) {
  MakeRemote();
  {
    InterfaceCache cache(&system_);
    ASSERT_TRUE(Call(kQuery, 1).ok());
    cache.Clear();
    EXPECT_EQ(cache.size(), 0u);
  }
  // Cache destroyed: calls dispatch normally again.
  EXPECT_EQ(*Call(kQuery, 1), 2);
  EXPECT_EQ(*Call(kQuery, 1), 3);
}

// --- Hot spots -----------------------------------------------------------------

IccProfile HotProfile() {
  IccProfile profile;
  auto add = [&profile](ClassificationId id, const std::string& name) {
    ClassificationInfo info;
    info.id = id;
    info.clsid = Guid::FromName("clsid:" + name);
    info.class_name = name;
    profile.RecordClassification(info);
  };
  add(0, "Form");
  add(1, "List");
  add(2, "Db");
  CallKey heavy;
  heavy.src = 0;
  heavy.dst = 1;
  heavy.iid = Guid::FromName("iid:IQuery");
  heavy.method = 0;
  for (int i = 0; i < 100; ++i) {
    profile.RecordCall(heavy, 500, 500, true);
  }
  CallKey light = heavy;
  light.method = 1;
  profile.RecordCall(light, 10, 10, true);
  CallKey internal;
  internal.src = 1;
  internal.dst = 2;
  internal.iid = heavy.iid;
  for (int i = 0; i < 1000; ++i) {
    profile.RecordCall(internal, 5000, 50, true);
  }
  return profile;
}

TEST(HotSpotTest, OnlyCrossingCallsRankedBySeconds) {
  const IccProfile profile = HotProfile();
  Distribution distribution;
  distribution.placement[0] = kClientMachine;
  distribution.placement[1] = kServerMachine;
  distribution.placement[2] = kServerMachine;  // List<->Db stays internal.
  NetworkProfile network;
  network.per_message_seconds = 1e-3;
  network.seconds_per_byte = 1e-6;

  const std::vector<HotSpot> spots = FindHotSpots(profile, distribution, network);
  ASSERT_EQ(spots.size(), 2u);
  EXPECT_EQ(spots[0].method, 0u);  // The heavy method first.
  EXPECT_EQ(spots[0].calls, 100u);
  EXPECT_GT(spots[0].seconds, spots[1].seconds);
  EXPECT_EQ(spots[0].src_name, "Form");
  EXPECT_EQ(spots[0].dst_name, "List");
}

TEST(HotSpotTest, RegistryResolvesNamesAndCacheability) {
  InterfaceRegistry registry;
  ASSERT_TRUE(registry
                  .Register(InterfaceBuilder("IQuery")
                                .Method("Query")
                                .Cacheable()
                                .Method("Mutate")
                                .Build())
                  .ok());
  Distribution distribution;
  distribution.placement[0] = kClientMachine;
  distribution.placement[1] = kServerMachine;
  distribution.placement[2] = kServerMachine;
  const std::vector<HotSpot> spots =
      FindHotSpots(HotProfile(), distribution, NetworkProfile::Exact(NetworkModel::TenBaseT()),
                   &registry);
  ASSERT_EQ(spots.size(), 2u);
  EXPECT_EQ(spots[0].interface_name, "IQuery");
  EXPECT_EQ(spots[0].method_name, "Query");
  EXPECT_TRUE(spots[0].cacheable);
  EXPECT_FALSE(spots[1].cacheable);
  const std::string report = HotSpotReport(spots);
  EXPECT_NE(report.find("IQuery::Query"), std::string::npos);
  EXPECT_NE(report.find("[cacheable]"), std::string::npos);
}

TEST(HotSpotTest, MaxSpotsTruncatesAndEmptyReports) {
  Distribution all_client = EverythingOn(kClientMachine);
  const std::vector<HotSpot> spots =
      FindHotSpots(HotProfile(), all_client, NetworkProfile::Exact(NetworkModel::TenBaseT()));
  EXPECT_TRUE(spots.empty());
  EXPECT_NE(HotSpotReport(spots).find("(none"), std::string::npos);

  Distribution split;
  split.placement[0] = kClientMachine;
  split.placement[1] = kServerMachine;
  split.placement[2] = kServerMachine;
  EXPECT_EQ(FindHotSpots(HotProfile(), split,
                         NetworkProfile::Exact(NetworkModel::TenBaseT()), nullptr, 1)
                .size(),
            1u);
}

}  // namespace
}  // namespace coign
