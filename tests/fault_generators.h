// Seeded generators for the fault-injection property tests: random fault
// schedules, background loss rates, retry policies, and call sequences,
// all drawn from a caller-provided Rng so an entire generated case
// replays from one seed. Kept header-only and test-local — production
// code must not depend on test generators.

#ifndef COIGN_TESTS_FAULT_GENERATORS_H_
#define COIGN_TESTS_FAULT_GENERATORS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/net/transport.h"
#include "src/support/rng.h"

namespace coign {
namespace testing {

// One synchronous remote call a generated workload will push through the
// hardened transport.
struct GeneratedCall {
  MachineId src = 0;
  MachineId dst = 1;
  uint64_t request_bytes = 0;
  uint64_t reply_bytes = 0;
};

// Schedule-generation knobs spanning quiet to hostile: short horizons
// force episode overlap, long ones leave clean stretches.
inline RandomFaultOptions GenFaultOptions(Rng& rng) {
  RandomFaultOptions options;
  options.horizon_seconds = rng.UniformDouble(0.5, 30.0);
  options.episodes_per_kind = rng.UniformDouble(0.0, 3.0);
  options.mean_duration_seconds = rng.UniformDouble(0.05, 2.0);
  options.drop_burst_max = rng.UniformDouble(0.0, 0.6);
  options.duplicate_burst_max = rng.UniformDouble(0.0, 0.4);
  options.reorder_burst_max = rng.UniformDouble(0.0, 0.4);
  options.latency_spike_max = rng.UniformDouble(1.0, 12.0);
  options.bandwidth_drop_max = rng.UniformDouble(1.0, 8.0);
  options.restart_penalty_seconds = rng.UniformDouble(0.0, 0.5);
  options.include_partitions = rng.Bernoulli(0.7);
  options.include_crashes = rng.Bernoulli(0.7);
  options.include_corrupt_bursts = rng.Bernoulli(0.7);
  options.corrupt_burst_max = rng.UniformDouble(0.1, 0.8);
  return options;
}

// Steady background lossiness, occasionally zero so clean wires are in
// the tested population too.
inline FaultRates GenBackground(Rng& rng) {
  FaultRates rates;
  if (rng.Bernoulli(0.8)) {
    rates.drop = rng.UniformDouble(0.0, 0.3);
    rates.duplicate = rng.UniformDouble(0.0, 0.15);
    rates.reorder = rng.UniformDouble(0.0, 0.15);
  }
  return rates;
}

// Retry policies from no-retry to persistent, with tight and loose
// timeouts relative to the tested network.
inline RetryPolicy GenRetryPolicy(Rng& rng, const NetworkModel& model) {
  const double round_trip = 2.0 * model.per_message_seconds;
  RetryPolicy policy;
  policy.max_attempts = static_cast<int>(rng.UniformInt(1, 6));
  policy.timeout_seconds = round_trip * rng.UniformDouble(1.0, 20.0);
  policy.backoff_initial_seconds = round_trip * rng.UniformDouble(0.5, 4.0);
  policy.backoff_multiplier = rng.UniformDouble(1.0, 3.0);
  policy.backoff_max_seconds =
      policy.backoff_initial_seconds * rng.UniformDouble(1.0, 10.0);
  policy.backoff_jitter = rng.UniformDouble(0.0, 0.5);
  return policy;
}

// A call sequence across a handful of machines with payloads spanning
// empty pings to multi-kilobyte replies.
inline std::vector<GeneratedCall> GenCallSequence(Rng& rng, int count) {
  std::vector<GeneratedCall> calls;
  calls.reserve(count);
  for (int i = 0; i < count; ++i) {
    GeneratedCall call;
    call.src = static_cast<MachineId>(rng.UniformInt(0, 2));
    do {
      call.dst = static_cast<MachineId>(rng.UniformInt(0, 2));
    } while (call.dst == call.src);
    call.request_bytes = static_cast<uint64_t>(rng.UniformInt(0, 4096));
    call.reply_bytes = static_cast<uint64_t>(rng.UniformInt(0, 4096));
    calls.push_back(call);
  }
  return calls;
}

// --- Shrinking ------------------------------------------------------------

// Smallest n in [1, count] with fails(n), given fails(count) is true.
// Binary search assumes prefix-monotone failure: a generated case replays
// deterministically and an n-call prefix executes identically within any
// longer run, so once the first violating call is inside the prefix it
// stays violating as the prefix grows. Callers shrinking along an axis
// where monotonicity is only heuristic (e.g. dropping schedule episodes,
// which changes what the surviving episodes meet) must re-verify the
// returned candidate and fall back to `count` if it no longer fails.
inline int SmallestFailingPrefix(int count, const std::function<bool(int)>& fails) {
  int lo = 1;
  int hi = count;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (fails(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

}  // namespace testing
}  // namespace coign

#endif  // COIGN_TESTS_FAULT_GENERATORS_H_
