#include "src/support/histogram.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace coign {
namespace {

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(ExponentialHistogram::BucketFor(0), 0);
  EXPECT_EQ(ExponentialHistogram::BucketFor(1), 0);
  EXPECT_EQ(ExponentialHistogram::BucketFor(2), 1);
  EXPECT_EQ(ExponentialHistogram::BucketFor(3), 1);
  EXPECT_EQ(ExponentialHistogram::BucketFor(4), 2);
  EXPECT_EQ(ExponentialHistogram::BucketFor(1023), 9);
  EXPECT_EQ(ExponentialHistogram::BucketFor(1024), 10);
  EXPECT_EQ(ExponentialHistogram::BucketFor(~uint64_t{0}), ExponentialHistogram::kMaxBucket);
}

TEST(HistogramTest, LowerBoundInvertsBucketFor) {
  for (int b = 0; b <= 20; ++b) {
    const uint64_t lo = ExponentialHistogram::BucketLowerBound(b);
    EXPECT_EQ(ExponentialHistogram::BucketFor(lo == 0 ? 1 : lo), b == 0 ? 0 : b);
  }
}

TEST(HistogramTest, AddTracksCountsAndExactBytes) {
  ExponentialHistogram h;
  h.Add(100);
  h.Add(120);
  h.Add(5000);
  EXPECT_EQ(h.total_count(), 3u);
  EXPECT_EQ(h.total_bytes(), 5220u);
  EXPECT_EQ(h.CountAt(ExponentialHistogram::BucketFor(100)), 2u);
  EXPECT_EQ(h.BytesAt(ExponentialHistogram::BucketFor(100)), 220u);
  EXPECT_DOUBLE_EQ(h.MeanSizeAt(ExponentialHistogram::BucketFor(100)), 110.0);
  EXPECT_EQ(h.CountAt(ExponentialHistogram::BucketFor(5000)), 1u);
}

TEST(HistogramTest, EmptyBucketsReadAsZero) {
  ExponentialHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.CountAt(3), 0u);
  EXPECT_EQ(h.BytesAt(3), 0u);
  EXPECT_EQ(h.MeanSizeAt(3), 0.0);
  EXPECT_TRUE(h.NonEmptyBuckets().empty());
}

TEST(HistogramTest, MergePreservesTotals) {
  ExponentialHistogram a, b;
  a.Add(10);
  a.Add(100);
  b.Add(100);
  b.Add(100000);
  a.Merge(b);
  EXPECT_EQ(a.total_count(), 4u);
  EXPECT_EQ(a.total_bytes(), 10u + 100 + 100 + 100000);
  EXPECT_EQ(a.CountAt(ExponentialHistogram::BucketFor(100)), 2u);
}

TEST(HistogramTest, AddBucketInjectsRawData) {
  ExponentialHistogram h;
  h.AddBucket(5, 7, 250);
  EXPECT_EQ(h.total_count(), 7u);
  EXPECT_EQ(h.total_bytes(), 250u);
  EXPECT_EQ(h.CountAt(5), 7u);
}

TEST(HistogramTest, NonEmptyBucketsAscending) {
  ExponentialHistogram h;
  h.Add(100000);
  h.Add(2);
  h.Add(500);
  const std::vector<int> buckets = h.NonEmptyBuckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_TRUE(buckets[0] < buckets[1] && buckets[1] < buckets[2]);
}

TEST(HistogramTest, EqualityAndToString) {
  ExponentialHistogram a, b;
  a.Add(7);
  b.Add(7);
  EXPECT_EQ(a, b);
  b.Add(9);
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.ToString().find("n=1"), std::string::npos);
}

// Property: summarization never loses a byte or a message, whatever the
// size distribution (the invariant behind "summarization preserves network
// independence while significantly lowering storage requirements").
class HistogramPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramPropertyTest, TotalsExactUnderRandomLoad) {
  Rng rng(GetParam());
  ExponentialHistogram h;
  uint64_t expected_count = 0, expected_bytes = 0;
  for (int i = 0; i < 5000; ++i) {
    // Spread across ~6 orders of magnitude.
    const uint64_t bytes = static_cast<uint64_t>(
        rng.Exponential(static_cast<double>(1 + rng.UniformInt(0, 100000))));
    h.Add(bytes);
    expected_count += 1;
    expected_bytes += bytes;
  }
  EXPECT_EQ(h.total_count(), expected_count);
  EXPECT_EQ(h.total_bytes(), expected_bytes);
  // Per-bucket sums must re-aggregate to the totals.
  uint64_t count = 0, bytes = 0;
  for (int bucket : h.NonEmptyBuckets()) {
    count += h.CountAt(bucket);
    bytes += h.BytesAt(bucket);
    // Mean size of each bucket lies within the bucket's bounds.
    const double mean = h.MeanSizeAt(bucket);
    if (bucket > 0) {
      EXPECT_GE(mean, static_cast<double>(ExponentialHistogram::BucketLowerBound(bucket)));
    }
    if (bucket < ExponentialHistogram::kMaxBucket) {
      EXPECT_LT(mean, static_cast<double>(ExponentialHistogram::BucketLowerBound(bucket + 1)));
    }
  }
  EXPECT_EQ(count, expected_count);
  EXPECT_EQ(bytes, expected_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace coign
