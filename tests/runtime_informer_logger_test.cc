// Unit tests for the interface informers and information loggers —
// the replaceable Coign runtime components of Figure 2.

#include <gtest/gtest.h>

#include "src/marshal/ndr.h"
#include "src/runtime/informer.h"
#include "src/runtime/logger.h"

namespace coign {
namespace {

InterfaceDesc Iface(bool remotable = true) {
  InterfaceBuilder builder("ITestIface");
  if (!remotable) {
    builder.NonRemotable();
  }
  builder.Method("M").In("data", ValueKind::kBlob).Out("result", ValueKind::kInt32);
  return builder.Build();
}

Message InWithBlob(uint64_t bytes) {
  Message m;
  m.Add("data", Value::BlobOfSize(bytes, 1));
  return m;
}

Message OutWithInt() {
  Message m;
  m.Add("result", Value::FromInt32(7));
  return m;
}

// --- Informers ---------------------------------------------------------------

TEST(InformerTest, ProfilingInformerMeasuresPrecisely) {
  ProfilingInformer informer;
  EXPECT_TRUE(informer.measures_communication());
  const WireCall wire = informer.Inspect(Iface(), 0, InWithBlob(500), OutWithInt());
  EXPECT_TRUE(wire.remotable);
  // Exactly what the marshaler computes.
  EXPECT_EQ(wire.request_bytes, kRequestHeaderBytes + *WireSize(InWithBlob(500)));
  EXPECT_EQ(wire.reply_bytes, kReplyHeaderBytes + *WireSize(OutWithInt()));
}

TEST(InformerTest, DistributionInformerOnlyFindsInterfaces) {
  DistributionInformer informer;
  EXPECT_FALSE(informer.measures_communication());
  Message in = InWithBlob(100000);
  in.Add("peer", Value::FromInterface(ObjectRef{5, Guid::FromName("iid:X")}));
  const WireCall wire = informer.Inspect(Iface(), 0, in, OutWithInt());
  EXPECT_TRUE(wire.remotable);
  EXPECT_EQ(wire.request_bytes, 0u);  // No measurement.
  EXPECT_EQ(wire.reply_bytes, 0u);
  ASSERT_EQ(wire.passed_interfaces.size(), 1u);
  EXPECT_EQ(wire.passed_interfaces[0].instance, 5u);
}

TEST(InformerTest, DistributionInformerFlagsNonRemotable) {
  DistributionInformer informer;
  EXPECT_FALSE(informer.Inspect(Iface(false), 0, Message(), Message()).remotable);
  Message opaque;
  opaque.Add("ptr", Value::FromOpaque(1));
  EXPECT_FALSE(informer.Inspect(Iface(), 0, opaque, Message()).remotable);
}

TEST(InformerTest, NamesIdentifyVariants) {
  EXPECT_EQ(ProfilingInformer().name(), "profiling-informer");
  EXPECT_EQ(DistributionInformer().name(), "distribution-informer");
}

// --- Loggers -----------------------------------------------------------------

ProfileEvent CallEvent(ClassificationId src, ClassificationId dst, uint64_t req,
                       uint64_t rep, bool remotable = true) {
  ProfileEvent event;
  event.kind = EventKind::kInterfaceCall;
  event.caller = 1;
  event.subject = 2;
  event.caller_classification = src;
  event.subject_classification = dst;
  event.iid = Guid::FromName("iid:ITestIface");
  event.method = 0;
  event.request_bytes = req;
  event.reply_bytes = rep;
  event.remotable = remotable;
  return event;
}

TEST(ProfilingLoggerTest, SummarizesCallsIntoProfile) {
  ProfilingLogger logger;
  logger.OnEvent(CallEvent(0, 1, 100, 50));
  logger.OnEvent(CallEvent(0, 1, 200, 60));
  logger.OnEvent(CallEvent(0, 1, 10, 10, /*remotable=*/false));
  EXPECT_EQ(logger.profile().total_calls(), 3u);
  EXPECT_EQ(logger.profile().total_bytes(), 430u);
  ASSERT_EQ(logger.profile().calls().size(), 1u);
  EXPECT_EQ(logger.profile().calls().begin()->second.non_remotable_calls, 1u);
  // Comm matrix tracks instances symmetrically.
  EXPECT_DOUBLE_EQ(logger.comm_matrix().RowOf(1).at(2), 430.0);
}

TEST(ProfilingLoggerTest, InstantiationEventsCountInstances) {
  ProfilingLogger logger;
  ClassificationInfo info;
  info.id = 3;
  info.clsid = Guid::FromName("clsid:C");
  info.class_name = "C";
  logger.RecordClassification(info);
  ProfileEvent event;
  event.kind = EventKind::kComponentInstantiation;
  event.subject = 9;
  event.subject_classification = 3;
  logger.OnEvent(event);
  logger.OnEvent(event);
  EXPECT_EQ(logger.profile().FindClassification(3)->instance_count, 2u);
}

TEST(ProfilingLoggerTest, BeginExecutionClearsCommMatrixKeepsProfile) {
  ProfilingLogger logger;
  logger.OnEvent(CallEvent(0, 1, 100, 50));
  logger.BeginExecution();
  EXPECT_TRUE(logger.comm_matrix().RowOf(1).empty());
  EXPECT_EQ(logger.profile().total_calls(), 1u);  // Accumulates across runs.
}

TEST(ProfilingLoggerTest, ComputeRouting) {
  ProfilingLogger logger;
  logger.OnCompute(4, 0.25);
  logger.OnCompute(4, 0.25);
  EXPECT_DOUBLE_EQ(logger.profile().ComputeSecondsOf(4), 0.5);
}

TEST(EventLoggerTest, KeepsOrderedTrace) {
  EventLogger logger;
  for (uint64_t i = 0; i < 5; ++i) {
    ProfileEvent event = CallEvent(0, 1, i, i);
    event.sequence = i;
    logger.OnEvent(event);
  }
  ASSERT_EQ(logger.events().size(), 5u);
  EXPECT_EQ(logger.events()[3].request_bytes, 3u);
  EXPECT_EQ(logger.dropped_events(), 0u);
  EXPECT_FALSE(logger.events()[0].ToString().empty());
}

TEST(NullLoggerTest, IgnoresEverything) {
  NullLogger logger;
  logger.OnEvent(CallEvent(0, 1, 100, 100));  // Must not crash or store.
  EXPECT_EQ(logger.name(), "null-logger");
}

TEST(EventKindTest, NamesAreStable) {
  EXPECT_STREQ(EventKindName(EventKind::kComponentInstantiation),
               "component-instantiation");
  EXPECT_STREQ(EventKindName(EventKind::kInterfaceCall), "interface-call");
}

}  // namespace
}  // namespace coign
