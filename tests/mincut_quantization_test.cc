// Property tests for the single quantization boundary between the
// prediction layer (double seconds) and the min-cut layer (integer
// CapUnits). Two claims, both from the documented bound in flow_network.h:
//
//  1. Round-tripping seconds -> CapUnits -> seconds moves any value by at
//     most 1 unit (1 ps) for times inside the analysis domain, so a cut
//     crossing E edges is perturbed by at most E picoseconds.
//  2. Cut *membership* is invariant under quantization whenever the gaps
//     between competing cut values exceed the bound — quantization can
//     never flip a placement decision on graphs with real capacity gaps.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <tuple>
#include <vector>

#include "src/mincut/edmonds_karp.h"
#include "src/mincut/flow_network.h"
#include "src/mincut/relabel_to_front.h"
#include "src/support/rng.h"

namespace coign {
namespace {

constexpr double kPerEdgeBoundSeconds = 1e-12;  // 1 unit, per flow_network.h.

TEST(QuantizationTest, RoundTripStaysWithinOneUnitAcrossMagnitudes) {
  // Magnitudes from sub-nanosecond message costs to kiloseconds of bulk
  // transfer — everything the prediction model emits.
  Rng rng(20260808);
  for (int i = 0; i < 20000; ++i) {
    const double exponent = rng.UniformDouble(-10.0, 3.0);
    const double seconds = std::pow(10.0, exponent);
    const double round_trip = CapUnitsToSeconds(SecondsToCapUnits(seconds));
    EXPECT_LE(std::abs(round_trip - seconds), kPerEdgeBoundSeconds)
        << "seconds=" << seconds;
  }
  // Edge cases of the rule: non-positive and NaN clamp to zero; half-unit
  // values round away from zero; the finite range clamps at the top.
  EXPECT_EQ(SecondsToCapUnits(0.0), 0);
  EXPECT_EQ(SecondsToCapUnits(-1.0), 0);
  EXPECT_EQ(SecondsToCapUnits(std::nan("")), 0);
  EXPECT_EQ(SecondsToCapUnits(1.5e-12), 2);  // Half rounds away from zero.
  EXPECT_EQ(SecondsToCapUnits(0.4e-12), 0);
  EXPECT_EQ(SecondsToCapUnits(1e9), kMaxFiniteCapacity);  // Beyond the range.
}

TEST(QuantizationTest, PartitionValuePerturbedByAtMostOneUnitPerEdge) {
  // Build random double-weighted graphs, quantize once (as the engine
  // does), cut exactly, and check the partition's exact value in seconds
  // against the same partition's unquantized double sum: the difference
  // must be below crossing_edges x 1 ps.
  Rng rng(77001);
  for (int g = 0; g < 60; ++g) {
    const int n = static_cast<int>(rng.UniformInt(4, 12));
    std::vector<std::tuple<int, int, double>> edges;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (rng.Bernoulli(0.5)) {
          // Spread magnitudes: microseconds to tens of seconds.
          edges.emplace_back(a, b,
                             std::pow(10.0, rng.UniformDouble(-6.0, 1.5)));
        }
      }
    }
    FlowNetwork network(n);
    for (const auto& [a, b, w] : edges) {
      network.AddEdge(a, b, SecondsToCapUnits(w));
    }
    const CutResult cut = MinCutEdmondsKarp(network, 0, n - 1);

    double unquantized = 0.0;
    int crossing = 0;
    for (const auto& [a, b, w] : edges) {
      if (cut.in_source_side[static_cast<size_t>(a)] !=
          cut.in_source_side[static_cast<size_t>(b)]) {
        unquantized += w;
        ++crossing;
      }
    }
    const double exact = CapUnitsToSeconds(cut.cut_value);
    // The double sum itself carries rounding error; give it an extra unit
    // of slack on top of the documented per-edge bound.
    EXPECT_LE(std::abs(exact - unquantized),
              (crossing + 1) * kPerEdgeBoundSeconds)
        << "graph=" << g << " crossing=" << crossing;
  }
}

TEST(QuantizationTest, CutMembershipInvariantWhenGapsExceedTheBound) {
  // Superincreasing weights (distinct powers of two, in microseconds)
  // make every partition's crossing value unique, with gaps of at least
  // 1 us — nine orders of magnitude above the quantization bound. The cut
  // of the quantized-from-double network must match the cut of the
  // exactly-scaled integer network edge for edge and node for node, even
  // with sub-bound jitter injected before quantization.
  Rng rng(88002);
  for (int g = 0; g < 40; ++g) {
    const int n = static_cast<int>(rng.UniformInt(4, 9));
    std::vector<std::tuple<int, int, int>> edges;  // (a, b, power).
    int power = 0;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (rng.Bernoulli(0.55)) {
          edges.emplace_back(a, b, power++);
        }
      }
    }

    FlowNetwork quantized(n);
    FlowNetwork exact(n);
    for (const auto& [a, b, p] : edges) {
      const double micros = static_cast<double>(int64_t{1} << p);
      // Jitter below the representable quantization step: must not matter.
      const double seconds = micros * 1e-6 + rng.UniformDouble(-4e-13, 4e-13);
      quantized.AddEdge(a, b, SecondsToCapUnits(seconds));
      exact.AddEdge(a, b, (int64_t{1} << p) * 1'000'000);  // us -> ps, exact.
    }

    const CutResult from_quantized = MinCutRelabelToFront(quantized, 0, n - 1);
    const CutResult from_exact = MinCutRelabelToFront(exact, 0, n - 1);
    const CutResult ek_quantized = MinCutEdmondsKarp(quantized, 0, n - 1);

    // Same partition, node for node (the unique minimum cut), from both
    // networks and both algorithms.
    EXPECT_EQ(from_quantized.in_source_side, from_exact.in_source_side)
        << "graph=" << g;
    EXPECT_EQ(ek_quantized.in_source_side, from_exact.in_source_side)
        << "graph=" << g;
    EXPECT_EQ(from_quantized.cut_edges, from_exact.cut_edges) << "graph=" << g;
    // Values agree within the documented bound (jitter is sub-unit, so at
    // most 1 unit per crossing edge).
    EXPECT_LE(std::llabs(from_quantized.cut_value - from_exact.cut_value),
              static_cast<int64_t>(from_exact.cut_edges.size()))
        << "graph=" << g;
  }
}

}  // namespace
}  // namespace coign
