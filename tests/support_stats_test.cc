#include "src/support/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace coign {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of the sequence is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(FitLinearTest, PerfectLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.5 * i);
  }
  const LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(fit.Evaluate(100.0), 253.0, 1e-6);
}

TEST(FitLinearTest, NoisyLineRecoversParameters) {
  Rng rng(42);
  std::vector<double> xs, ys;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.UniformDouble(0, 1000);
    xs.push_back(x);
    ys.push_back(1.5 + 0.02 * x + rng.Normal(0.0, 0.5));
  }
  const LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.5, 0.05);
  EXPECT_NEAR(fit.slope, 0.02, 0.001);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(FitLinearTest, DegenerateInputs) {
  EXPECT_EQ(FitLinear({}, {}).slope, 0.0);
  const LinearFit constant_x = FitLinear({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(constant_x.slope, 0.0);
  EXPECT_DOUBLE_EQ(constant_x.intercept, 2.0);  // Mean of ys.
  const LinearFit constant_y = FitLinear({1.0, 2.0, 3.0}, {4.0, 4.0, 4.0});
  EXPECT_NEAR(constant_y.slope, 0.0, 1e-12);
  EXPECT_EQ(constant_y.r_squared, 1.0);
}

TEST(DotProductCorrelationTest, IdenticalDirectionIsOne) {
  EXPECT_NEAR(DotProductCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
}

TEST(DotProductCorrelationTest, OrthogonalIsZero) {
  EXPECT_EQ(DotProductCorrelation({1, 0}, {0, 1}), 0.0);
}

TEST(DotProductCorrelationTest, ZeroVectors) {
  EXPECT_EQ(DotProductCorrelation({0, 0}, {0, 0}), 1.0);
  EXPECT_EQ(DotProductCorrelation({0, 0}, {1, 0}), 0.0);
}

TEST(DotProductCorrelationTest, PartialOverlap) {
  // cos angle between (1,1,0) and (0,1,1) = 1/2.
  EXPECT_NEAR(DotProductCorrelation({1, 1, 0}, {0, 1, 1}), 0.5, 1e-12);
}

TEST(MeanTest, Basics) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(PercentileTest, OrderStatistics) {
  std::vector<double> values = {5, 1, 4, 2, 3};
  EXPECT_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_EQ(Percentile(values, 1.0), 5.0);
  EXPECT_EQ(Percentile(values, 0.5), 3.0);
  EXPECT_NEAR(Percentile(values, 0.25), 2.0, 1e-12);
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
}

}  // namespace
}  // namespace coign
