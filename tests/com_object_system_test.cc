#include "src/com/object_system.h"

#include <gtest/gtest.h>

#include "src/apps/component_library.h"

namespace coign {
namespace {

// A tiny fixture app: Echo components answering on IEcho, plus a
// non-remotable IRaw interface.
class ObjectSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.interfaces()
                    .Register(InterfaceBuilder("IEcho")
                                  .Method("Echo")
                                  .In("x", ValueKind::kInt32)
                                  .Out("x", ValueKind::kInt32)
                                  .Method("Spawn")
                                  .Out("child", ValueKind::kInterface)
                                  .Build())
                    .ok());
    ASSERT_TRUE(system_.interfaces()
                    .Register(InterfaceBuilder("IRaw")
                                  .NonRemotable()
                                  .Method("Touch")
                                  .In("ptr", ValueKind::kOpaque)
                                  .Out("ok", ValueKind::kBool)
                                  .Build())
                    .ok());
    iid_echo_ = system_.interfaces().LookupByName("IEcho")->iid;
    iid_raw_ = system_.interfaces().LookupByName("IRaw")->iid;

    handlers_.Set(iid_echo_, 0, [](ScriptedComponent& self, const Message& in, Message* out) {
      self.system()->ChargeCompute(1e-6);
      out->Add("x", Value::FromInt32(in.Find("x")->AsInt32()));
      return Status::Ok();
    });
    handlers_.Set(iid_echo_, 1, [this](ScriptedComponent& self, const Message& in,
                                       Message* out) {
      (void)in;
      Result<ObjectRef> child =
          self.system()->CreateInstance(Guid::FromName("clsid:Echo"), iid_echo_);
      if (!child.ok()) {
        return child.status();
      }
      out->Add("child", Value::FromInterface(*child));
      return Status::Ok();
    });
    handlers_.Set(iid_raw_, 0, [](ScriptedComponent& self, const Message& in, Message* out) {
      (void)self;
      (void)in;
      out->Add("ok", Value::FromBool(true));
      return Status::Ok();
    });
    ASSERT_TRUE(RegisterScriptedClass(&system_, "Echo", {iid_echo_, iid_raw_}, kApiNone,
                                      &handlers_)
                    .ok());
  }

  ObjectSystem system_;
  HandlerTable handlers_;
  InterfaceId iid_echo_;
  InterfaceId iid_raw_;
};

TEST_F(ObjectSystemTest, CreateInstanceAssignsIdsAndTracksLiveness) {
  Result<ObjectRef> a = system_.CreateInstanceByName("Echo", "IEcho");
  ASSERT_TRUE(a.ok());
  Result<ObjectRef> b = system_.CreateInstanceByName("Echo", "IEcho");
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->instance, b->instance);
  EXPECT_EQ(system_.live_instance_count(), 2u);
  EXPECT_EQ(system_.total_instantiations(), 2u);
  const auto live = system_.LiveInstances();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].class_name, "Echo");
  EXPECT_EQ(live[0].creator, kNoInstance);
}

TEST_F(ObjectSystemTest, CreateRejectsUnknownClassAndInterface) {
  EXPECT_EQ(system_.CreateInstanceByName("Nope", "IEcho").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(system_.CreateInstanceByName("Echo", "INope").status().code(),
            StatusCode::kNotFound);
  Result<ObjectRef> wrong_iface =
      system_.CreateInstance(Guid::FromName("clsid:Echo"), Guid::FromName("iid:IOther"));
  EXPECT_EQ(wrong_iface.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ObjectSystemTest, CallDispatchesToHandler) {
  Result<ObjectRef> echo = system_.CreateInstanceByName("Echo", "IEcho");
  ASSERT_TRUE(echo.ok());
  Message in;
  in.Add("x", Value::FromInt32(99));
  Message out;
  ASSERT_TRUE(system_.Call(*echo, 0, in, &out).ok());
  EXPECT_EQ(out.Find("x")->AsInt32(), 99);
  EXPECT_EQ(system_.total_calls(), 1u);
}

TEST_F(ObjectSystemTest, CallValidatesTargets) {
  Result<ObjectRef> echo = system_.CreateInstanceByName("Echo", "IEcho");
  ASSERT_TRUE(echo.ok());
  Message out;
  // Dead instance.
  EXPECT_EQ(system_.Call(ObjectRef{999, iid_echo_}, 0, Message(), &out).code(),
            StatusCode::kNotFound);
  // Bad method index.
  EXPECT_EQ(system_.Call(*echo, 17, Message(), &out).code(), StatusCode::kOutOfRange);
}

TEST_F(ObjectSystemTest, QueryInterfaceSwitchesIid) {
  Result<ObjectRef> echo = system_.CreateInstanceByName("Echo", "IEcho");
  ASSERT_TRUE(echo.ok());
  Result<ObjectRef> raw = system_.QueryInterface(*echo, iid_raw_);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->instance, echo->instance);
  EXPECT_EQ(raw->iid, iid_raw_);
  EXPECT_EQ(system_.QueryInterface(*echo, Guid::FromName("iid:Nope")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ObjectSystemTest, NestedCreationRecordsCreatorAndStack) {
  Result<ObjectRef> parent = system_.CreateInstanceByName("Echo", "IEcho");
  ASSERT_TRUE(parent.ok());
  Message out;
  ASSERT_TRUE(system_.Call(*parent, 1, Message(), &out).ok());  // Spawn.
  const ObjectRef child = out.Find("child")->AsInterface();
  const auto live = system_.LiveInstances();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[1].id, child.instance);
  EXPECT_EQ(live[1].creator, parent->instance);
  // Stack unwound after the call.
  EXPECT_TRUE(system_.call_stack().empty());
}

TEST_F(ObjectSystemTest, RemoteNonRemotableCallRefused) {
  Result<ObjectRef> a = system_.CreateInstanceByName("Echo", "IEcho");
  Result<ObjectRef> b = system_.CreateInstanceByName("Echo", "IEcho");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(system_.MoveInstance(b->instance, kServerMachine).ok());

  // Driver (client) calling a server instance over the non-remotable
  // interface: refused. (Driver-originated calls count as client-side.)
  Message in;
  in.Add("ptr", Value::FromOpaque(0x1234));
  Message out;
  const Status status = system_.Call(ObjectRef{b->instance, iid_raw_}, 0, in, &out);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  // Same call, colocated: fine.
  ASSERT_TRUE(system_.MoveInstance(b->instance, kClientMachine).ok());
  EXPECT_TRUE(system_.Call(ObjectRef{b->instance, iid_raw_}, 0, in, &out).ok());
}

TEST_F(ObjectSystemTest, OpaqueParameterRefusedAcrossMachinesEvenOnRemotableInterface) {
  ASSERT_TRUE(system_.interfaces()
                  .Register(InterfaceBuilder("ILoose")
                                .Method("M")
                                .In("p", ValueKind::kOpaque)
                                .Build())
                  .ok());
  // Register a class implementing ILoose via a fresh handler table.
  static HandlerTable loose_handlers;
  const InterfaceId iid_loose = system_.interfaces().LookupByName("ILoose")->iid;
  loose_handlers.Set(iid_loose, 0,
                     [](ScriptedComponent&, const Message&, Message*) { return Status::Ok(); });
  ASSERT_TRUE(
      RegisterScriptedClass(&system_, "Loose", {iid_loose}, kApiNone, &loose_handlers).ok());
  Result<ObjectRef> loose = system_.CreateInstanceByName("Loose", "ILoose");
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(system_.MoveInstance(loose->instance, kServerMachine).ok());
  Message in;
  in.Add("p", Value::FromOpaque(7));
  Message out;
  EXPECT_EQ(system_.Call(*loose, 0, in, &out).code(), StatusCode::kFailedPrecondition);
}

TEST_F(ObjectSystemTest, PlacementPolicyDecidesMachine) {
  system_.SetPlacementPolicy(
      [](const ClassDesc&, InstanceId, InstanceId new_id) -> MachineId {
        return (new_id % 2 == 0) ? kServerMachine : kClientMachine;
      });
  Result<ObjectRef> first = system_.CreateInstanceByName("Echo", "IEcho");   // id 1.
  Result<ObjectRef> second = system_.CreateInstanceByName("Echo", "IEcho");  // id 2.
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(*system_.MachineOf(first->instance), kClientMachine);
  EXPECT_EQ(*system_.MachineOf(second->instance), kServerMachine);
}

TEST_F(ObjectSystemTest, DefaultPlacementInheritsCreatorMachine) {
  Result<ObjectRef> parent = system_.CreateInstanceByName("Echo", "IEcho");
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(system_.MoveInstance(parent->instance, kServerMachine).ok());
  Message out;
  ASSERT_TRUE(system_.Call(*parent, 1, Message(), &out).ok());  // Spawn on the server.
  const ObjectRef child = out.Find("child")->AsInterface();
  EXPECT_EQ(*system_.MachineOf(child.instance), kServerMachine);
}

TEST_F(ObjectSystemTest, DestroyInstanceAndDestroyAll) {
  Result<ObjectRef> a = system_.CreateInstanceByName("Echo", "IEcho");
  Result<ObjectRef> b = system_.CreateInstanceByName("Echo", "IEcho");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(system_.DestroyInstance(a->instance).ok());
  EXPECT_EQ(system_.live_instance_count(), 1u);
  EXPECT_EQ(system_.DestroyInstance(a->instance).code(), StatusCode::kNotFound);
  Message out;
  EXPECT_EQ(system_.Call(*a, 0, Message(), &out).code(), StatusCode::kNotFound);
  system_.DestroyAll();
  EXPECT_EQ(system_.live_instance_count(), 0u);
}

class RecordingInterceptor : public ObjectSystem::Interceptor {
 public:
  void OnInstantiated(const ClassDesc& cls, InstanceId id, InstanceId creator) override {
    (void)cls;
    instantiations.emplace_back(id, creator);
  }
  void OnDestroyed(InstanceId id, const ClassId&) override { destructions.push_back(id); }
  void OnCallBegin(const ObjectSystem::CallEvent& event) override {
    begins.push_back(event.method);
  }
  void OnCallEnd(const ObjectSystem::CallEvent& event, const Status& status) override {
    ends.push_back(event.method);
    last_ok = status.ok();
    last_out_size = event.out != nullptr ? event.out->size() : 0;
  }
  void OnCompute(InstanceId instance, double seconds) override {
    compute_instance = instance;
    compute_seconds += seconds;
  }

  std::vector<std::pair<InstanceId, InstanceId>> instantiations;
  std::vector<InstanceId> destructions;
  std::vector<MethodIndex> begins;
  std::vector<MethodIndex> ends;
  bool last_ok = false;
  size_t last_out_size = 0;
  InstanceId compute_instance = kNoInstance;
  double compute_seconds = 0.0;
};

TEST_F(ObjectSystemTest, InterceptorSeesLifecycleAndCalls) {
  RecordingInterceptor interceptor;
  system_.AddInterceptor(&interceptor);
  Result<ObjectRef> echo = system_.CreateInstanceByName("Echo", "IEcho");
  ASSERT_TRUE(echo.ok());
  Message in;
  in.Add("x", Value::FromInt32(1));
  Message out;
  ASSERT_TRUE(system_.Call(*echo, 0, in, &out).ok());
  ASSERT_TRUE(system_.DestroyInstance(echo->instance).ok());

  ASSERT_EQ(interceptor.instantiations.size(), 1u);
  EXPECT_EQ(interceptor.instantiations[0].first, echo->instance);
  EXPECT_EQ(interceptor.begins, std::vector<MethodIndex>{0});
  EXPECT_EQ(interceptor.ends, std::vector<MethodIndex>{0});
  EXPECT_TRUE(interceptor.last_ok);
  EXPECT_EQ(interceptor.last_out_size, 1u);
  EXPECT_EQ(interceptor.destructions, std::vector<InstanceId>{echo->instance});
  // ChargeCompute inside the handler is attributed to the callee.
  EXPECT_EQ(interceptor.compute_instance, echo->instance);
  EXPECT_GT(interceptor.compute_seconds, 0.0);

  system_.RemoveInterceptor(&interceptor);
  ASSERT_TRUE(system_.CreateInstanceByName("Echo", "IEcho").ok());
  EXPECT_EQ(interceptor.instantiations.size(), 1u);  // No longer observing.
}

TEST(CallStackTest, EntryFlagTracksInstanceChanges) {
  CallStack stack;
  EXPECT_TRUE(stack.empty());
  EXPECT_EQ(stack.CurrentInstance(), kNoInstance);
  CallFrame f1{.instance = 1, .clsid = Guid::FromName("A"), .iid = {}, .method = 0};
  CallFrame f2{.instance = 1, .clsid = Guid::FromName("A"), .iid = {}, .method = 1};
  CallFrame f3{.instance = 2, .clsid = Guid::FromName("B"), .iid = {}, .method = 0};
  stack.Push(f1);
  stack.Push(f2);  // Same instance: not an entry.
  stack.Push(f3);
  const auto trace = stack.BackTrace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].instance, 2u);  // Innermost first.
  EXPECT_TRUE(trace[0].entered_instance);
  EXPECT_FALSE(trace[1].entered_instance);
  EXPECT_TRUE(trace[2].entered_instance);
  EXPECT_EQ(stack.CurrentInstance(), 2u);
  stack.Pop();
  EXPECT_EQ(stack.CurrentInstance(), 1u);
}

}  // namespace
}  // namespace coign
