#include <gtest/gtest.h>

#include "src/runtime/binary_rewriter.h"
#include "src/runtime/config_record.h"
#include "src/runtime/static_analysis.h"

namespace coign {
namespace {

ApplicationImage SampleImage() {
  ApplicationImage image;
  image.name = "app.exe";
  image.binaries = {"app.exe", "logic.dll"};
  image.import_table = {"ole32.dll", "user32.dll"};
  return image;
}

TEST(ConfigRecordTest, SerializeParseRoundTrip) {
  ConfigurationRecord record;
  record.mode = RuntimeMode::kDistributed;
  record.classifier_kind = ClassifierKind::kEntryPointCalledBy;
  record.classifier_depth = 3;
  record.distribution.placement[4] = kServerMachine;
  record.distribution.placement[9] = kClientMachine;
  record.distribution.default_machine = kClientMachine;
  record.profile_text = "coign-profile v1\nmulti\nline payload";

  Result<ConfigurationRecord> parsed = ConfigurationRecord::Parse(record.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->mode, RuntimeMode::kDistributed);
  EXPECT_EQ(parsed->classifier_kind, ClassifierKind::kEntryPointCalledBy);
  EXPECT_EQ(parsed->classifier_depth, 3);
  EXPECT_EQ(parsed->distribution.placement.at(4), kServerMachine);
  EXPECT_EQ(parsed->distribution.placement.at(9), kClientMachine);
  EXPECT_EQ(parsed->profile_text, record.profile_text);
}

TEST(ConfigRecordTest, DefaultsMatchPaper) {
  ConfigurationRecord record;
  EXPECT_EQ(record.mode, RuntimeMode::kProfiling);
  // "Only one, the internal-function called-by classifier, is typically
  // used" with a complete stack walk.
  EXPECT_EQ(record.classifier_kind, ClassifierKind::kInternalFunctionCalledBy);
  EXPECT_EQ(record.classifier_depth, kCompleteStackWalk);
}

TEST(ConfigRecordTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ConfigurationRecord::Parse("").ok());
  EXPECT_FALSE(ConfigurationRecord::Parse("wrong magic\n").ok());
  EXPECT_FALSE(ConfigurationRecord::Parse("coign-config v1\nunknown x\n").ok());
}

TEST(BinaryRewriterTest, InstrumentInsertsRuntimeFirstAndConfig) {
  BinaryRewriter rewriter;
  const ApplicationImage original = SampleImage();
  EXPECT_FALSE(original.IsInstrumented());

  Result<ApplicationImage> instrumented = rewriter.Instrument(original, ConfigurationRecord());
  ASSERT_TRUE(instrumented.ok());
  EXPECT_TRUE(instrumented->IsInstrumented());
  // "It inserts an entry into the first slot of the application's DLL
  // import table" — the runtime loads before everything else.
  ASSERT_EQ(instrumented->import_table.size(), 3u);
  EXPECT_EQ(instrumented->import_table[0], kCoignRuntimeDll);
  EXPECT_EQ(instrumented->import_table[1], "ole32.dll");
  ASSERT_TRUE(instrumented->config_segment.has_value());
  EXPECT_TRUE(instrumented->ReadConfig().ok());
  // The original is untouched.
  EXPECT_EQ(original.import_table.size(), 2u);
}

TEST(BinaryRewriterTest, DoubleInstrumentationRefused) {
  BinaryRewriter rewriter;
  Result<ApplicationImage> once = rewriter.Instrument(SampleImage(), ConfigurationRecord());
  ASSERT_TRUE(once.ok());
  EXPECT_EQ(rewriter.Instrument(*once, ConfigurationRecord()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BinaryRewriterTest, WriteDistributionSwitchesToLightweightRuntime) {
  BinaryRewriter rewriter;
  Result<ApplicationImage> instrumented =
      rewriter.Instrument(SampleImage(), ConfigurationRecord());
  ASSERT_TRUE(instrumented.ok());

  Distribution distribution;
  distribution.placement[2] = kServerMachine;
  Result<ApplicationImage> distributed =
      rewriter.WriteDistribution(*instrumented, distribution, "profile-payload");
  ASSERT_TRUE(distributed.ok());
  Result<ConfigurationRecord> config = distributed->ReadConfig();
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->mode, RuntimeMode::kDistributed);
  EXPECT_EQ(config->distribution.placement.at(2), kServerMachine);
  EXPECT_EQ(config->profile_text, "profile-payload");

  // Not possible on an uninstrumented image.
  EXPECT_EQ(rewriter.WriteDistribution(SampleImage(), distribution, "").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BinaryRewriterTest, StripRestoresOriginal) {
  BinaryRewriter rewriter;
  Result<ApplicationImage> instrumented =
      rewriter.Instrument(SampleImage(), ConfigurationRecord());
  ASSERT_TRUE(instrumented.ok());
  const ApplicationImage stripped = rewriter.Strip(*instrumented);
  EXPECT_FALSE(stripped.IsInstrumented());
  EXPECT_EQ(stripped.import_table, SampleImage().import_table);
  EXPECT_FALSE(stripped.config_segment.has_value());
}

TEST(StaticAnalysisTest, ClassifiesKnownApis) {
  EXPECT_EQ(ClassifyApiName("CreateWindowExW"), kApiGui);
  EXPECT_EQ(ClassifyApiName("BitBlt"), kApiGui);
  EXPECT_EQ(ClassifyApiName("ReadFile"), kApiStorage);
  EXPECT_EQ(ClassifyApiName("StgOpenStorage"), kApiStorage);
  EXPECT_EQ(ClassifyApiName("SQLConnect"), kApiOdbc);
  EXPECT_EQ(ClassifyApiName("GetTickCount"), kApiNone);
}

TEST(StaticAnalysisTest, AnalyzeImportsUnionsFlags) {
  EXPECT_EQ(AnalyzeImports({"GetTickCount", "HeapAlloc"}), kApiNone);
  EXPECT_EQ(AnalyzeImports({"CreateWindowExW", "ReadFile"}), kApiGui | kApiStorage);
  EXPECT_EQ(AnalyzeImports({}), kApiNone);
}

TEST(StaticAnalysisTest, UsageStringsReadable) {
  EXPECT_EQ(ApiUsageString(kApiNone), "none");
  EXPECT_EQ(ApiUsageString(kApiGui), "gui");
  EXPECT_EQ(ApiUsageString(kApiGui | kApiStorage | kApiOdbc), "gui|storage|odbc");
}

}  // namespace
}  // namespace coign
