// Tests for the future-work extensions: classifier-table persistence in
// the configuration record, usage-drift detection, and multi-machine
// partitioning.

#include <gtest/gtest.h>

#include "src/analysis/multiway.h"
#include "src/classify/classifiers.h"
#include "src/com/class_registry.h"
#include "src/runtime/config_record.h"
#include "src/runtime/drift.h"

namespace coign {
namespace {

ClassDesc MakeClass(const std::string& name) {
  ClassDesc cls;
  cls.clsid = Guid::FromName("clsid:" + name);
  cls.name = name;
  return cls;
}

CallFrame Frame(InstanceId instance, const char* cls, MethodIndex method) {
  CallFrame frame;
  frame.instance = instance;
  frame.clsid = Guid::FromName(std::string("clsid:") + cls);
  frame.iid = Guid::FromName("iid:I");
  frame.method = method;
  return frame;
}

// --- Classifier table export/import ----------------------------------------

TEST(ClassifierTableTest, ImportReproducesIds) {
  std::unique_ptr<InstanceClassifier> trained =
      MakeClassifier(ClassifierKind::kInternalFunctionCalledBy);
  const ClassDesc widget = MakeClass("Widget");
  const ClassDesc reader = MakeClass("Reader");
  const ClassificationId widget_id = trained->Classify(widget, {}, 1);
  const ClassificationId reader_id =
      trained->Classify(reader, {Frame(1, "Widget", 2)}, 2);
  ASSERT_NE(widget_id, reader_id);

  // Fresh classifier, restored table, *reversed* discovery order.
  std::unique_ptr<InstanceClassifier> restored =
      MakeClassifier(ClassifierKind::kInternalFunctionCalledBy);
  ASSERT_TRUE(restored->ImportDescriptors(trained->ExportDescriptors()).ok());
  EXPECT_EQ(restored->classification_count(), 2u);
  // Note: the reader context references widget's classification id, which
  // the import preserved.
  const ClassificationId widget_restored = restored->Classify(widget, {}, 10);
  const ClassificationId reader_restored =
      restored->Classify(reader, {Frame(10, "Widget", 2)}, 11);
  EXPECT_EQ(widget_restored, widget_id);
  EXPECT_EQ(reader_restored, reader_id);
  // Unknown contexts still get fresh ids beyond the table.
  const ClassificationId novel = restored->Classify(reader, {Frame(10, "Widget", 3)}, 12);
  EXPECT_GE(novel, 2u);
}

TEST(ClassifierTableTest, ImportRefusedAfterClassification) {
  std::unique_ptr<InstanceClassifier> classifier =
      MakeClassifier(ClassifierKind::kStaticType);
  classifier->Classify(MakeClass("A"), {}, 1);
  EXPECT_EQ(classifier->ImportDescriptors({}).code(), StatusCode::kFailedPrecondition);
}

TEST(ClassifierTableTest, ConfigRecordRoundTripsTable) {
  std::unique_ptr<InstanceClassifier> trained =
      MakeClassifier(ClassifierKind::kInternalFunctionCalledBy);
  trained->Classify(MakeClass("A"), {}, 1);
  trained->Classify(MakeClass("B"), {Frame(1, "A", 0)}, 2);

  ConfigurationRecord record;
  record.mode = RuntimeMode::kDistributed;
  record.classifier_table = trained->ExportDescriptors();
  Result<ConfigurationRecord> parsed = ConfigurationRecord::Parse(record.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->classifier_table.size(), 2u);
  EXPECT_EQ(parsed->classifier_table[0], record.classifier_table[0]);
  EXPECT_EQ(parsed->classifier_table[1], record.classifier_table[1]);
}

// --- Drift detection ----------------------------------------------------------

IccProfile TrainedProfile() {
  IccProfile profile;
  CallKey gui_worker;
  gui_worker.src = 0;
  gui_worker.dst = 1;
  gui_worker.iid = Guid::FromName("iid:I");
  CallKey worker_store = gui_worker;
  worker_store.src = 1;
  worker_store.dst = 2;
  for (int i = 0; i < 500; ++i) {
    profile.RecordCall(gui_worker, 100, 50, true);
  }
  for (int i = 0; i < 100; ++i) {
    profile.RecordCall(worker_store, 1000, 50, true);
  }
  return profile;
}

TEST(DriftTest, MessageCountsAreDirectionless) {
  MessageCounts counts;
  counts.Record(1, 2);
  counts.Record(2, 1, 3);
  EXPECT_EQ(counts.CountOf(1, 2), 4u);
  EXPECT_EQ(counts.CountOf(2, 1), 4u);
  EXPECT_EQ(counts.total_messages(), 4u);
  counts.Clear();
  EXPECT_EQ(counts.total_messages(), 0u);
}

TEST(DriftTest, MatchingUsageNotFlagged) {
  const IccProfile profile = TrainedProfile();
  MessageCounts observed;
  observed.Record(0, 1, 250);  // Same mixture, half the volume.
  observed.Record(1, 2, 50);
  const DriftReport report = DetectDrift(profile, observed);
  EXPECT_GT(report.similarity, 0.95);
  EXPECT_EQ(report.unprofiled_fraction, 0.0);
  EXPECT_FALSE(report.reprofile_recommended);
}

TEST(DriftTest, NewPairsFlagged) {
  const IccProfile profile = TrainedProfile();
  MessageCounts observed;
  observed.Record(0, 1, 200);
  observed.Record(7, 8, 100);  // A pair profiling never saw.
  const DriftReport report = DetectDrift(profile, observed);
  EXPECT_GT(report.unprofiled_fraction, 0.3);
  EXPECT_TRUE(report.reprofile_recommended);
}

TEST(DriftTest, ShiftedMixtureFlagged) {
  const IccProfile profile = TrainedProfile();
  MessageCounts observed;
  observed.Record(0, 1, 5);     // The formerly dominant pair is quiet...
  observed.Record(1, 2, 2000);  // ...and the bulk pair explodes.
  const DriftReport report = DetectDrift(profile, observed);
  EXPECT_LT(report.similarity, 0.85);
  EXPECT_TRUE(report.reprofile_recommended);
}

TEST(DriftTest, TooFewMessagesGiveNoVerdict) {
  const IccProfile profile = TrainedProfile();
  MessageCounts observed;
  observed.Record(7, 8, 10);  // Brand new pair, but only 10 messages.
  const DriftReport report = DetectDrift(profile, observed);
  EXPECT_FALSE(report.reprofile_recommended);
}

TEST(DriftTest, CountsFromProfileUsesCallCounts) {
  const IccProfile profile = TrainedProfile();
  const MessageCounts counts = CountsFromProfile(profile);
  EXPECT_EQ(counts.CountOf(0, 1), 500u);
  EXPECT_EQ(counts.CountOf(1, 2), 100u);
}

TEST(DriftTest, ReportToStringReadable) {
  DriftReport report;
  report.similarity = 0.5;
  report.reprofile_recommended = true;
  EXPECT_NE(report.ToString().find("reprofile=yes"), std::string::npos);
}

// --- Multiway analysis ----------------------------------------------------------

IccProfile ThreeTierProfile() {
  IccProfile profile;
  auto add = [&profile](ClassificationId id, const std::string& name, uint32_t api) {
    ClassificationInfo info;
    info.id = id;
    info.clsid = Guid::FromName("clsid:" + name);
    info.class_name = name;
    info.api_usage = api;
    info.instance_count = 1;
    profile.RecordClassification(info);
  };
  add(0, "Gui", kApiGui);
  add(1, "Cache", kApiNone);
  add(2, "Logic", kApiNone);
  add(3, "Db", kApiOdbc);
  auto call = [&profile](ClassificationId src, ClassificationId dst, uint64_t bytes,
                         int times) {
    CallKey key;
    key.src = src;
    key.dst = dst;
    key.iid = Guid::FromName("iid:I");
    for (int i = 0; i < times; ++i) {
      profile.RecordCall(key, bytes, 64, true);
    }
  };
  call(0, 1, 200, 100);  // GUI <-> cache: chatty.
  call(1, 2, 500, 5);    // Cache <-> logic: light.
  call(2, 3, 4000, 50);  // Logic <-> db: heavy.
  return profile;
}

NetworkProfile FastNet() {
  NetworkProfile network;
  network.per_message_seconds = 1e-3;
  network.seconds_per_byte = 1e-6;
  return network;
}

TEST(MultiwayAnalysisTest, ThreeTierSplitsByTraffic) {
  MultiwayOptions options;
  options.machine_count = 3;
  options.gui_machine = 0;
  options.storage_machine = 2;
  options.extra_pins.emplace_back(2, 1);  // Logic anchored to the middle.
  Result<MultiwayAnalysisResult> result =
      AnalyzeMultiway(ThreeTierProfile(), FastNet(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->distribution.MachineFor(0), 0);  // GUI pinned client.
  EXPECT_EQ(result->distribution.MachineFor(2), 1);  // Logic pinned middle.
  EXPECT_EQ(result->distribution.MachineFor(3), 2);  // Db pinned storage.
  // The cache follows its chatty GUI edge to the client.
  EXPECT_EQ(result->distribution.MachineFor(1), 0);
  EXPECT_GT(result->crossing_seconds, 0.0);
  EXPECT_EQ(result->classifications_per_machine.size(), 3u);
  EXPECT_EQ(result->instances_per_machine[0], 2u);
}

TEST(MultiwayAnalysisTest, TwoMachinesDegenerateToTwoWayShape) {
  MultiwayOptions options;
  options.machine_count = 2;
  options.gui_machine = 0;
  options.storage_machine = 1;
  Result<MultiwayAnalysisResult> result =
      AnalyzeMultiway(ThreeTierProfile(), FastNet(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distribution.MachineFor(0), 0);
  EXPECT_EQ(result->distribution.MachineFor(3), 1);
}

TEST(MultiwayAnalysisTest, RejectsBadOptions) {
  EXPECT_FALSE(AnalyzeMultiway(ThreeTierProfile(), FastNet(),
                               MultiwayOptions{.machine_count = 1})
                   .ok());
  EXPECT_FALSE(AnalyzeMultiway(ThreeTierProfile(), FastNet(),
                               MultiwayOptions{.machine_count = 3, .gui_machine = 5})
                   .ok());
  EXPECT_FALSE(AnalyzeMultiway(IccProfile(), FastNet(), MultiwayOptions()).ok());
  MultiwayOptions bad_pin;
  bad_pin.extra_pins.emplace_back(0, 9);
  EXPECT_FALSE(AnalyzeMultiway(ThreeTierProfile(), FastNet(), bad_pin).ok());
}

TEST(MultiwayAnalysisTest, PredictCountsEveryCrossingPair) {
  const IccProfile profile = ThreeTierProfile();
  Distribution spread;
  spread.placement[0] = 0;
  spread.placement[1] = 1;
  spread.placement[2] = 1;
  spread.placement[3] = 2;
  const double crossing =
      PredictMultiwayCommunicationSeconds(profile, spread, FastNet());
  // GUI<->cache crosses (0|1) and logic<->db crosses (1|2); cache<->logic
  // does not.
  const double expected = (200.0 /*calls*/ * 1e-3 + (100 * 264) * 1e-6) +
                          (100.0 * 1e-3 + (50 * 4064) * 1e-6);
  EXPECT_NEAR(crossing, expected, 1e-9);
}

}  // namespace
}  // namespace coign
