// Property tests for the fault-injection layer: 200+ seeded random fault
// schedules and call sequences pushed through the hardened transport,
// asserting the invariants the design promises regardless of what the
// generated network does —
//   * attempts never exceed the retry budget;
//   * every receipt decomposes exactly into latency + payload shares,
//     with no negative time anywhere;
//   * the transport's elapsed clock and the injector's fault clock are
//     monotone and agree (fault episodes stay aligned with modeled time);
//   * injector stats are consistent with delivered/undelivered receipts;
//   * the same seed replays the whole run bit-for-bit.
// Plus a few end-to-end adaptive runs under faults: the run completes
// with no lost placements, time only accumulates, and identical seeds
// produce identical measurements and online stats.
//
// Failures shrink before they report: the harness bisects the failing
// case's call sequence to the shortest violating prefix, then bisects the
// fault schedule to the fewest leading episodes that still reproduce, and
// prints the minimal case — seed, calls, episodes, retry policy — ready to
// paste into a regression test.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/apps/octarine.h"
#include "src/fault/injector.h"
#include "src/online/measure_online.h"
#include "tests/fault_generators.h"

namespace coign {
namespace {

constexpr int kSchedules = 220;
constexpr int kCallsPerSchedule = 60;

// Everything observable about one hardened run, for exact replay checks.
struct RunTrace {
  std::vector<DeliveryReceipt> receipts;
  FaultStats stats;
  double elapsed_seconds = 0.0;
  double fault_clock_seconds = 0.0;
};

bool SameReceipt(const DeliveryReceipt& a, const DeliveryReceipt& b) {
  return a.seconds == b.seconds && a.latency_seconds == b.latency_seconds &&
         a.payload_seconds == b.payload_seconds && a.attempts == b.attempts &&
         a.delivered == b.delivered && a.faulted == b.faulted &&
         a.duplicate_messages == b.duplicate_messages &&
         a.corrupt_rejected == b.corrupt_rejected &&
         a.corrupt_consumed == b.corrupt_consumed;
}

// One generated case, fully reconstructible from (seed, call_count,
// episode_count) — the shrinker's search space.
struct GeneratedCase {
  RandomFaultOptions schedule_options;
  FaultSchedule schedule;
  FaultRates background;
  NetworkModel model;
  RetryPolicy policy;
  std::vector<testing::GeneratedCall> calls;
};

GeneratedCase BuildCase(uint64_t seed, int call_count, int episode_count) {
  GeneratedCase c;
  Rng gen(seed);
  c.schedule_options = testing::GenFaultOptions(gen);
  c.schedule = FaultSchedule::Random(c.schedule_options, seed);
  if (episode_count >= 0 &&
      episode_count < static_cast<int>(c.schedule.episodes().size())) {
    c.schedule = FaultSchedule::FromEpisodes(std::vector<FaultEpisode>(
        c.schedule.episodes().begin(), c.schedule.episodes().begin() + episode_count));
  }
  c.background = testing::GenBackground(gen);
  c.model = NetworkModel::TenBaseT();
  c.policy = testing::GenRetryPolicy(gen, c.model);
  // Calls are drawn one at a time, so a shorter sequence is an exact
  // prefix of the longer one — the property the prefix shrinker rests on.
  c.calls = testing::GenCallSequence(gen, call_count);
  return c;
}

// Runs one generated case and checks every transport invariant without
// asserting: the first violation comes back as text (empty = clean), so
// the shrinker can re-run prefixes of the case without tripping gtest.
struct CaseOutcome {
  RunTrace trace;
  std::string violation;  // First violated invariant, or empty.
};

CaseOutcome RunCase(uint64_t seed, int call_count, int episode_count = -1) {
  const GeneratedCase c = BuildCase(seed, call_count, episode_count);
  FaultInjector injector(c.schedule, c.background, seed ^ 0x9e3779b97f4a7c15ull);
  Transport transport(c.model);
  transport.AttachFaults(&injector);
  transport.SetRetryPolicy(c.policy);
  Rng jitter(seed + 1);

  CaseOutcome outcome;
  std::ostringstream violation;
  const auto fail = [&](size_t call_index, const std::string& what) {
    violation << "call " << call_index << ": " << what;
    outcome.violation = violation.str();
  };

  double last_elapsed = 0.0;
  double last_fault_clock = 0.0;
  uint64_t receipt_attempts = 0;
  for (size_t i = 0; i < c.calls.size() && outcome.violation.empty(); ++i) {
    const testing::GeneratedCall& call = c.calls[i];
    const DeliveryReceipt receipt = transport.ReliableRoundTrip(
        call.src, call.dst, call.request_bytes, call.reply_bytes, &jitter);
    outcome.trace.receipts.push_back(receipt);

    // Retry budget bounds attempts; undelivered means the budget was spent.
    const int budget = std::max(1, c.policy.max_attempts);
    if (receipt.attempts < 1 || receipt.attempts > budget) {
      fail(i, "attempts " + std::to_string(receipt.attempts) + " outside [1, " +
                  std::to_string(budget) + "]");
    } else if (!receipt.delivered &&
               (receipt.attempts != budget || !receipt.faulted ||
                (receipt.payload_seconds != 0.0 && receipt.corrupt_rejected == 0))) {
      // Undelivered calls burn latency only — unless checksum rejections
      // consumed budget, which pay for the bytes that crossed the wire.
      fail(i, "undelivered receipt with unspent budget, no fault mark, or "
              "payload time");
    } else if (receipt.latency_seconds < 0.0 || receipt.payload_seconds < 0.0) {
      fail(i, "negative time share");
    } else if (receipt.seconds != receipt.latency_seconds + receipt.payload_seconds) {
      fail(i, "seconds do not decompose into latency + payload");
    } else if (transport.elapsed_seconds() < last_elapsed) {
      fail(i, "transport clock ran backwards");
    } else if (injector.now_seconds() < last_fault_clock) {
      fail(i, "fault clock ran backwards");
    }
    last_elapsed = transport.elapsed_seconds();
    last_fault_clock = injector.now_seconds();
    receipt_attempts += static_cast<uint64_t>(receipt.attempts);
  }

  if (outcome.violation.empty()) {
    // The transport charged itself exactly what it told the fault clock,
    // and every delivery attempt was offered to the fault model.
    const double skew = std::abs(transport.elapsed_seconds() - injector.now_seconds());
    if (skew > 1e-9 * (1.0 + transport.elapsed_seconds())) {
      fail(c.calls.size(), "transport and fault clocks disagree");
    } else if (injector.stats().attempts != receipt_attempts) {
      fail(c.calls.size(), "injector saw " + std::to_string(injector.stats().attempts) +
                               " attempts, receipts total " +
                               std::to_string(receipt_attempts));
    }
  }

  outcome.trace.stats = injector.stats();
  outcome.trace.elapsed_seconds = transport.elapsed_seconds();
  outcome.trace.fault_clock_seconds = injector.now_seconds();
  return outcome;
}

// Shrinks a failing case to a minimal reproducing prefix and formats it.
// `fails(calls, episodes)` must re-run the case; episodes = -1 keeps the
// whole schedule. Call-prefix bisection is sound (deterministic replay
// makes failure prefix-monotone); episode-prefix bisection is heuristic,
// so its candidate is re-verified and discarded if it stopped failing.
std::string MinimalReproReport(uint64_t seed,
                               const std::function<std::string(int, int)>& fails) {
  const int minimal_calls = testing::SmallestFailingPrefix(
      kCallsPerSchedule, [&](int n) { return !fails(n, -1).empty(); });

  const GeneratedCase full = BuildCase(seed, minimal_calls, -1);
  const int total_episodes = static_cast<int>(full.schedule.episodes().size());
  int minimal_episodes = total_episodes;
  if (total_episodes > 0) {
    if (!fails(minimal_calls, 0).empty()) {
      minimal_episodes = 0;  // Background rates alone reproduce.
    } else {
      const int candidate = testing::SmallestFailingPrefix(
          total_episodes, [&](int k) { return !fails(minimal_calls, k).empty(); });
      if (!fails(minimal_calls, candidate).empty()) {
        minimal_episodes = candidate;
      }
    }
  }

  const GeneratedCase c = BuildCase(seed, minimal_calls, minimal_episodes);
  std::ostringstream report;
  report << "minimal repro: seed=" << seed << " calls=" << minimal_calls << "/"
         << kCallsPerSchedule << " episodes=" << minimal_episodes << "/"
         << total_episodes << "\n";
  report << "violation: " << fails(minimal_calls, minimal_episodes) << "\n";
  report << "retry: attempts=" << c.policy.max_attempts
         << " timeout=" << c.policy.timeout_seconds << "s\n";
  report << "background: drop=" << c.background.drop
         << " dup=" << c.background.duplicate << " reorder=" << c.background.reorder
         << "\n";
  report << c.schedule.ToString() << "\n";
  for (size_t i = 0; i < c.calls.size(); ++i) {
    report << "  call " << i << ": " << static_cast<int>(c.calls[i].src) << "->"
           << static_cast<int>(c.calls[i].dst) << " req=" << c.calls[i].request_bytes
           << "B reply=" << c.calls[i].reply_bytes << "B\n";
  }
  return report.str();
}

TEST(FaultPropertyTest, HardenedTransportInvariantsAcrossSeededSchedules) {
  uint64_t delivered = 0, undelivered = 0, faulted = 0;
  for (int seed = 0; seed < kSchedules; ++seed) {
    const CaseOutcome outcome =
        RunCase(static_cast<uint64_t>(seed), kCallsPerSchedule);
    if (!outcome.violation.empty()) {
      ADD_FAILURE() << MinimalReproReport(
          static_cast<uint64_t>(seed), [&](int calls, int episodes) {
            return RunCase(static_cast<uint64_t>(seed), calls, episodes).violation;
          });
      continue;
    }
    for (const DeliveryReceipt& receipt : outcome.trace.receipts) {
      delivered += receipt.delivered ? 1 : 0;
      undelivered += receipt.delivered ? 0 : 1;
      faulted += receipt.faulted ? 1 : 0;
    }
  }
  // The generated population must actually exercise the hard paths —
  // otherwise the invariants above were vacuous.
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(undelivered, 0u);
  EXPECT_GT(faulted, 0u);
}

TEST(FaultPropertyTest, SameSeedReplaysBitForBit) {
  // Replay divergence shrinks like an invariant violation: the checker
  // runs the prefix twice and reports the first receipt that differs.
  const auto divergence = [](uint64_t seed, int calls,
                             int episodes) -> std::string {
    const RunTrace a = RunCase(seed, calls, episodes).trace;
    const RunTrace b = RunCase(seed, calls, episodes).trace;
    if (a.receipts.size() != b.receipts.size()) {
      return "replay produced a different receipt count";
    }
    for (size_t i = 0; i < a.receipts.size(); ++i) {
      if (!SameReceipt(a.receipts[i], b.receipts[i])) {
        return "replay diverged at receipt " + std::to_string(i);
      }
    }
    if (a.elapsed_seconds != b.elapsed_seconds ||
        a.fault_clock_seconds != b.fault_clock_seconds ||
        a.stats.ToString() != b.stats.ToString()) {
      return "replay diverged in totals";
    }
    return "";
  };

  for (int seed = 0; seed < kSchedules; seed += 7) {
    const std::string diverged =
        divergence(static_cast<uint64_t>(seed), kCallsPerSchedule, -1);
    if (!diverged.empty()) {
      ADD_FAILURE() << MinimalReproReport(
          static_cast<uint64_t>(seed), [&](int calls, int episodes) {
            return divergence(static_cast<uint64_t>(seed), calls, episodes);
          });
    }
  }
}

// The shrinker itself: plant a known violation and check the bisection
// lands on exactly the first offending call.
TEST(FaultPropertyTest, ShrinkerFindsTheFirstFailingCall) {
  // A synthetic monotone failure: "fails" when the prefix reaches call 23.
  int probes = 0;
  const int minimal = testing::SmallestFailingPrefix(kCallsPerSchedule, [&](int n) {
    ++probes;
    return n >= 23;
  });
  EXPECT_EQ(minimal, 23);
  EXPECT_LE(probes, 8);  // log2(60) probes, not 60.

  // And end-to-end on a real generated case: a fake invariant that
  // rejects any undelivered receipt shrinks to the first undelivered call.
  uint64_t seed_with_undelivered = 0;
  int first_undelivered = -1;
  for (uint64_t seed = 0; seed < 64 && first_undelivered < 0; ++seed) {
    const RunTrace trace = RunCase(seed, kCallsPerSchedule).trace;
    for (size_t i = 0; i < trace.receipts.size(); ++i) {
      if (!trace.receipts[i].delivered) {
        seed_with_undelivered = seed;
        first_undelivered = static_cast<int>(i);
        break;
      }
    }
  }
  ASSERT_GE(first_undelivered, 0) << "no generated case lost a call";

  const auto fails = [&](int calls) {
    const RunTrace trace = RunCase(seed_with_undelivered, calls).trace;
    for (const DeliveryReceipt& receipt : trace.receipts) {
      if (!receipt.delivered) {
        return true;
      }
    }
    return false;
  };
  EXPECT_EQ(testing::SmallestFailingPrefix(kCallsPerSchedule, fails),
            first_undelivered + 1);
}

// --- End-to-end: the adaptive loop under generated fault schedules -------

struct EndToEndFixture {
  std::unique_ptr<Application> app;
  IccProfile profile;
  ConfigurationRecord config;
  OnlineMeasurementOptions options;
  std::vector<OnlinePhase> workload;
};

EndToEndFixture MakeFixture() {
  EndToEndFixture fx;
  fx.app = MakeOctarine();
  std::vector<Descriptor> table;
  Result<IccProfile> profile = ProfileScenarios(
      *fx.app, {"o_oldwp0", "o_oldwp3"}, ClassifierKind::kInternalFunctionCalledBy,
      kCompleteStackWalk, 17, &table);
  EXPECT_TRUE(profile.ok());
  fx.profile = *profile;

  const NetworkModel network = NetworkModel::TenBaseT();
  const NetworkProfile fitted = FitNetwork(network);
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(fx.profile, fitted);
  EXPECT_TRUE(analysis.ok());

  fx.config.mode = RuntimeMode::kDistributed;
  fx.config.classifier_table = table;
  fx.config.distribution = analysis->distribution;

  fx.options.network = network;
  fx.options.fitted = fitted;
  fx.options.adaptive = true;
  fx.options.retry = SuggestedRetryPolicy(network);
  fx.workload = CyclicWorkload({"o_oldwp3", "o_mixed9"}, /*repetitions=*/1,
                               /*cycles=*/2);
  return fx;
}

TEST(FaultPropertyTest, AdaptiveRunSurvivesGeneratedSchedules) {
  EndToEndFixture fx = MakeFixture();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    Rng gen(seed * 31);
    RandomFaultOptions schedule_options = testing::GenFaultOptions(gen);
    // Keep the horizon inside the run so episodes actually overlap traffic.
    schedule_options.horizon_seconds = 2.0;
    const FaultSchedule schedule = FaultSchedule::Random(schedule_options, seed);
    FaultRates background;
    background.drop = 0.02;

    FaultInjector injector(schedule, background, seed);
    OnlineMeasurementOptions options = fx.options;
    options.faults = &injector;
    Result<OnlineRunResult> run =
        MeasureOnlineRun(*fx.app, fx.workload, fx.config, fx.profile, options);
    // No lost placements: every call in every epoch found its instance and
    // completed; a lost placement surfaces as a failed run.
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->online.epochs, fx.workload.size());
    // Time only accumulates.
    EXPECT_GT(run->run.execution_seconds, 0.0);
    EXPECT_GE(run->run.communication_seconds, 0.0);
    EXPECT_GE(run->run.execution_seconds, run->run.communication_seconds);
  }
}

TEST(FaultPropertyTest, AdaptiveRunReplaysIdenticallyPerSeed) {
  EndToEndFixture fx = MakeFixture();
  RandomFaultOptions schedule_options;
  schedule_options.horizon_seconds = 2.0;
  const FaultSchedule schedule = FaultSchedule::Random(schedule_options, 5);
  FaultRates background;
  background.drop = 0.02;

  auto run_once = [&]() {
    FaultInjector injector(schedule, background, 77);
    OnlineMeasurementOptions options = fx.options;
    options.faults = &injector;
    Result<OnlineRunResult> run =
        MeasureOnlineRun(*fx.app, fx.workload, fx.config, fx.profile, options);
    EXPECT_TRUE(run.ok());
    return run.ok() ? *run : OnlineRunResult{};
  };
  const OnlineRunResult a = run_once();
  const OnlineRunResult b = run_once();
  EXPECT_EQ(a.run.execution_seconds, b.run.execution_seconds);
  EXPECT_EQ(a.run.communication_seconds, b.run.communication_seconds);
  EXPECT_EQ(a.run.remote_calls, b.run.remote_calls);
  EXPECT_EQ(a.run.remote_bytes, b.run.remote_bytes);
  EXPECT_EQ(a.online.ToString(), b.online.ToString());
}

}  // namespace
}  // namespace coign
