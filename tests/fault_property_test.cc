// Property tests for the fault-injection layer: 200+ seeded random fault
// schedules and call sequences pushed through the hardened transport,
// asserting the invariants the design promises regardless of what the
// generated network does —
//   * attempts never exceed the retry budget;
//   * every receipt decomposes exactly into latency + payload shares,
//     with no negative time anywhere;
//   * the transport's elapsed clock and the injector's fault clock are
//     monotone and agree (fault episodes stay aligned with modeled time);
//   * injector stats are consistent with delivered/undelivered receipts;
//   * the same seed replays the whole run bit-for-bit.
// Plus a few end-to-end adaptive runs under faults: the run completes
// with no lost placements, time only accumulates, and identical seeds
// produce identical measurements and online stats.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/apps/octarine.h"
#include "src/fault/injector.h"
#include "src/online/measure_online.h"
#include "tests/fault_generators.h"

namespace coign {
namespace {

constexpr int kSchedules = 220;
constexpr int kCallsPerSchedule = 60;

// Everything observable about one hardened run, for exact replay checks.
struct RunTrace {
  std::vector<DeliveryReceipt> receipts;
  FaultStats stats;
  double elapsed_seconds = 0.0;
  double fault_clock_seconds = 0.0;
};

bool SameReceipt(const DeliveryReceipt& a, const DeliveryReceipt& b) {
  return a.seconds == b.seconds && a.latency_seconds == b.latency_seconds &&
         a.payload_seconds == b.payload_seconds && a.attempts == b.attempts &&
         a.delivered == b.delivered && a.faulted == b.faulted &&
         a.duplicate_messages == b.duplicate_messages;
}

RunTrace RunGeneratedCase(uint64_t seed) {
  Rng gen(seed);
  const RandomFaultOptions schedule_options = testing::GenFaultOptions(gen);
  const FaultSchedule schedule = FaultSchedule::Random(schedule_options, seed);
  const FaultRates background = testing::GenBackground(gen);
  const NetworkModel model = NetworkModel::TenBaseT();
  const RetryPolicy policy = testing::GenRetryPolicy(gen, model);
  const std::vector<testing::GeneratedCall> calls =
      testing::GenCallSequence(gen, kCallsPerSchedule);

  FaultInjector injector(schedule, background, seed ^ 0x9e3779b97f4a7c15ull);
  Transport transport(model);
  transport.AttachFaults(&injector);
  transport.SetRetryPolicy(policy);
  Rng jitter(seed + 1);

  RunTrace trace;
  double last_elapsed = 0.0;
  double last_fault_clock = 0.0;
  uint64_t receipt_attempts = 0;
  for (const testing::GeneratedCall& call : calls) {
    const DeliveryReceipt receipt = transport.ReliableRoundTrip(
        call.src, call.dst, call.request_bytes, call.reply_bytes, &jitter);
    trace.receipts.push_back(receipt);

    // Retry budget bounds attempts; undelivered means the budget was spent.
    EXPECT_GE(receipt.attempts, 1);
    EXPECT_LE(receipt.attempts, std::max(1, policy.max_attempts));
    if (!receipt.delivered) {
      EXPECT_EQ(receipt.attempts, std::max(1, policy.max_attempts));
      EXPECT_TRUE(receipt.faulted);
      EXPECT_DOUBLE_EQ(receipt.payload_seconds, 0.0);
    }

    // Time decomposes exactly and never runs backwards.
    EXPECT_GE(receipt.latency_seconds, 0.0);
    EXPECT_GE(receipt.payload_seconds, 0.0);
    EXPECT_DOUBLE_EQ(receipt.seconds,
                     receipt.latency_seconds + receipt.payload_seconds);
    EXPECT_GE(transport.elapsed_seconds(), last_elapsed);
    EXPECT_GE(injector.now_seconds(), last_fault_clock);
    last_elapsed = transport.elapsed_seconds();
    last_fault_clock = injector.now_seconds();
    receipt_attempts += static_cast<uint64_t>(receipt.attempts);
  }

  // The transport charged itself exactly what it told the fault clock.
  EXPECT_NEAR(transport.elapsed_seconds(), injector.now_seconds(),
              1e-9 * (1.0 + transport.elapsed_seconds()));
  // Every delivery attempt was offered to the fault model, and no more.
  EXPECT_EQ(injector.stats().attempts, receipt_attempts);

  trace.stats = injector.stats();
  trace.elapsed_seconds = transport.elapsed_seconds();
  trace.fault_clock_seconds = injector.now_seconds();
  return trace;
}

TEST(FaultPropertyTest, HardenedTransportInvariantsAcrossSeededSchedules) {
  uint64_t delivered = 0, undelivered = 0, faulted = 0;
  for (int seed = 0; seed < kSchedules; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const RunTrace trace = RunGeneratedCase(static_cast<uint64_t>(seed));
    for (const DeliveryReceipt& receipt : trace.receipts) {
      delivered += receipt.delivered ? 1 : 0;
      undelivered += receipt.delivered ? 0 : 1;
      faulted += receipt.faulted ? 1 : 0;
    }
  }
  // The generated population must actually exercise the hard paths —
  // otherwise the invariants above were vacuous.
  EXPECT_GT(delivered, 0u);
  EXPECT_GT(undelivered, 0u);
  EXPECT_GT(faulted, 0u);
}

TEST(FaultPropertyTest, SameSeedReplaysBitForBit) {
  for (int seed = 0; seed < kSchedules; seed += 7) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const RunTrace a = RunGeneratedCase(static_cast<uint64_t>(seed));
    const RunTrace b = RunGeneratedCase(static_cast<uint64_t>(seed));
    ASSERT_EQ(a.receipts.size(), b.receipts.size());
    for (size_t i = 0; i < a.receipts.size(); ++i) {
      EXPECT_TRUE(SameReceipt(a.receipts[i], b.receipts[i])) << "receipt " << i;
    }
    EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
    EXPECT_EQ(a.fault_clock_seconds, b.fault_clock_seconds);
    EXPECT_EQ(a.stats.ToString(), b.stats.ToString());
  }
}

// --- End-to-end: the adaptive loop under generated fault schedules -------

struct EndToEndFixture {
  std::unique_ptr<Application> app;
  IccProfile profile;
  ConfigurationRecord config;
  OnlineMeasurementOptions options;
  std::vector<OnlinePhase> workload;
};

EndToEndFixture MakeFixture() {
  EndToEndFixture fx;
  fx.app = MakeOctarine();
  std::vector<Descriptor> table;
  Result<IccProfile> profile = ProfileScenarios(
      *fx.app, {"o_oldwp0", "o_oldwp3"}, ClassifierKind::kInternalFunctionCalledBy,
      kCompleteStackWalk, 17, &table);
  EXPECT_TRUE(profile.ok());
  fx.profile = *profile;

  const NetworkModel network = NetworkModel::TenBaseT();
  const NetworkProfile fitted = FitNetwork(network);
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(fx.profile, fitted);
  EXPECT_TRUE(analysis.ok());

  fx.config.mode = RuntimeMode::kDistributed;
  fx.config.classifier_table = table;
  fx.config.distribution = analysis->distribution;

  fx.options.network = network;
  fx.options.fitted = fitted;
  fx.options.adaptive = true;
  fx.options.retry = SuggestedRetryPolicy(network);
  fx.workload = CyclicWorkload({"o_oldwp3", "o_mixed9"}, /*repetitions=*/1,
                               /*cycles=*/2);
  return fx;
}

TEST(FaultPropertyTest, AdaptiveRunSurvivesGeneratedSchedules) {
  EndToEndFixture fx = MakeFixture();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    Rng gen(seed * 31);
    RandomFaultOptions schedule_options = testing::GenFaultOptions(gen);
    // Keep the horizon inside the run so episodes actually overlap traffic.
    schedule_options.horizon_seconds = 2.0;
    const FaultSchedule schedule = FaultSchedule::Random(schedule_options, seed);
    FaultRates background;
    background.drop = 0.02;

    FaultInjector injector(schedule, background, seed);
    OnlineMeasurementOptions options = fx.options;
    options.faults = &injector;
    Result<OnlineRunResult> run =
        MeasureOnlineRun(*fx.app, fx.workload, fx.config, fx.profile, options);
    // No lost placements: every call in every epoch found its instance and
    // completed; a lost placement surfaces as a failed run.
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run->online.epochs, fx.workload.size());
    // Time only accumulates.
    EXPECT_GT(run->run.execution_seconds, 0.0);
    EXPECT_GE(run->run.communication_seconds, 0.0);
    EXPECT_GE(run->run.execution_seconds, run->run.communication_seconds);
  }
}

TEST(FaultPropertyTest, AdaptiveRunReplaysIdenticallyPerSeed) {
  EndToEndFixture fx = MakeFixture();
  RandomFaultOptions schedule_options;
  schedule_options.horizon_seconds = 2.0;
  const FaultSchedule schedule = FaultSchedule::Random(schedule_options, 5);
  FaultRates background;
  background.drop = 0.02;

  auto run_once = [&]() {
    FaultInjector injector(schedule, background, 77);
    OnlineMeasurementOptions options = fx.options;
    options.faults = &injector;
    Result<OnlineRunResult> run =
        MeasureOnlineRun(*fx.app, fx.workload, fx.config, fx.profile, options);
    EXPECT_TRUE(run.ok());
    return run.ok() ? *run : OnlineRunResult{};
  };
  const OnlineRunResult a = run_once();
  const OnlineRunResult b = run_once();
  EXPECT_EQ(a.run.execution_seconds, b.run.execution_seconds);
  EXPECT_EQ(a.run.communication_seconds, b.run.communication_seconds);
  EXPECT_EQ(a.run.remote_calls, b.run.remote_calls);
  EXPECT_EQ(a.run.remote_bytes, b.run.remote_bytes);
  EXPECT_EQ(a.online.ToString(), b.online.ToString());
}

}  // namespace
}  // namespace coign
