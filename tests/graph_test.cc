#include <gtest/gtest.h>

#include "src/com/class_registry.h"
#include "src/graph/concrete_graph.h"
#include "src/graph/constraints.h"
#include "src/graph/distribution.h"
#include "src/graph/icc_graph.h"

namespace coign {
namespace {

CallKey MakeKey(ClassificationId src, ClassificationId dst, MethodIndex method = 0) {
  CallKey key;
  key.src = src;
  key.dst = dst;
  key.iid = Guid::FromName("iid:IGraphTest");
  key.method = method;
  return key;
}

void AddClassification(IccProfile* profile, ClassificationId id, const std::string& name,
                       uint32_t api = kApiNone, uint64_t instances = 1) {
  ClassificationInfo info;
  info.id = id;
  info.clsid = Guid::FromName("clsid:" + name);
  info.class_name = name;
  info.api_usage = api;
  info.instance_count = instances;
  profile->RecordClassification(info);
}

TEST(DistributionTest, PlacementLookupAndCounts) {
  Distribution d;
  d.placement[0] = kClientMachine;
  d.placement[1] = kServerMachine;
  d.placement[2] = kServerMachine;
  EXPECT_EQ(d.MachineFor(1), kServerMachine);
  EXPECT_EQ(d.MachineFor(42), kClientMachine);  // Default.
  EXPECT_EQ(d.CountOn(kServerMachine), 2u);
  EXPECT_EQ(d.CountOn(kClientMachine), 1u);
  EXPECT_NE(d.ToString().find("2 on server"), std::string::npos);

  const Distribution all_server = EverythingOn(kServerMachine);
  EXPECT_EQ(all_server.MachineFor(7), kServerMachine);
}

TEST(AbstractIccGraphTest, MergesDirectionsAndMethodsPerPair) {
  IccProfile profile;
  AddClassification(&profile, 0, "A");
  AddClassification(&profile, 1, "B");
  profile.RecordCall(MakeKey(0, 1, 0), 100, 10, true);
  profile.RecordCall(MakeKey(1, 0, 2), 50, 5, true);   // Reverse direction.
  profile.RecordCall(MakeKey(0, 1, 3), 25, 25, false);  // Another method.
  profile.RecordCall(MakeKey(1, 1, 0), 9, 9, true);     // Intra: dropped.

  const AbstractIccGraph graph = AbstractIccGraph::FromProfile(profile);
  EXPECT_EQ(graph.edge_count(), 1u);
  const auto& edge = graph.edges().begin()->second;
  EXPECT_EQ(edge.calls, 3u);
  // Each call contributes request + reply messages.
  EXPECT_EQ(edge.messages.total_count(), 6u);
  EXPECT_EQ(edge.messages.total_bytes(), 100u + 10 + 50 + 5 + 25 + 25);
  EXPECT_EQ(edge.non_remotable_calls, 1u);
  EXPECT_TRUE(edge.MustColocate());
}

TEST(AbstractIccGraphTest, DriverPairUsesNoClassification) {
  IccProfile profile;
  AddClassification(&profile, 0, "A");
  profile.RecordCall(MakeKey(kNoClassification, 0), 10, 10, true);
  const AbstractIccGraph graph = AbstractIccGraph::FromProfile(profile);
  ASSERT_EQ(graph.SortedPairs().size(), 1u);
  EXPECT_EQ(graph.SortedPairs()[0].a, 0u);
  EXPECT_EQ(graph.SortedPairs()[0].b, kNoClassification);
}

TEST(ConstraintsTest, FromProfileDerivesApiPins) {
  IccProfile profile;
  AddClassification(&profile, 0, "Gui", kApiGui);
  AddClassification(&profile, 1, "Store", kApiStorage);
  AddClassification(&profile, 2, "Free", kApiNone);
  AddClassification(&profile, 3, "Db", kApiOdbc | kApiStorage);
  const LocationConstraints constraints = LocationConstraints::FromProfile(profile);
  ASSERT_NE(constraints.PinOf(0), nullptr);
  EXPECT_EQ(*constraints.PinOf(0), kClientMachine);
  ASSERT_NE(constraints.PinOf(1), nullptr);
  EXPECT_EQ(*constraints.PinOf(1), kServerMachine);
  EXPECT_EQ(constraints.PinOf(2), nullptr);
  EXPECT_EQ(*constraints.PinOf(3), kServerMachine);
}

TEST(ConstraintsTest, ExplicitConstraintsAccumulate) {
  LocationConstraints constraints;
  constraints.PinAbsolute(5, kServerMachine);
  constraints.Colocate(1, 2);
  EXPECT_EQ(*constraints.PinOf(5), kServerMachine);
  ASSERT_EQ(constraints.colocated().size(), 1u);
  EXPECT_EQ(constraints.colocated()[0], (std::pair<ClassificationId, ClassificationId>{1, 2}));
}

TEST(EdgeSecondsTest, AffineInCountAndBytes) {
  AbstractIccGraph::Edge edge;
  edge.messages.Add(100);
  edge.messages.Add(100);
  NetworkProfile network;
  network.per_message_seconds = 1e-3;
  network.seconds_per_byte = 1e-6;
  EXPECT_NEAR(EdgeSeconds(edge, network), 2 * 1e-3 + 200 * 1e-6, 1e-12);
}

TEST(ConcreteGraphTest, BuildWiresTerminalsClassificationsAndConstraints) {
  IccProfile profile;
  AddClassification(&profile, 0, "Gui", kApiGui, 3);
  AddClassification(&profile, 1, "Store", kApiStorage, 1);
  AddClassification(&profile, 2, "Free", kApiNone, 5);
  profile.RecordCall(MakeKey(kNoClassification, 2), 500, 100, true);  // Driver <-> Free.
  profile.RecordCall(MakeKey(2, 1), 200, 1000, true);                  // Free <-> Store.
  profile.RecordCall(MakeKey(2, 0), 10, 10, false);                    // Non-remotable.

  const AbstractIccGraph abstract = AbstractIccGraph::FromProfile(profile);
  const LocationConstraints constraints = LocationConstraints::FromProfile(profile);
  NetworkProfile network;
  network.per_message_seconds = 1e-3;
  network.seconds_per_byte = 1e-6;
  const ConcreteGraph graph = ConcreteGraph::Build(abstract, network, constraints);

  EXPECT_EQ(graph.node_count(), 5);  // 2 terminals + 3 classifications.
  ASSERT_TRUE(graph.IndexOf(0).ok());
  EXPECT_EQ(graph.ClassificationAt(*graph.IndexOf(0)), 0u);
  EXPECT_FALSE(graph.IndexOf(42).ok());

  int constraint_edges = 0;
  int comm_edges = 0;
  for (const ConcreteEdge& edge : graph.edges()) {
    if (edge.constraint) {
      ++constraint_edges;
    } else {
      ++comm_edges;
      EXPECT_GT(edge.seconds, 0.0);
    }
  }
  // Constraints: gui pin, store pin, and the non-remotable pair.
  EXPECT_EQ(constraint_edges, 3);
  EXPECT_EQ(comm_edges, 3);
  EXPECT_GT(graph.TotalCommunicationSeconds(), 0.0);
}

TEST(ConcreteGraphTest, DriverEdgesAttachToClientTerminal) {
  IccProfile profile;
  AddClassification(&profile, 0, "Free");
  profile.RecordCall(MakeKey(kNoClassification, 0), 100, 100, true);
  const AbstractIccGraph abstract = AbstractIccGraph::FromProfile(profile);
  const ConcreteGraph graph =
      ConcreteGraph::Build(abstract, NetworkProfile::Exact(NetworkModel::TenBaseT()),
                           LocationConstraints());
  ASSERT_EQ(graph.edges().size(), 1u);
  const ConcreteEdge& edge = graph.edges()[0];
  EXPECT_TRUE(edge.a == ConcreteGraph::kClientNode || edge.b == ConcreteGraph::kClientNode);
}

}  // namespace
}  // namespace coign
