// Unit tests for the scripted-component framework the synthetic
// applications are built from.

#include "src/apps/component_library.h"

#include <gtest/gtest.h>

namespace coign {
namespace {

class ComponentLibraryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.interfaces()
                    .Register(InterfaceBuilder("ILib")
                                  .Method("Handled")
                                  .Out("ok", ValueKind::kBool)
                                  .Method("Unhandled")
                                  .Build())
                    .ok());
    iid_ = system_.interfaces().LookupByName("ILib")->iid;
    handlers_.Set(iid_, 0, [](ScriptedComponent& self, const Message& in, Message* out) {
      (void)self;
      (void)in;
      out->Add("ok", Value::FromBool(true));
      return Status::Ok();
    });
    ASSERT_TRUE(RegisterScriptedClass(&system_, "Lib", {iid_}, kApiNone, &handlers_).ok());
  }

  ObjectSystem system_;
  HandlerTable handlers_;
  InterfaceId iid_;
};

TEST_F(ComponentLibraryTest, DispatchRoutesToHandler) {
  Result<ObjectRef> ref = CreateByName(system_, "Lib", "ILib");
  ASSERT_TRUE(ref.ok());
  Result<Message> out = CallMethod(system_, *ref, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->Find("ok")->AsBool());
}

TEST_F(ComponentLibraryTest, MissingHandlerIsUnimplemented) {
  Result<ObjectRef> ref = CreateByName(system_, "Lib", "ILib");
  ASSERT_TRUE(ref.ok());
  Result<Message> out = CallMethod(system_, *ref, 1);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnimplemented);
}

TEST_F(ComponentLibraryTest, HandlerTableLookup) {
  EXPECT_NE(handlers_.Find(iid_, 0), nullptr);
  EXPECT_EQ(handlers_.Find(iid_, 1), nullptr);
  EXPECT_EQ(handlers_.Find(Guid::FromName("iid:Other"), 0), nullptr);
}

TEST_F(ComponentLibraryTest, StateAndRefs) {
  Result<ObjectRef> ref = CreateByName(system_, "Lib", "ILib");
  ASSERT_TRUE(ref.ok());
  auto* component = static_cast<ScriptedComponent*>(system_.Resolve(ref->instance));
  ASSERT_NE(component, nullptr);

  EXPECT_EQ(component->GetState("missing"), nullptr);
  EXPECT_EQ(component->GetInt("missing", -1), -1);
  component->SetState("count", Value::FromInt64(42));
  EXPECT_EQ(component->GetInt("count"), 42);
  component->SetState("count32", Value::FromInt32(7));
  EXPECT_EQ(component->GetInt("count32"), 7);
  component->SetState("text", Value::FromString("x"));
  EXPECT_EQ(component->GetInt("text", -9), -9);  // Non-integer: fallback.

  EXPECT_FALSE(component->HasRef("peer"));
  EXPECT_TRUE(component->GetRef("peer").IsNull());
  component->SetRef("peer", *ref);
  EXPECT_TRUE(component->HasRef("peer"));
  EXPECT_EQ(component->GetRef("peer"), *ref);
}

TEST_F(ComponentLibraryTest, RefsWithPrefixAreSortedByKey) {
  Result<ObjectRef> ref = CreateByName(system_, "Lib", "ILib");
  ASSERT_TRUE(ref.ok());
  auto* component = static_cast<ScriptedComponent*>(system_.Resolve(ref->instance));
  component->SetRef("child02", ObjectRef{12, iid_});
  component->SetRef("child00", ObjectRef{10, iid_});
  component->SetRef("child01", ObjectRef{11, iid_});
  component->SetRef("other", ObjectRef{99, iid_});
  const std::vector<ObjectRef> children = component->RefsWithPrefix("child");
  ASSERT_EQ(children.size(), 3u);
  EXPECT_EQ(children[0].instance, 10u);
  EXPECT_EQ(children[1].instance, 11u);
  EXPECT_EQ(children[2].instance, 12u);
}

TEST_F(ComponentLibraryTest, RegisterValidates) {
  // Duplicate class name refused.
  EXPECT_EQ(RegisterScriptedClass(&system_, "Lib", {iid_}, kApiNone, &handlers_).code(),
            StatusCode::kAlreadyExists);
  // Api usage lands in the class desc.
  ASSERT_TRUE(
      RegisterScriptedClass(&system_, "GuiLib", {iid_}, kApiGui, &handlers_).ok());
  EXPECT_EQ(system_.classes().LookupByName("GuiLib")->api_usage, kApiGui);
}

TEST_F(ComponentLibraryTest, CreateByNameErrors) {
  EXPECT_FALSE(CreateByName(system_, "Nope", "ILib").ok());
  EXPECT_FALSE(CreateByName(system_, "Lib", "INope").ok());
}

}  // namespace
}  // namespace coign
