#include <gtest/gtest.h>

#include "src/apps/component_library.h"
#include "src/obs/obs.h"
#include "src/sim/accountant.h"
#include "src/sim/class_placement.h"
#include "src/sim/measurement.h"

namespace coign {
namespace {

enum Method : MethodIndex { kPing = 0 };

class SimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.interfaces()
                    .Register(InterfaceBuilder("IPing")
                                  .Method("Ping")
                                  .In("payload", ValueKind::kBlob)
                                  .Out("echo", ValueKind::kBlob)
                                  .Build())
                    .ok());
    iid_ = system_.interfaces().LookupByName("IPing")->iid;
    handlers_.Set(iid_, kPing, [](ScriptedComponent& self, const Message& in, Message* out) {
      self.system()->ChargeCompute(1e-3);
      out->Add("echo", Value::BlobOfSize(in.Find("payload")->AsBlob().size / 2, 1));
      return Status::Ok();
    });
    ASSERT_TRUE(RegisterScriptedClass(&system_, "Ping", {iid_}, kApiNone, &handlers_).ok());
  }

  ObjectRef MakePing(MachineId machine) {
    Result<ObjectRef> ping = system_.CreateInstanceByName("Ping", "IPing");
    EXPECT_TRUE(ping.ok());
    EXPECT_TRUE(system_.MoveInstance(ping->instance, machine).ok());
    return *ping;
  }

  Status CallPing(const ObjectRef& ping, uint64_t payload) {
    Message in;
    in.Add("payload", Value::BlobOfSize(payload, 7));
    Message out;
    return system_.Call(ping, kPing, in, &out);
  }

  ObjectSystem system_;
  HandlerTable handlers_;
  InterfaceId iid_;
};

TEST_F(SimTest, LocalCallsCostNoCommunication) {
  NetworkAccountant accountant(&system_, Transport(NetworkModel::TenBaseT()));
  const ObjectRef ping = MakePing(kClientMachine);
  ASSERT_TRUE(CallPing(ping, 1000).ok());
  EXPECT_EQ(accountant.remote_calls(), 0u);
  EXPECT_EQ(accountant.communication_seconds(), 0.0);
  EXPECT_GT(accountant.compute_seconds(), 0.0);
  EXPECT_EQ(accountant.total_calls(), 1u);
}

TEST_F(SimTest, RemoteCallsChargedByMarshaledBytes) {
  const NetworkModel model = NetworkModel::TenBaseT();
  NetworkAccountant accountant(&system_, Transport(model));
  const ObjectRef ping = MakePing(kServerMachine);
  ASSERT_TRUE(CallPing(ping, 10000).ok());
  EXPECT_EQ(accountant.remote_calls(), 1u);
  EXPECT_GT(accountant.remote_bytes(), 15000u);  // Request + half-size echo.
  const double expected = Transport(model).ExpectedRoundTripSeconds(
      accountant.remote_bytes(), 0);  // Sum is what matters under affine cost.
  EXPECT_NEAR(accountant.communication_seconds(), expected, 1e-9);
  EXPECT_DOUBLE_EQ(accountant.execution_seconds(),
                   accountant.compute_seconds() + accountant.communication_seconds());
}

TEST_F(SimTest, CleanRunFeedsTransportObservability) {
  // Fault-free model-priced calls take the same ReliableRoundTrip path as
  // hardened ones, so an attached Observability sees live counters and rpc
  // spans even when no fault model exists — a clean online run must not
  // show a dead transport dashboard.
  Observability obs;
  Transport transport(NetworkModel::TenBaseT());
  transport.SetObservability(&obs);
  NetworkAccountant accountant(&system_, transport);
  const ObjectRef ping = MakePing(kServerMachine);
  ASSERT_TRUE(CallPing(ping, 2000).ok());
  ASSERT_TRUE(CallPing(ping, 2000).ok());

  EXPECT_EQ(obs.metrics().GetCounter("transport.calls")->value(), 2u);
  EXPECT_EQ(obs.metrics().GetCounter("transport.attempts")->value(), 2u);
  EXPECT_EQ(obs.metrics().GetCounter("transport.retries")->value(), 0u);
  EXPECT_EQ(obs.metrics().GetCounter("transport.faulted_calls")->value(), 0u);
  EXPECT_EQ(obs.metrics()
                .GetHistogram("transport.rtt_seconds", {})
                ->count(),
            2u);

  // One "rpc" span per round trip, on the transport track.
  int rpc_spans = 0;
  for (const TraceEvent& event : obs.tracer().Snapshot()) {
    if (event.name == "rpc" && event.track == kTrackTransport) {
      ++rpc_spans;
      EXPECT_EQ(event.phase, TraceEvent::Phase::kComplete);
      EXPECT_GT(event.duration_seconds, 0.0);
    }
  }
  EXPECT_EQ(rpc_spans, 2);

  // The health snapshot agrees with the clean receipts: one attempt per
  // call and a latency/payload split that adds back up to the wire time.
  const TransportHealth health = accountant.health();
  EXPECT_EQ(health.calls, 2u);
  EXPECT_EQ(health.attempts, 2u);
  EXPECT_EQ(health.retries, 0u);
  EXPECT_EQ(health.undelivered, 0u);
  EXPECT_NEAR(health.wire_latency_seconds + health.wire_payload_seconds,
              health.wire_seconds, 1e-12);
  EXPECT_DOUBLE_EQ(accountant.communication_seconds(), health.wire_seconds);
}

TEST_F(SimTest, ComputeScalesWithMachinePower) {
  NetworkAccountant accountant(&system_, Transport(NetworkModel::TenBaseT()));
  accountant.SetComputeScale(kServerMachine, 2.0);  // Server twice as fast.
  const ObjectRef client_ping = MakePing(kClientMachine);
  const ObjectRef server_ping = MakePing(kServerMachine);
  ASSERT_TRUE(CallPing(client_ping, 10).ok());
  const double client_compute = accountant.compute_seconds();
  accountant.Reset();
  ASSERT_TRUE(CallPing(server_ping, 10).ok());
  EXPECT_NEAR(accountant.compute_seconds(), client_compute / 2.0, 1e-12);
}

TEST_F(SimTest, JitteredRunsVaryDeterministicRunsDoNot) {
  const ObjectRef ping = MakePing(kServerMachine);
  double deterministic1, deterministic2;
  {
    NetworkAccountant accountant(&system_, Transport(NetworkModel::TenBaseT()));
    ASSERT_TRUE(CallPing(ping, 5000).ok());
    deterministic1 = accountant.communication_seconds();
  }
  {
    NetworkAccountant accountant(&system_, Transport(NetworkModel::TenBaseT()));
    ASSERT_TRUE(CallPing(ping, 5000).ok());
    deterministic2 = accountant.communication_seconds();
  }
  EXPECT_DOUBLE_EQ(deterministic1, deterministic2);

  Rng rng(5);
  NetworkAccountant jittered(&system_, Transport(NetworkModel::TenBaseT()), &rng);
  ASSERT_TRUE(CallPing(ping, 5000).ok());
  EXPECT_NE(jittered.communication_seconds(), deterministic1);
  EXPECT_NEAR(jittered.communication_seconds(), deterministic1, deterministic1 * 0.5);
}

TEST_F(SimTest, ClassPlacementPolicyPlacesByClass) {
  ClassPlacement placement(kClientMachine);
  placement.Place(Guid::FromName("clsid:Ping"), kServerMachine);
  system_.SetPlacementPolicy(placement.AsPolicy());
  Result<ObjectRef> ping = system_.CreateInstanceByName("Ping", "IPing");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(*system_.MachineOf(ping->instance), kServerMachine);
  EXPECT_EQ(placement.MachineFor(Guid::FromName("clsid:Other")), kClientMachine);
  EXPECT_FALSE(placement.empty());
}

TEST_F(SimTest, MeasureRunReportsAndCleansUp) {
  MeasurementOptions options;
  options.network = NetworkModel::TenBaseT();
  Result<RunMeasurement> run = MeasureRun(
      system_,
      [this](ObjectSystem& sys) -> Status {
        (void)sys;
        const ObjectRef ping = MakePing(kServerMachine);
        return CallPing(ping, 2000);
      },
      options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->total_calls, 1u);
  EXPECT_EQ(run->remote_calls, 1u);
  EXPECT_GT(run->communication_seconds, 0.0);
  EXPECT_NEAR(run->execution_seconds, run->communication_seconds + run->compute_seconds,
              1e-12);
  EXPECT_EQ(system_.live_instance_count(), 0u);  // DestroyAll happened.
}

TEST_F(SimTest, MeasureRunPropagatesScenarioFailure) {
  MeasurementOptions options;
  options.network = NetworkModel::TenBaseT();
  Result<RunMeasurement> run = MeasureRun(
      system_, [](ObjectSystem&) { return InternalError("scripted failure"); }, options);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_EQ(system_.live_instance_count(), 0u);  // Cleanup on failure too.
}

TEST_F(SimTest, FasterNetworksCostLess) {
  const ObjectRef ping = MakePing(kServerMachine);
  double slow, fast;
  {
    NetworkAccountant accountant(&system_, Transport(NetworkModel::Isdn()));
    ASSERT_TRUE(CallPing(ping, 30000).ok());
    slow = accountant.communication_seconds();
  }
  {
    NetworkAccountant accountant(&system_, Transport(NetworkModel::San()));
    ASSERT_TRUE(CallPing(ping, 30000).ok());
    fast = accountant.communication_seconds();
  }
  EXPECT_GT(slow, fast * 50);
}

}  // namespace
}  // namespace coign
