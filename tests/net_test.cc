#include <gtest/gtest.h>

#include <string>

#include "src/net/envelope.h"
#include "src/net/network_model.h"
#include "src/net/network_profiler.h"
#include "src/net/transport.h"
#include "src/support/crc32c.h"

namespace coign {
namespace {

TEST(Crc32cTest, MatchesKnownVectors) {
  // RFC 3720 test vectors for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
}

TEST(Crc32cTest, ExtendComposesWithConcatenation) {
  const std::string a = "plan-cache";
  const std::string b = " v4 record body";
  EXPECT_EQ(Crc32cExtend(Crc32c(a), b.data(), b.size()), Crc32c(a + b));
}

TEST(EnvelopeTest, RoundTripsPayload) {
  const std::string payload = "remote call payload";
  const std::string framed = FrameEnvelope(payload);
  EXPECT_EQ(framed.size(), payload.size() + kEnvelopeHeaderBytes);
  Result<std::string> opened = OpenEnvelope(framed);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(*opened, payload);
}

TEST(EnvelopeTest, RejectsTruncationBadMagicAndShortInput) {
  const std::string framed = FrameEnvelope("payload");
  EXPECT_FALSE(OpenEnvelope(framed.substr(0, framed.size() - 1)).ok());
  EXPECT_FALSE(OpenEnvelope(framed.substr(0, kEnvelopeHeaderBytes - 1)).ok());
  std::string bad_magic = framed;
  bad_magic[0] = 'X';
  EXPECT_FALSE(OpenEnvelope(bad_magic).ok());
  std::string bad_length = framed;
  bad_length[4] = static_cast<char>(bad_length[4] + 1);
  EXPECT_FALSE(OpenEnvelope(bad_length).ok());
}

TEST(EnvelopeTest, EverySingleBitFlipIsRejected) {
  // CRC32C detects all single-bit errors; walk every bit of a framed
  // message (header included) and demand a rejection for each.
  const std::string framed = FrameEnvelope("sixteen byte msg");
  for (size_t bit = 0; bit < framed.size() * 8; ++bit) {
    std::string damaged = framed;
    damaged[bit / 8] = static_cast<char>(damaged[bit / 8] ^ (1u << (bit % 8)));
    EXPECT_FALSE(OpenEnvelope(damaged).ok()) << "bit " << bit;
  }
}

TEST(EnvelopeTest, ModeledBitFlipIsAlwaysCaught) {
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(EnvelopeCatchesBitFlip(1 + 97 * i, i / 64.0));
  }
  EXPECT_TRUE(EnvelopeCatchesBitFlip(0, 0.0));       // Header-only frame.
  EXPECT_TRUE(EnvelopeCatchesBitFlip(1 << 20, 0.999));  // Cap path.
}

TEST(NetworkModelTest, ExpectedMessageTimeIsAffine) {
  NetworkModel model;
  model.per_message_seconds = 1e-3;
  model.bytes_per_second = 1e6;
  EXPECT_DOUBLE_EQ(model.ExpectedMessageSeconds(0), 1e-3);
  EXPECT_DOUBLE_EQ(model.ExpectedMessageSeconds(1000000), 1e-3 + 1.0);
}

TEST(NetworkModelTest, PresetsAreOrderedByBandwidth) {
  EXPECT_LT(NetworkModel::Isdn().bytes_per_second, NetworkModel::TenBaseT().bytes_per_second);
  EXPECT_LT(NetworkModel::TenBaseT().bytes_per_second,
            NetworkModel::HundredBaseT().bytes_per_second);
  EXPECT_LT(NetworkModel::HundredBaseT().bytes_per_second,
            NetworkModel::San().bytes_per_second);
  // Latency ordering is the reverse.
  EXPECT_GT(NetworkModel::Isdn().per_message_seconds,
            NetworkModel::TenBaseT().per_message_seconds);
  EXPECT_GT(NetworkModel::TenBaseT().per_message_seconds,
            NetworkModel::San().per_message_seconds);
}

TEST(TransportTest, RoundTripSumsBothDirections) {
  Transport transport(NetworkModel::TenBaseT());
  const NetworkModel& m = transport.model();
  EXPECT_DOUBLE_EQ(transport.ExpectedRoundTripSeconds(100, 200),
                   m.ExpectedMessageSeconds(100) + m.ExpectedMessageSeconds(200));
}

TEST(TransportTest, SampledTimesCenterOnExpectation) {
  Transport transport(NetworkModel::TenBaseT());
  Rng rng(77);
  const double expected = transport.ExpectedRoundTripSeconds(4096, 4096);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double sample = transport.SampleRoundTripSeconds(4096, 4096, rng);
    EXPECT_GT(sample, 0.0);
    sum += sample;
  }
  EXPECT_NEAR(sum / n, expected, expected * 0.01);
}

TEST(TransportTest, ZeroJitterIsDeterministic) {
  NetworkModel model = NetworkModel::TenBaseT();
  model.jitter_fraction = 0.0;
  Transport transport(model);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(transport.SampleRoundTripSeconds(100, 100, rng),
                   transport.ExpectedRoundTripSeconds(100, 100));
}

TEST(TransportTest, ClockAccumulates) {
  Transport transport(NetworkModel::TenBaseT());
  transport.Charge(0.5);
  transport.Charge(0.25);
  EXPECT_DOUBLE_EQ(transport.elapsed_seconds(), 0.75);
  transport.ResetClock();
  EXPECT_EQ(transport.elapsed_seconds(), 0.0);
}

TEST(NetworkProfileTest, ExactProfileMatchesModel) {
  const NetworkModel model = NetworkModel::TenBaseT();
  const NetworkProfile profile = NetworkProfile::Exact(model);
  EXPECT_DOUBLE_EQ(profile.MessageSeconds(0), model.per_message_seconds);
  EXPECT_NEAR(profile.MessageSeconds(1e6), model.ExpectedMessageSeconds(1000000), 1e-12);
  EXPECT_DOUBLE_EQ(profile.CallSeconds(100, 200),
                   profile.MessageSeconds(100) + profile.MessageSeconds(200));
}

// Statistical sampling recovers the true model parameters within a few
// percent, despite jitter — the property Coign's predictions depend on.
class NetworkProfilerParamTest
    : public ::testing::TestWithParam<std::pair<const char*, NetworkModel>> {};

TEST_P(NetworkProfilerParamTest, FitRecoversModelParameters) {
  const NetworkModel& model = GetParam().second;
  Transport transport(model);
  Rng rng(2024);
  NetworkProfiler profiler;
  const NetworkProfile profile = profiler.Profile(transport, rng);
  EXPECT_EQ(profile.network_name, model.name);
  EXPECT_GT(profile.sample_count, 0u);
  EXPECT_NEAR(profile.per_message_seconds, model.per_message_seconds,
              model.per_message_seconds * 0.25);
  EXPECT_NEAR(profile.seconds_per_byte, 1.0 / model.bytes_per_second,
              0.05 / model.bytes_per_second);
  EXPECT_GT(profile.fit_r_squared, 0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Presets, NetworkProfilerParamTest,
    ::testing::Values(std::pair{"10bt", NetworkModel::TenBaseT()},
                      std::pair{"100bt", NetworkModel::HundredBaseT()},
                      std::pair{"isdn", NetworkModel::Isdn()},
                      std::pair{"atm", NetworkModel::Atm155()},
                      std::pair{"san", NetworkModel::San()}),
    [](const auto& info) { return info.param.first; });

}  // namespace
}  // namespace coign
