// Regression locks on the classifier-evaluation shapes of Tables 2 and 3
// (the full tables come from bench_table2_classifiers /
// bench_table3_stack_depth; these tests pin the orderings the paper's
// conclusions rest on).

#include <gtest/gtest.h>

#include "bench/harness.h"

namespace coign {
namespace {

ClassifierAccuracyRow Evaluate(ClassifierKind kind, int depth = kCompleteStackWalk) {
  Result<ClassifierAccuracyRow> row = EvaluateOctarineClassifier(kind, depth);
  EXPECT_TRUE(row.ok()) << row.status().ToString();
  return *row;
}

TEST(Table2ShapeTest, CallChainClassifiersRecognizeEverything) {
  for (ClassifierKind kind :
       {ClassifierKind::kProcedureCalledBy, ClassifierKind::kStaticType,
        ClassifierKind::kStaticTypeCalledBy, ClassifierKind::kInternalFunctionCalledBy,
        ClassifierKind::kEntryPointCalledBy, ClassifierKind::kInstantiatedBy}) {
    EXPECT_EQ(Evaluate(kind).new_classifications, 0u) << ClassifierKindName(kind);
  }
}

TEST(Table2ShapeTest, IncrementalStrawManFails) {
  const ClassifierAccuracyRow incremental = Evaluate(ClassifierKind::kIncremental);
  const ClassifierAccuracyRow ifcb =
      Evaluate(ClassifierKind::kInternalFunctionCalledBy);
  // The straw man invents classifications in bigone and correlates far
  // worse than the contextual classifiers.
  EXPECT_GT(incremental.new_classifications, 50u);
  EXPECT_LT(incremental.avg_correlation, ifcb.avg_correlation - 0.3);
}

TEST(Table2ShapeTest, StaticTypeLumpsInstances) {
  const ClassifierAccuracyRow st = Evaluate(ClassifierKind::kStaticType);
  const ClassifierAccuracyRow ifcb =
      Evaluate(ClassifierKind::kInternalFunctionCalledBy);
  // Paper: 45.6 instances/classification for ST vs 2.6 for IFCB.
  EXPECT_GT(st.avg_instances_per_classification, 30.0);
  EXPECT_LT(ifcb.avg_instances_per_classification,
            st.avg_instances_per_classification / 4.0);
  // And IFCB preserves far more distribution granularity.
  EXPECT_GT(ifcb.profiled_classifications, st.profiled_classifications * 4);
}

TEST(Table2ShapeTest, IfcbFinestEpcbJustBelow) {
  const ClassifierAccuracyRow ifcb =
      Evaluate(ClassifierKind::kInternalFunctionCalledBy);
  const ClassifierAccuracyRow epcb = Evaluate(ClassifierKind::kEntryPointCalledBy);
  const ClassifierAccuracyRow stcb = Evaluate(ClassifierKind::kStaticTypeCalledBy);
  EXPECT_GE(ifcb.profiled_classifications, epcb.profiled_classifications);
  EXPECT_GT(epcb.profiled_classifications, stcb.profiled_classifications);
}

TEST(Table3ShapeTest, AccuracyMonotoneInDepthAndSaturates) {
  const ClassifierAccuracyRow d1 =
      Evaluate(ClassifierKind::kInternalFunctionCalledBy, 1);
  const ClassifierAccuracyRow d2 =
      Evaluate(ClassifierKind::kInternalFunctionCalledBy, 2);
  const ClassifierAccuracyRow d4 =
      Evaluate(ClassifierKind::kInternalFunctionCalledBy, 4);
  const ClassifierAccuracyRow complete =
      Evaluate(ClassifierKind::kInternalFunctionCalledBy, kCompleteStackWalk);
  // Classifications grow with depth...
  EXPECT_LT(d1.profiled_classifications, d2.profiled_classifications);
  EXPECT_LE(d2.profiled_classifications, d4.profiled_classifications);
  EXPECT_LE(d4.profiled_classifications, complete.profiled_classifications);
  // ...and so does correlation, saturating at full depth.
  EXPECT_LT(d1.avg_correlation, d2.avg_correlation);
  EXPECT_NEAR(d4.avg_correlation, complete.avg_correlation, 1e-6);
}

}  // namespace
}  // namespace coign
