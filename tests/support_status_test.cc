#include "src/support/status.h"

#include <gtest/gtest.h>

namespace coign {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgumentError("bad size");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad size");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad size");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("gone");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(*result);
  EXPECT_EQ(*owned, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result = std::string("coign");
  EXPECT_EQ(result->size(), 5u);
}

Status FailsThenPropagates() {
  COIGN_RETURN_IF_ERROR(OutOfRangeError("deep failure"));
  return InternalError("unreachable");
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  const Status status = FailsThenPropagates();
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(status.message(), "deep failure");
}

}  // namespace
}  // namespace coign
