// Property tests for crash-consistent live migration: across 200+ seeded
// fault schedules and arbitrary crash interruption points, the journaled
// two-phase migrator plus crash recovery must keep every classified
// instance resident on exactly one machine — the machine the journal's
// last word for it names. Never double-resident, never lost, and a
// fault-free resume always finishes the job.
//
// Violations shrink along the schedule-episode axis (reusing the
// fault_generators shrinking harness; episode shrinking is heuristic, so
// candidates are re-verified) and print a minimal repro. A deliberately
// planted violation — a residency flip behind the journal's back, the
// exact bug the non-journaled migrator had — proves the checker and the
// shrinker actually fire.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/apps/component_library.h"
#include "src/com/object_system.h"
#include "src/fault/injector.h"
#include "src/graph/distribution.h"
#include "src/net/transport.h"
#include "src/online/migration_journal.h"
#include "src/online/migrator.h"
#include "src/support/rng.h"
#include "src/support/str_util.h"
#include "tests/fault_generators.h"

namespace coign {
namespace {

using testing::GenBackground;
using testing::GenFaultOptions;
using testing::GenRetryPolicy;
using testing::SmallestFailingPrefix;

// Instances cycle through three classifications; the resolver is pure so
// every run of a case sees identical move sets.
ClassificationId ClassOf(InstanceId id) {
  return static_cast<ClassificationId>(1 + (id % 3));
}

// A minimal live system: `count` scripted Echo instances, all born on the
// client machine (the fixture idiom of online_repartition_test.cc).
class EchoFixture {
 public:
  explicit EchoFixture(int count) {
    Status registered = system_.interfaces().Register(InterfaceBuilder("IEcho")
                                                          .Method("Echo")
                                                          .In("x", ValueKind::kInt32)
                                                          .Out("x", ValueKind::kInt32)
                                                          .Build());
    EXPECT_TRUE(registered.ok());
    const InterfaceId iid = system_.interfaces().LookupByName("IEcho")->iid;
    handlers_.Set(iid, 0, [](ScriptedComponent& self, const Message& in, Message* out) {
      (void)self;
      out->Add("x", Value::FromInt32(in.Find("x")->AsInt32()));
      return Status::Ok();
    });
    EXPECT_TRUE(RegisterScriptedClass(&system_, "Echo", {iid}, kApiNone, &handlers_).ok());
    for (int i = 0; i < count; ++i) {
      EXPECT_TRUE(system_.CreateInstanceByName("Echo", "IEcho").ok());
    }
  }

  ObjectSystem& system() { return system_; }

 private:
  ObjectSystem system_;
  HandlerTable handlers_;
};

// One generated migration-under-crash case, fully determined by (seed,
// episode_limit). episode_limit < 0 keeps the whole generated schedule;
// smaller values truncate it (the shrink axis).
struct MigrationCase {
  uint64_t seed = 0;
  int episode_limit = -1;
  // Test hook: after recovery, flip one instance's residency behind the
  // journal's back — the planted violation the checker must catch.
  bool plant_violation = false;
};

struct CaseOutcome {
  std::string violation;       // Empty = every invariant held.
  std::string journal_text;    // Serialized journal (replay comparisons).
  MachineId final_machine_of_first = kClientMachine;
  uint64_t wasted_bytes = 0;
  uint64_t duplicates_suppressed = 0;
  bool interrupted = false;
};

// Expected home of an instance after Migrate + Recover: the journal's
// last word, or the birth machine if it was never journaled.
MachineId ExpectedHome(const MigrationJournal& journal, InstanceId id) {
  const MigrationRecord* last = journal.LastFor(id);
  if (last == nullptr) {
    return kClientMachine;
  }
  return last->phase == MigrationPhase::kCommitted ? last->to : last->from;
}

CaseOutcome RunMigrationCase(const MigrationCase& c) {
  CaseOutcome outcome;
  Rng rng(c.seed * 0x9e3779b97f4a7c15ull + 1);

  // Generated environment: schedule (Gilbert-Elliott, asymmetric episodes,
  // partitions, crashes included by default), background loss, retries.
  RandomFaultOptions fault_options = GenFaultOptions(rng);
  FaultSchedule schedule = FaultSchedule::Random(fault_options, c.seed);
  if (c.episode_limit >= 0 &&
      c.episode_limit < static_cast<int>(schedule.episodes().size())) {
    std::vector<FaultEpisode> kept(schedule.episodes().begin(),
                                   schedule.episodes().begin() + c.episode_limit);
    schedule = FaultSchedule::FromEpisodes(std::move(kept));
  }
  const FaultRates background = GenBackground(rng);
  const NetworkModel model = NetworkModel::TenBaseT();
  RetryPolicy retry = GenRetryPolicy(rng, model);

  const int instance_count = static_cast<int>(rng.UniformInt(4, 10));
  Distribution target;
  for (ClassificationId cls = 1; cls <= 3; ++cls) {
    target.placement[cls] = rng.Bernoulli(0.6) ? kServerMachine : kClientMachine;
  }
  // The crash lands before an arbitrary protocol step (up to 4 gate
  // consultations per moved instance; larger = no crash at all).
  const int gate_step = static_cast<int>(rng.UniformInt(0, 4 * instance_count + 2));

  EchoFixture fixture(instance_count);
  ObjectSystem& system = fixture.system();

  FaultInjector injector(schedule, background, c.seed ^ 0x5bd1e995ull);
  Transport transport(model);
  transport.AttachFaults(&injector);
  transport.SetRetryPolicy(retry);

  MigrationOptions options;
  options.state_bytes_per_instance = 2048;
  options.copy_attempts_per_instance = 2;
  LiveMigrator migrator(options, ClassOf);
  int steps = 0;
  bool fired = false;
  migrator.SetCrashGate([&]() {
    if (!fired && steps++ == gate_step) {
      fired = true;
      return true;
    }
    return false;
  });

  MigrationJournal journal;
  Result<MigrationReport> report =
      migrator.Migrate(system, target, journal, transport, nullptr);
  if (!report.ok()) {
    outcome.violation = "migrate error: " + report.status().ToString();
    return outcome;
  }
  outcome.interrupted = report->interrupted;
  outcome.wasted_bytes = report->wasted_bytes;
  outcome.duplicates_suppressed = report->duplicates_suppressed;
  outcome.journal_text = journal.Serialize();

  // Crash recovery from the journal, as a restarted coordinator would.
  Result<RecoveryReport> recovered = LiveMigrator::Recover(system, journal);
  if (!recovered.ok()) {
    outcome.violation = "recover error: " + recovered.status().ToString();
    return outcome;
  }
  outcome.wasted_bytes += recovered->wasted_bytes;

  if (c.plant_violation && !system.LiveInstances().empty()) {
    // The legacy bug, reintroduced deliberately: flip residency with no
    // journal record backing it.
    const ObjectSystem::InstanceInfo first = system.LiveInstances().front();
    const MachineId wrong =
        ExpectedHome(journal, first.id) == kClientMachine ? kServerMachine
                                                          : kClientMachine;
    (void)system.MoveInstance(first.id, wrong);
  }

  // Invariant 1: every instance sits on exactly the machine the journal's
  // last word names — committed => destination, anything else => source.
  for (const ObjectSystem::InstanceInfo& info : system.LiveInstances()) {
    if (info.machine != kClientMachine && info.machine != kServerMachine) {
      outcome.violation = StrFormat("instance %llu on invalid machine %d",
                                    static_cast<unsigned long long>(info.id),
                                    info.machine);
      return outcome;
    }
    const MachineId expected = ExpectedHome(journal, info.id);
    if (info.machine != expected) {
      const MigrationRecord* last = journal.LastFor(info.id);
      outcome.violation = StrFormat(
          "instance %llu resident on m%d but journal says m%d (last record: %s)",
          static_cast<unsigned long long>(info.id), info.machine, expected,
          last != nullptr ? last->ToString().c_str() : "none");
      return outcome;
    }
  }

  // Invariant 2: recovery is idempotent — a second crash-restart replaying
  // the same journal must not move anything.
  Result<RecoveryReport> again = LiveMigrator::Recover(system, journal);
  if (!again.ok()) {
    outcome.violation = "second recover error: " + again.status().ToString();
    return outcome;
  }
  for (const ObjectSystem::InstanceInfo& info : system.LiveInstances()) {
    if (info.machine != ExpectedHome(journal, info.id)) {
      outcome.violation = StrFormat("recover not idempotent for instance %llu",
                                    static_cast<unsigned long long>(info.id));
      return outcome;
    }
  }

  // Invariant 3: a fault-free resume finishes the job — every classified
  // instance ends at its target machine, none lost along the way.
  Transport clean(model);
  MigrationJournal resume_journal;
  LiveMigrator resume(options, ClassOf);
  Result<MigrationReport> finished =
      resume.Migrate(system, target, resume_journal, clean, nullptr);
  if (!finished.ok()) {
    outcome.violation = "fault-free resume error: " + finished.status().ToString();
    return outcome;
  }
  if (!finished->complete) {
    outcome.violation = "fault-free resume did not complete";
    return outcome;
  }
  for (const ObjectSystem::InstanceInfo& info : system.LiveInstances()) {
    const MachineId want = target.MachineFor(ClassOf(info.id));
    if (info.machine != want) {
      outcome.violation = StrFormat(
          "after fault-free resume instance %llu on m%d, target says m%d",
          static_cast<unsigned long long>(info.id), info.machine, want);
      return outcome;
    }
  }

  if (!system.LiveInstances().empty()) {
    outcome.final_machine_of_first = system.LiveInstances().front().machine;
  }
  return outcome;
}

// Shrinks a failing case along the episode axis and renders the minimal
// repro. Episode shrinking is heuristic (dropping later episodes changes
// what the survivors meet), so the candidate is re-verified and the full
// schedule kept if the truncation no longer fails.
std::string MinimalReproReport(const MigrationCase& failing) {
  Rng rng(failing.seed * 0x9e3779b97f4a7c15ull + 1);
  const FaultSchedule schedule =
      FaultSchedule::Random(GenFaultOptions(rng), failing.seed);
  const int episode_count = static_cast<int>(schedule.episodes().size());

  MigrationCase candidate = failing;
  if (episode_count > 0) {
    const int least = SmallestFailingPrefix(episode_count, [&](int n) {
      MigrationCase probe = failing;
      probe.episode_limit = n;
      return !RunMigrationCase(probe).violation.empty();
    });
    MigrationCase probe = failing;
    probe.episode_limit = least;
    if (!RunMigrationCase(probe).violation.empty()) {
      candidate = probe;
    }
  }

  const CaseOutcome outcome = RunMigrationCase(candidate);
  std::string report = StrFormat(
      "minimal repro: seed=%llu episodes=%d (of %d)\n  violation: %s\n",
      static_cast<unsigned long long>(candidate.seed),
      candidate.episode_limit < 0 ? episode_count : candidate.episode_limit,
      episode_count, outcome.violation.c_str());
  report += "  journal:\n";
  for (const std::string& line : {outcome.journal_text}) {
    report += "    " + line;
  }
  return report;
}

// --- The property: 210 seeded schedules, arbitrary interruption ------------

TEST(MigrationPropertyTest, ResidencyInvariantHoldsAcrossSeededCrashSchedules) {
  const int kSchedules = 210;
  int interrupted_cases = 0;
  uint64_t total_dedup = 0;
  for (uint64_t seed = 1; seed <= kSchedules; ++seed) {
    MigrationCase c;
    c.seed = seed;
    const CaseOutcome outcome = RunMigrationCase(c);
    if (!outcome.violation.empty()) {
      const std::string repro = MinimalReproReport(c);
      std::fprintf(stderr, "%s\n", repro.c_str());
      FAIL() << "seed " << seed << ": " << outcome.violation << "\n" << repro;
    }
    interrupted_cases += outcome.interrupted ? 1 : 0;
    total_dedup += outcome.duplicates_suppressed;
  }
  // The population must actually exercise the crash path, not skate by on
  // uninterrupted runs.
  EXPECT_GT(interrupted_cases, kSchedules / 10);
  // And the copy phase must have deduplicated at least some retries.
  EXPECT_GT(total_dedup, 0u);
}

TEST(MigrationPropertyTest, CasesReplayBitForBitPerSeed) {
  for (uint64_t seed : {3ull, 17ull, 101ull}) {
    MigrationCase c;
    c.seed = seed;
    const CaseOutcome a = RunMigrationCase(c);
    const CaseOutcome b = RunMigrationCase(c);
    EXPECT_EQ(a.journal_text, b.journal_text) << "seed " << seed;
    EXPECT_EQ(a.wasted_bytes, b.wasted_bytes) << "seed " << seed;
    EXPECT_EQ(a.final_machine_of_first, b.final_machine_of_first) << "seed " << seed;
  }
}

TEST(MigrationPropertyTest, PlantedViolationIsCaughtAndShrunk) {
  // Find a seed whose run interrupts mid-protocol, plant the unjournaled
  // flip, and demand the checker names it and the shrinker prints a
  // minimal repro — proof the harness detects the bug class it guards
  // against.
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    MigrationCase honest;
    honest.seed = seed;
    const CaseOutcome clean_run = RunMigrationCase(honest);
    if (clean_run.violation.empty() && !clean_run.interrupted) {
      continue;  // Want a case where the crash actually fired.
    }
    MigrationCase planted = honest;
    planted.plant_violation = true;
    const CaseOutcome outcome = RunMigrationCase(planted);
    ASSERT_FALSE(outcome.violation.empty())
        << "seed " << seed << ": unjournaled flip went undetected";
    EXPECT_NE(outcome.violation.find("journal says"), std::string::npos)
        << outcome.violation;
    const std::string repro = MinimalReproReport(planted);
    EXPECT_NE(repro.find("minimal repro"), std::string::npos);
    EXPECT_NE(repro.find("violation"), std::string::npos);
    std::printf("planted-violation repro (seed %llu):\n%s\n",
                static_cast<unsigned long long>(seed), repro.c_str());
    return;
  }
  FAIL() << "no seed in 1..64 produced an interrupted migration";
}

// --- Deterministic protocol-step coverage ----------------------------------

// With a clean wire and one instance to move, the gate consultations are:
// step 0 before the intent record, 1 before prepared, 2 before committed,
// 3 before the residency flip. Each landing point must recover to the
// phase-correct home.
struct StepCase {
  int gate_step;
  MachineId expected_home_after_recovery;
};

TEST(JournaledMigratorTest, EveryCrashPointRecoversToThePhaseCorrectHome) {
  const std::vector<StepCase> cases = {
      {0, kClientMachine},  // Nothing journaled: stays put.
      {1, kClientMachine},  // Intent only: rolled back.
      {2, kClientMachine},  // Prepared: copy acked but uncommitted — rolled back.
      {3, kServerMachine},  // Committed: crash before the flip — redone.
      {4, kServerMachine},  // No crash: moved normally.
  };
  for (const StepCase& step : cases) {
    EchoFixture fixture(1);
    ObjectSystem& system = fixture.system();
    Transport transport(NetworkModel::TenBaseT());
    Distribution target;
    for (ClassificationId cls = 1; cls <= 3; ++cls) {
      target.placement[cls] = kServerMachine;
    }
    LiveMigrator migrator(MigrationOptions{}, ClassOf);
    int steps = 0;
    migrator.SetCrashGate([&]() { return steps++ == step.gate_step; });

    MigrationJournal journal;
    Result<MigrationReport> report =
        migrator.Migrate(system, target, journal, transport, nullptr);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->interrupted, step.gate_step < 4) << "step " << step.gate_step;

    Result<RecoveryReport> recovered = LiveMigrator::Recover(system, journal);
    ASSERT_TRUE(recovered.ok());
    ASSERT_EQ(system.LiveInstances().size(), 1u);
    EXPECT_EQ(system.LiveInstances()[0].machine, step.expected_home_after_recovery)
        << "crash at gate step " << step.gate_step;
  }
}

TEST(JournaledMigratorTest, FaultFreeJournaledPathMatchesTheMoveSet) {
  EchoFixture fixture(6);
  ObjectSystem& system = fixture.system();
  Transport transport(NetworkModel::TenBaseT());
  Distribution target;
  target.placement[1] = kServerMachine;  // Instances with id % 3 == 0.
  target.placement[2] = kClientMachine;
  target.placement[3] = kServerMachine;

  MigrationOptions options;
  options.state_bytes_per_instance = 1024;
  LiveMigrator migrator(options, ClassOf);
  MigrationJournal journal;
  Result<MigrationReport> report =
      migrator.Migrate(system, target, journal, transport, nullptr);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->complete);
  EXPECT_FALSE(report->interrupted);
  EXPECT_EQ(report->wasted_bytes, 0u);
  EXPECT_EQ(report->bytes_transferred, report->instances_moved * 1024u);
  // Three journal records per moved instance: intent, prepared, committed.
  EXPECT_EQ(journal.size(), report->instances_moved * 3);
  EXPECT_TRUE(journal.InFlight().empty());
  for (const ObjectSystem::InstanceInfo& info : system.LiveInstances()) {
    EXPECT_EQ(info.machine, target.MachineFor(ClassOf(info.id)));
  }
}

// --- Journal unit coverage --------------------------------------------------

TEST(MigrationJournalTest, SerializeParseRoundTripsExactly) {
  MigrationJournal journal;
  MigrationRecord record;
  record.instance = 42;
  record.from = kClientMachine;
  record.to = kServerMachine;
  record.state_bytes = 4096;
  record.phase = MigrationPhase::kIntent;
  journal.Append(record);
  record.phase = MigrationPhase::kPrepared;
  journal.Append(record);
  record.instance = 7;
  record.phase = MigrationPhase::kRolledBack;
  journal.Append(record);

  const std::string text = journal.Serialize();
  Result<MigrationJournal> parsed = MigrationJournal::Parse(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Serialize(), text);
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ(parsed->LastFor(42)->phase, MigrationPhase::kPrepared);
  EXPECT_EQ(parsed->LastFor(7)->phase, MigrationPhase::kRolledBack);

  EXPECT_FALSE(MigrationJournal::Parse("nonsense").ok());
  EXPECT_FALSE(MigrationJournal::Parse("migration-journal v1\nrec bogus 1 0 1 2\n").ok());
}

TEST(MigrationJournalTest, InFlightIsTheLastWordOnly) {
  MigrationJournal journal;
  MigrationRecord record;
  record.instance = 1;
  record.phase = MigrationPhase::kIntent;
  journal.Append(record);
  record.instance = 2;
  journal.Append(record);
  record.instance = 1;
  record.phase = MigrationPhase::kCommitted;
  journal.Append(record);

  const std::vector<MigrationRecord> in_flight = journal.InFlight();
  ASSERT_EQ(in_flight.size(), 1u);  // 1 committed; only 2 still in flight.
  EXPECT_EQ(in_flight[0].instance, 2u);
  EXPECT_EQ(journal.LastFor(1)->phase, MigrationPhase::kCommitted);
  EXPECT_EQ(journal.LastFor(99), nullptr);
}

}  // namespace
}  // namespace coign
