// Mutation-fuzz oracle for the warm-start incremental min-cut session.
//
// Each case builds a live IncrementalMinCut session on a seeded graph and
// then drives it through a random sequence of capacity-delta batches —
// increases, decreases, zeroings, sentinel pins appearing and vanishing.
// After every batch the session's warm re-cut is checked by integer
// equality against a cold solve of the same capacities (push-relabel,
// relabel-to-front, Edmonds-Karp) and the exhaustive brute-force
// reference, plus the max-flow/min-cut certificate and byte-level
// partition identity on feasible steps.
//
// On failure the *delta sequence* is shrunk to a minimal repro: whole
// steps are dropped greedily, then individual deltas within the surviving
// steps, then edges of the base graph — always re-running the full
// sequence — and the result is printed as a replayable transcript.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/mincut/compact_flow_network.h"
#include "src/mincut/edmonds_karp.h"
#include "src/mincut/flow_network.h"
#include "src/mincut/incremental.h"
#include "src/mincut/push_relabel.h"
#include "src/mincut/relabel_to_front.h"
#include "src/support/rng.h"

namespace coign {
namespace {

constexpr int kCases = 160;
constexpr int kMaxSteps = 6;

struct SpecEdge {
  int a = 0;
  int b = 0;
  CapUnits capacity = 0;
  bool directed = false;
};

struct Delta {
  size_t edge = 0;
  CapUnits capacity = 0;
};

struct DeltaCase {
  int node_count = 2;
  int source = 0;
  int sink = 1;
  std::vector<SpecEdge> edges;
  std::vector<std::vector<Delta>> steps;
};

FlowNetwork BuildNetwork(const DeltaCase& c, const std::vector<CapUnits>& capacities) {
  FlowNetwork network(c.node_count);
  for (size_t i = 0; i < c.edges.size(); ++i) {
    if (c.edges[i].directed) {
      network.AddArc(c.edges[i].a, c.edges[i].b, capacities[i]);
    } else {
      network.AddEdge(c.edges[i].a, c.edges[i].b, capacities[i]);
    }
  }
  return network;
}

// Exhaustive partition-enumeration minimum cut, independent of any flow
// algorithm (same construction as mincut_equivalence_test).
CapUnits ReferenceMinCut(const DeltaCase& c, const std::vector<CapUnits>& capacities) {
  const FlowNetwork network = BuildNetwork(c, capacities);
  const int n = network.node_count();
  std::vector<int> inner;
  for (int v = 0; v < n; ++v) {
    if (v != c.source && v != c.sink) {
      inner.push_back(v);
    }
  }
  CapUnits best = kInfiniteCapacity;
  const uint64_t subsets = uint64_t{1} << inner.size();
  std::vector<bool> in_s(static_cast<size_t>(n), false);
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    std::fill(in_s.begin(), in_s.end(), false);
    in_s[static_cast<size_t>(c.source)] = true;
    for (size_t i = 0; i < inner.size(); ++i) {
      if ((mask >> i) & 1) {
        in_s[static_cast<size_t>(inner[i])] = true;
      }
    }
    CapUnits crossing = 0;
    for (int v = 0; v < n; ++v) {
      if (!in_s[static_cast<size_t>(v)]) {
        continue;
      }
      for (const FlowArc& arc : network.ArcsFrom(v)) {
        if (!in_s[static_cast<size_t>(arc.to)]) {
          crossing = SatAdd(crossing, arc.capacity);
        }
      }
    }
    best = std::min(best, crossing);
  }
  return best;
}

CapUnits PartitionCapacity(const FlowNetwork& network, const CutResult& cut) {
  CapUnits total = 0;
  for (int node = 0; node < network.node_count(); ++node) {
    if (!cut.in_source_side[static_cast<size_t>(node)]) {
      continue;
    }
    for (const FlowArc& arc : network.ArcsFrom(node)) {
      if (!cut.in_source_side[static_cast<size_t>(arc.to)]) {
        total = SatAdd(total, arc.capacity);
      }
    }
  }
  return total;
}

std::string CapString(CapUnits capacity) {
  if (capacity == kInfiniteCapacity) {
    return "kInfiniteCapacity";
  }
  std::ostringstream out;
  out << capacity;
  return out.str();
}

std::string Describe(const DeltaCase& c) {
  std::ostringstream out;
  out << "CompactFlowNetwork network(" << c.node_count << ");  // source="
      << c.source << " sink=" << c.sink << "\n";
  for (const SpecEdge& edge : c.edges) {
    out << "network." << (edge.directed ? "AddArc" : "AddEdge") << "(" << edge.a
        << ", " << edge.b << ", " << CapString(edge.capacity) << ");\n";
  }
  for (size_t s = 0; s < c.steps.size(); ++s) {
    out << "// step " << s << ":\n";
    for (const Delta& delta : c.steps[s]) {
      out << "session.SetEdgeCapacity(ids[" << delta.edge << "], "
          << CapString(delta.capacity) << ");\n";
    }
    out << "session.Solve();\n";
  }
  return out.str();
}

struct Failure {
  bool failed = false;
  std::string what;
};

// Runs the whole case — cold base solve, then every delta step warm —
// checking each solve against the cold oracles and the reference.
Failure RunCase(const DeltaCase& c) {
  Failure result;
  std::ostringstream why;

  CompactFlowNetwork compact(c.node_count);
  std::vector<int> ids;
  ids.reserve(c.edges.size());
  for (const SpecEdge& edge : c.edges) {
    ids.push_back(edge.directed ? compact.AddArc(edge.a, edge.b, edge.capacity)
                                : compact.AddEdge(edge.a, edge.b, edge.capacity));
  }
  compact.Finalize();
  IncrementalMinCut session;
  session.Reset(std::move(compact), c.source, c.sink);

  std::vector<CapUnits> capacities;
  capacities.reserve(c.edges.size());
  for (const SpecEdge& edge : c.edges) {
    capacities.push_back(edge.capacity);
  }

  for (size_t step = 0; step <= c.steps.size(); ++step) {
    if (step > 0) {
      for (const Delta& delta : c.steps[step - 1]) {
        capacities[delta.edge] = delta.capacity;
        session.SetEdgeCapacity(ids[delta.edge], delta.capacity);
      }
    }
    const CutResult live = session.Solve();
    const FlowNetwork network = BuildNetwork(c, capacities);
    const CutResult cold = MinCutPushRelabel(network, c.source, c.sink);
    const CutResult lift = MinCutRelabelToFront(network, c.source, c.sink);
    const CutResult baseline = MinCutEdmondsKarp(network, c.source, c.sink);
    const CapUnits reference = ReferenceMinCut(c, capacities);

    const auto complain = [&why, step](const std::string& text) {
      why << "step " << step << ": " << text << "; ";
    };
    if (live.cut_value != reference) {
      complain("session " + std::to_string(live.cut_value) + " != reference " +
               std::to_string(reference));
    }
    if (cold.cut_value != reference) {
      complain("cold PR != reference");
    }
    if (lift.cut_value != reference) {
      complain("RTF != reference");
    }
    if (baseline.cut_value != reference) {
      complain("EK != reference");
    }
    if (static_cast<int>(live.in_source_side.size()) != c.node_count ||
        !live.in_source_side[static_cast<size_t>(c.source)] ||
        live.in_source_side[static_cast<size_t>(c.sink)]) {
      complain("session returned a non-separating partition");
    } else {
      const CapUnits crossing = PartitionCapacity(network, live);
      if (crossing != live.cut_value) {
        complain("session partition crosses " + std::to_string(crossing) +
                 " but reports " + std::to_string(live.cut_value));
      }
      // Unique-minimal-cut identity on feasible steps (see the matching
      // check in mincut_equivalence_test for why infeasible is excluded).
      if (reference != kInfiniteCapacity && live.in_source_side != lift.in_source_side) {
        complain("session partition differs from RTF");
      }
    }
  }
  result.what = why.str();
  result.failed = !result.what.empty();
  return result;
}

// Shrinks a failing case: drop whole steps, then single deltas, then base
// edges — keeping any change that still fails, until a fixed point.
DeltaCase ShrinkFailingCase(DeltaCase c) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (size_t s = 0; s < c.steps.size(); ++s) {
      DeltaCase candidate = c;
      candidate.steps.erase(candidate.steps.begin() + static_cast<long>(s));
      if (RunCase(candidate).failed) {
        c = std::move(candidate);
        shrunk = true;
        break;
      }
    }
    if (shrunk) {
      continue;
    }
    for (size_t s = 0; s < c.steps.size() && !shrunk; ++s) {
      for (size_t d = 0; d < c.steps[s].size(); ++d) {
        DeltaCase candidate = c;
        candidate.steps[s].erase(candidate.steps[s].begin() + static_cast<long>(d));
        if (RunCase(candidate).failed) {
          c = std::move(candidate);
          shrunk = true;
          break;
        }
      }
    }
    if (shrunk) {
      continue;
    }
    for (size_t e = 0; e < c.edges.size() && !shrunk; ++e) {
      DeltaCase candidate = c;
      candidate.edges.erase(candidate.edges.begin() + static_cast<long>(e));
      // Re-point deltas at the shifted edge list; drop deltas that
      // targeted the removed edge.
      for (auto& step : candidate.steps) {
        std::vector<Delta> kept;
        for (const Delta& delta : step) {
          if (delta.edge == e) {
            continue;
          }
          Delta moved = delta;
          if (moved.edge > e) {
            --moved.edge;
          }
          kept.push_back(moved);
        }
        step = std::move(kept);
      }
      if (RunCase(candidate).failed) {
        c = std::move(candidate);
        shrunk = true;
      }
    }
  }
  return c;
}

CapUnits DriftCapacity(Rng& rng) {
  switch (rng.UniformInt(0, 5)) {
    case 0: return 0;                                    // Edge disappears.
    case 1: return rng.UniformInt(1, 4);                 // Tied-cut ties.
    case 2: return kInfiniteCapacity;                    // Pin appears.
    case 3: return (CapUnits{1} << 53) + rng.UniformInt(-1, 1);  // Near-equal.
    case 4: return rng.UniformInt(1, 1'000'000);
    default: return rng.UniformInt(1, 50'000'000'000'000);
  }
}

DeltaCase GenCase(uint64_t seed) {
  Rng rng(seed);
  DeltaCase c;
  const int inner = static_cast<int>(rng.UniformInt(2, 7));
  c.node_count = inner + 2;
  const int n = c.node_count;
  for (int node = 2; node < n; ++node) {
    const int anchor = static_cast<int>(rng.UniformInt(0, node - 1));
    c.edges.push_back({anchor, node, DriftCapacity(rng), false});
  }
  const int extra = 2 * inner;
  for (int i = 0; i < extra; ++i) {
    const int a = static_cast<int>(rng.UniformInt(0, n - 1));
    const int b = static_cast<int>(rng.UniformInt(0, n - 1));
    if (a == b) {
      continue;
    }
    c.edges.push_back({a, b, DriftCapacity(rng), !rng.Bernoulli(0.8)});
  }
  c.edges.push_back({0, static_cast<int>(rng.UniformInt(2, n - 1)), DriftCapacity(rng), false});
  c.edges.push_back({1, static_cast<int>(rng.UniformInt(2, n - 1)), DriftCapacity(rng), false});

  const int steps = static_cast<int>(rng.UniformInt(1, kMaxSteps));
  for (int s = 0; s < steps; ++s) {
    std::vector<Delta> step;
    const int deltas = static_cast<int>(rng.UniformInt(1, 3));
    for (int d = 0; d < deltas; ++d) {
      Delta delta;
      delta.edge = static_cast<size_t>(rng.UniformInt(0, static_cast<int>(c.edges.size()) - 1));
      delta.capacity = DriftCapacity(rng);
      step.push_back(delta);
    }
    c.steps.push_back(std::move(step));
  }
  return c;
}

TEST(MinCutIncrementalFuzzTest, WarmSolvesMatchColdAndReferenceOnEveryStep) {
  for (int i = 0; i < kCases; ++i) {
    const uint64_t seed = 0xde17a000u + static_cast<uint64_t>(i);
    const DeltaCase c = GenCase(seed);
    const Failure failure = RunCase(c);
    if (failure.failed) {
      const DeltaCase minimal = ShrinkFailingCase(c);
      const Failure residual = RunCase(minimal);
      FAIL() << "case " << i << " (seed " << seed << ") disagrees: " << failure.what
             << "\nminimal repro (" << minimal.edges.size() << " edges, "
             << minimal.steps.size() << " steps): " << residual.what << "\n"
             << Describe(minimal);
    }
  }
}

TEST(MinCutIncrementalFuzzTest, ShrinkerReducesStepsAndDeltas) {
  // Synthetic failure predicate: "fails" whenever the last solve differs
  // from 5. Base cut is 5; one noise step keeps it at 5 (removable); one
  // step drops the bottleneck to 2 (the culprit). The shrinker must strip
  // the noise and keep a 1-step, 1-delta repro.
  DeltaCase c;
  c.node_count = 4;
  c.edges.push_back({0, 2, 9, false});
  c.edges.push_back({2, 3, 5, false});
  c.edges.push_back({3, 1, 9, false});
  c.steps.push_back({{0, 8}});  // Noise: min stays 5.
  c.steps.push_back({{1, 2}, {0, 7}});  // Culprit is the first delta.
  auto fails = [](const DeltaCase& candidate) {
    std::vector<CapUnits> capacities;
    for (const SpecEdge& edge : candidate.edges) {
      capacities.push_back(edge.capacity);
    }
    for (const auto& step : candidate.steps) {
      for (const Delta& delta : step) {
        capacities[delta.edge] = delta.capacity;
      }
    }
    const FlowNetwork network = BuildNetwork(candidate, capacities);
    return MinCutEdmondsKarp(network, candidate.source, candidate.sink).cut_value != 5;
  };
  ASSERT_TRUE(fails(c));

  DeltaCase shrunk = c;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t s = 0; s < shrunk.steps.size() && !changed; ++s) {
      DeltaCase candidate = shrunk;
      candidate.steps.erase(candidate.steps.begin() + static_cast<long>(s));
      if (fails(candidate)) {
        shrunk = std::move(candidate);
        changed = true;
      }
    }
    for (size_t s = 0; s < shrunk.steps.size() && !changed; ++s) {
      for (size_t d = 0; d < shrunk.steps[s].size() && !changed; ++d) {
        DeltaCase candidate = shrunk;
        candidate.steps[s].erase(candidate.steps[s].begin() + static_cast<long>(d));
        if (fails(candidate)) {
          shrunk = std::move(candidate);
          changed = true;
        }
      }
    }
  }
  ASSERT_EQ(shrunk.steps.size(), 1u);
  ASSERT_EQ(shrunk.steps[0].size(), 1u);
  EXPECT_EQ(shrunk.steps[0][0].edge, 1u);
  EXPECT_EQ(shrunk.steps[0][0].capacity, 2);
}

TEST(MinCutIncrementalFuzzTest, SessionReportsWarmStartsAndReusedFlow) {
  // A simple path graph: 0 -(9)- 2 -(5)- 3 -(9)- 1. Re-solving after a
  // mild drift must be warm and reuse the retained sink inflow.
  CompactFlowNetwork network(4);
  network.AddEdge(0, 2, 9);
  const int bottleneck = network.AddEdge(2, 3, 5);
  network.AddEdge(3, 1, 9);
  network.Finalize();
  IncrementalMinCut session;
  session.Reset(std::move(network), 0, 1);

  EXPECT_EQ(session.Solve().cut_value, 5);
  EXPECT_EQ(session.last_stats().warm_start_hits, 0u);  // First solve is cold.

  session.SetEdgeCapacity(bottleneck, 6);  // Pure increase: flow kept.
  EXPECT_EQ(session.Solve().cut_value, 6);
  EXPECT_EQ(session.last_stats().warm_start_hits, 1u);
  EXPECT_EQ(session.last_stats().flow_reused_units, 5);

  session.SetEdgeCapacity(bottleneck, 3);  // Decrease: clip + deficit cancel.
  EXPECT_EQ(session.Solve().cut_value, 3);
  EXPECT_EQ(session.last_stats().warm_start_hits, 1u);
  EXPECT_EQ(session.last_stats().flow_reused_units, 3);

  EXPECT_EQ(session.total_stats().warm_start_hits, 2u);
  EXPECT_GT(session.total_stats().pushes, 0u);
}

TEST(MinCutIncrementalFuzzTest, ReplaysDeterministically) {
  auto fingerprint = [](uint64_t seed) {
    const DeltaCase c = GenCase(seed);
    std::ostringstream out;
    out << Describe(c);
    return out.str();
  };
  EXPECT_EQ(fingerprint(77), fingerprint(77));
  EXPECT_NE(fingerprint(77), fingerprint(78));
}

}  // namespace
}  // namespace coign
