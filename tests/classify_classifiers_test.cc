// Validates the seven instance classifiers against the paper's Figure 3
// control flow:
//
//   A::V() { ... a->W()  ... }
//   A::W() { ... b1->X() ... }
//   B::X() { ... b2->Y() ... }
//   B::Y() { ... c->Z()  ... }
//   C::Z() { ... CoCreateInstance(D) }
//
// where a : A, b1, b2 : B (two instances of one class), c : C.

#include "src/classify/classifiers.h"

#include <gtest/gtest.h>

#include "src/apps/component_library.h"
#include "src/com/object_system.h"

namespace coign {
namespace {

enum FlowMethod : MethodIndex { kV = 0, kW = 1, kX = 2, kY = 3, kZ = 4 };

class Figure3Fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.interfaces()
                    .Register(InterfaceBuilder("IFlow")
                                  .Method("V")
                                  .In("mode", ValueKind::kInt32)
                                  .Method("W")
                                  .Method("X")
                                  .Method("Y")
                                  .Method("Z")
                                  .Build())
                    .ok());
    iid_ = system_.interfaces().LookupByName("IFlow")->iid;

    // A::V dispatches either through W (mode 0) or directly to X (mode 1);
    // the latter differs from the former only by the intra-instance frame.
    handlers_.Set(iid_, kV, [this](ScriptedComponent& self, const Message& in, Message* out) {
      (void)out;
      if (in.Find("mode")->AsInt32() == 0) {
        return Call(self, ObjectRef{self.id(), iid_}, kW);
      }
      return Call(self, self.GetRef("b_first"), kX);
    });
    handlers_.Set(iid_, kW, [this](ScriptedComponent& self, const Message& in, Message* out) {
      (void)in;
      (void)out;
      return Call(self, self.GetRef("b_first"), kX);
    });
    handlers_.Set(iid_, kX, [this](ScriptedComponent& self, const Message& in, Message* out) {
      (void)in;
      (void)out;
      return Call(self, self.GetRef("b_second"), kY);
    });
    handlers_.Set(iid_, kY, [this](ScriptedComponent& self, const Message& in, Message* out) {
      (void)in;
      (void)out;
      return Call(self, self.GetRef("c"), kZ);
    });
    handlers_.Set(iid_, kZ, [this](ScriptedComponent& self, const Message& in, Message* out) {
      (void)self;
      (void)in;
      (void)out;
      Result<ObjectRef> d = system_.CreateInstance(Guid::FromName("clsid:D"), iid_);
      if (!d.ok()) {
        return d.status();
      }
      last_d_ = d->instance;
      return Status::Ok();
    });

    for (const char* name : {"A", "B", "C", "D"}) {
      ASSERT_TRUE(RegisterScriptedClass(&system_, name, {iid_}, kApiNone, &handlers_).ok());
    }
  }

  Status Call(ScriptedComponent& self, const ObjectRef& target, MethodIndex method) {
    (void)self;
    Message in;
    if (method == kV) {
      in.Add("mode", Value::FromInt32(0));
    }
    Message out;
    return system_.Call(target, method, in, &out);
  }

  // Builds a, b1, b2, c and wires the flow: X goes through `first_b`,
  // Y through `second_b`.
  void WireChain(InstanceId first_b, InstanceId second_b) {
    auto* a = static_cast<ScriptedComponent*>(system_.Resolve(a_));
    a->SetRef("b_first", ObjectRef{first_b, iid_});
    auto* b_first = static_cast<ScriptedComponent*>(system_.Resolve(first_b));
    b_first->SetRef("b_second", ObjectRef{second_b, iid_});
    auto* b_second = static_cast<ScriptedComponent*>(system_.Resolve(second_b));
    b_second->SetRef("c", ObjectRef{c_, iid_});
  }

  void CreateActors() {
    a_ = system_.CreateInstanceByName("A", "IFlow")->instance;
    b1_ = system_.CreateInstanceByName("B", "IFlow")->instance;
    b2_ = system_.CreateInstanceByName("B", "IFlow")->instance;
    c_ = system_.CreateInstanceByName("C", "IFlow")->instance;
  }

  // Runs the full chain with the given V mode; returns the classification
  // the classifier assigned to the new D instance.
  ClassificationId RunChain(InstanceClassifier& classifier, int mode = 0) {
    attach_ = std::make_unique<ClassifyingInterceptor>(&system_, &classifier);
    Message in;
    in.Add("mode", Value::FromInt32(mode));
    Message out;
    EXPECT_TRUE(system_.Call(ObjectRef{a_, iid_}, kV, in, &out).ok());
    attach_.reset();
    return *classifier.ClassificationOf(last_d_);
  }

  // Minimal stand-in for the RTE: classifies every instantiation with the
  // back-trace at instantiation time.
  class ClassifyingInterceptor : public ObjectSystem::Interceptor {
   public:
    ClassifyingInterceptor(ObjectSystem* system, InstanceClassifier* classifier)
        : system_(system), classifier_(classifier) {
      system_->AddInterceptor(this);
    }
    ~ClassifyingInterceptor() override { system_->RemoveInterceptor(this); }
    void OnInstantiated(const ClassDesc& cls, InstanceId id, InstanceId creator) override {
      (void)creator;
      classifier_->Classify(cls, system_->call_stack().BackTrace(), id);
    }

   private:
    ObjectSystem* system_;
    InstanceClassifier* classifier_;
  };

  ObjectSystem system_;
  HandlerTable handlers_;
  InterfaceId iid_;
  InstanceId a_ = 0, b1_ = 0, b2_ = 0, c_ = 0;
  InstanceId last_d_ = 0;
  std::unique_ptr<ClassifyingInterceptor> attach_;
};

TEST_F(Figure3Fixture, IdenticalChainsGroupForAllCallChainClassifiers) {
  for (ClassifierKind kind :
       {ClassifierKind::kProcedureCalledBy, ClassifierKind::kStaticType,
        ClassifierKind::kStaticTypeCalledBy, ClassifierKind::kInternalFunctionCalledBy,
        ClassifierKind::kEntryPointCalledBy, ClassifierKind::kInstantiatedBy}) {
    CreateActors();
    WireChain(b1_, b2_);
    std::unique_ptr<InstanceClassifier> classifier = MakeClassifier(kind);
    const ClassificationId first = RunChain(*classifier);
    const ClassificationId second = RunChain(*classifier);
    EXPECT_EQ(first, second) << ClassifierKindName(kind);
  }
}

TEST_F(Figure3Fixture, IncrementalSplitsIdenticalChains) {
  CreateActors();
  WireChain(b1_, b2_);
  std::unique_ptr<InstanceClassifier> classifier =
      MakeClassifier(ClassifierKind::kIncremental);
  const ClassificationId first = RunChain(*classifier);
  const ClassificationId second = RunChain(*classifier);
  EXPECT_NE(first, second);
}

TEST_F(Figure3Fixture, IncrementalMatchesByOrderAcrossExecutions) {
  CreateActors();
  WireChain(b1_, b2_);
  std::unique_ptr<InstanceClassifier> classifier =
      MakeClassifier(ClassifierKind::kIncremental);
  classifier->BeginExecution();
  const ClassificationId run1 = RunChain(*classifier);
  classifier->BeginExecution();  // New execution: sequence restarts.
  const ClassificationId run2 = RunChain(*classifier);
  EXPECT_EQ(run1, run2);
}

TEST_F(Figure3Fixture, StaticTypeCannotDistinguishContexts) {
  CreateActors();
  WireChain(b1_, b2_);
  std::unique_ptr<InstanceClassifier> classifier =
      MakeClassifier(ClassifierKind::kStaticType);
  const ClassificationId via_chain = RunChain(*classifier);
  // A D created directly by the driver, with an empty back-trace.
  Result<ObjectRef> direct = system_.CreateInstance(Guid::FromName("clsid:D"), iid_);
  ASSERT_TRUE(direct.ok());
  const ClassificationId direct_class =
      classifier->Classify(*system_.classes().Lookup(Guid::FromName("clsid:D")), {},
                           direct->instance);
  EXPECT_EQ(via_chain, direct_class);
}

TEST_F(Figure3Fixture, CallChainClassifiersDistinguishContexts) {
  for (ClassifierKind kind :
       {ClassifierKind::kProcedureCalledBy, ClassifierKind::kStaticTypeCalledBy,
        ClassifierKind::kInternalFunctionCalledBy, ClassifierKind::kEntryPointCalledBy,
        ClassifierKind::kInstantiatedBy}) {
    CreateActors();
    WireChain(b1_, b2_);
    std::unique_ptr<InstanceClassifier> classifier = MakeClassifier(kind);
    // The actors themselves are classified (the RTE classifies every
    // instantiation), so classifications embedded in descriptors resolve.
    for (InstanceId actor : {a_, b1_, b2_, c_}) {
      classifier->Classify(*system_.ClassOf(actor), {}, actor);
    }
    const ClassificationId via_chain = RunChain(*classifier);
    Result<ObjectRef> direct = system_.CreateInstance(Guid::FromName("clsid:D"), iid_);
    ASSERT_TRUE(direct.ok());
    const ClassificationId direct_class =
        classifier->Classify(*system_.classes().Lookup(Guid::FromName("clsid:D")), {},
                             direct->instance);
    EXPECT_NE(via_chain, direct_class) << ClassifierKindName(kind);
  }
}

TEST_F(Figure3Fixture, StcbBlindToInstanceSwapButIfcbSeesIt) {
  // Chain through (b1 then b2) vs (b2 then b1): the class sequence on the
  // stack is identical ([D, C, B, B, A]) so STCB groups them; IFCB embeds
  // instance classifications and separates them.
  CreateActors();
  std::unique_ptr<InstanceClassifier> stcb =
      MakeClassifier(ClassifierKind::kStaticTypeCalledBy);
  std::unique_ptr<InstanceClassifier> ifcb =
      MakeClassifier(ClassifierKind::kInternalFunctionCalledBy);

  // Give b1 and b2 distinct IFCB classifications by classifying their
  // creations from distinct (synthetic) contexts.
  const ClassDesc& class_b = *system_.classes().Lookup(Guid::FromName("clsid:B"));
  ifcb->Classify(class_b, {}, b1_);
  ifcb->Classify(class_b,
                 {CallFrame{.instance = a_, .clsid = Guid::FromName("clsid:A"),
                            .iid = iid_, .method = kV}},
                 b2_);
  ASSERT_NE(*ifcb->ClassificationOf(b1_), *ifcb->ClassificationOf(b2_));
  stcb->Classify(class_b, {}, b1_);
  stcb->Classify(class_b, {}, b2_);

  WireChain(b1_, b2_);
  const ClassificationId stcb_fwd = RunChain(*stcb);
  const ClassificationId ifcb_fwd = RunChain(*ifcb);
  WireChain(b2_, b1_);
  const ClassificationId stcb_rev = RunChain(*stcb);
  const ClassificationId ifcb_rev = RunChain(*ifcb);

  EXPECT_EQ(stcb_fwd, stcb_rev);
  EXPECT_NE(ifcb_fwd, ifcb_rev);
}

TEST_F(Figure3Fixture, EpcbIgnoresIntraInstanceFramesIfcbDoesNot) {
  // mode 0 routes V -> W -> X (an intra-instance frame [a,W] on the stack);
  // mode 1 routes V -> X directly. Only the entry point into `a` differs
  // by that intra-instance frame, which EPCB drops.
  CreateActors();
  WireChain(b1_, b2_);
  std::unique_ptr<InstanceClassifier> epcb =
      MakeClassifier(ClassifierKind::kEntryPointCalledBy);
  std::unique_ptr<InstanceClassifier> ifcb =
      MakeClassifier(ClassifierKind::kInternalFunctionCalledBy);
  const ClassificationId epcb_with_w = RunChain(*epcb, /*mode=*/0);
  const ClassificationId epcb_without_w = RunChain(*epcb, /*mode=*/1);
  const ClassificationId ifcb_with_w = RunChain(*ifcb, /*mode=*/0);
  const ClassificationId ifcb_without_w = RunChain(*ifcb, /*mode=*/1);
  EXPECT_EQ(epcb_with_w, epcb_without_w);
  EXPECT_NE(ifcb_with_w, ifcb_without_w);
}

TEST_F(Figure3Fixture, InstantiatedByEqualsDepthOneIfcb) {
  // IB groups by (class, parent classification) — functionally IFCB with a
  // depth-1 stack walk. Verify both group/split the same way on chains
  // whose innermost frames match but whose outer frames differ.
  CreateActors();
  WireChain(b1_, b2_);
  std::unique_ptr<InstanceClassifier> ib = MakeClassifier(ClassifierKind::kInstantiatedBy);
  std::unique_ptr<InstanceClassifier> ifcb1 =
      MakeClassifier(ClassifierKind::kInternalFunctionCalledBy, /*depth=*/1);
  const ClassificationId ib_mode0 = RunChain(*ib, 0);
  const ClassificationId ib_mode1 = RunChain(*ib, 1);
  const ClassificationId ifcb1_mode0 = RunChain(*ifcb1, 0);
  const ClassificationId ifcb1_mode1 = RunChain(*ifcb1, 1);
  // The innermost frame ([c, Z]) is identical in both modes.
  EXPECT_EQ(ib_mode0, ib_mode1);
  EXPECT_EQ(ifcb1_mode0, ifcb1_mode1);
}

TEST_F(Figure3Fixture, DepthLimitsCoarsenIfcb) {
  // With depth 1 the W-vs-direct chains group; with full depth they split.
  CreateActors();
  WireChain(b1_, b2_);
  std::unique_ptr<InstanceClassifier> shallow =
      MakeClassifier(ClassifierKind::kInternalFunctionCalledBy, 1);
  std::unique_ptr<InstanceClassifier> deep =
      MakeClassifier(ClassifierKind::kInternalFunctionCalledBy, kCompleteStackWalk);
  EXPECT_EQ(RunChain(*shallow, 0), RunChain(*shallow, 1));
  EXPECT_NE(RunChain(*deep, 0), RunChain(*deep, 1));
}

TEST(ClassifierBasicsTest, CountsAndMarks) {
  std::unique_ptr<InstanceClassifier> classifier =
      MakeClassifier(ClassifierKind::kStaticType);
  ClassDesc cls_a;
  cls_a.clsid = Guid::FromName("clsid:A");
  cls_a.name = "A";
  ClassDesc cls_b;
  cls_b.clsid = Guid::FromName("clsid:B");
  cls_b.name = "B";

  classifier->Classify(cls_a, {}, 1);
  classifier->Classify(cls_a, {}, 2);
  classifier->SetMark();
  classifier->Classify(cls_b, {}, 3);
  EXPECT_EQ(classifier->classification_count(), 2u);
  EXPECT_EQ(classifier->instances_classified(), 3u);
  EXPECT_EQ(classifier->NewClassificationsSinceMark(), 1u);
  EXPECT_EQ(classifier->InstanceCountOf(*classifier->ClassificationOf(1)), 2u);

  classifier->BeginExecution();
  EXPECT_FALSE(classifier->ClassificationOf(1).ok());  // Bindings cleared.
  EXPECT_EQ(classifier->classification_count(), 2u);   // Table persists.
}

TEST(ClassifierBasicsTest, FactoryProducesAllKindsWithNames) {
  for (ClassifierKind kind : AllClassifierKinds()) {
    std::unique_ptr<InstanceClassifier> classifier = MakeClassifier(kind);
    ASSERT_NE(classifier, nullptr);
    EXPECT_EQ(classifier->name(), ClassifierKindName(kind));
  }
  EXPECT_EQ(AllClassifierKinds().size(), 7u);
}

}  // namespace
}  // namespace coign
