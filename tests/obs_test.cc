#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/obs.h"

namespace coign {
namespace {

// --- Tracer -----------------------------------------------------------------

TEST(TracerTest, LogicalClockTicksOneMicrosecondPerCall) {
  Tracer tracer;
  EXPECT_DOUBLE_EQ(tracer.Now(), 0.0);
  EXPECT_DOUBLE_EQ(tracer.Now(), 1e-6);
  EXPECT_DOUBLE_EQ(tracer.Now(), 2e-6);
}

TEST(TracerTest, AttachedClockOverridesLogicalTicks) {
  Tracer tracer;
  double now = 3.5;
  tracer.SetClock([&now] { return now; });
  EXPECT_DOUBLE_EQ(tracer.Now(), 3.5);
  now = 7.25;
  EXPECT_DOUBLE_EQ(tracer.Now(), 7.25);
  tracer.SetClock(nullptr);
  // Back on the logical clock; ticks resume from where they left off.
  const double first = tracer.Now();
  EXPECT_DOUBLE_EQ(tracer.Now(), first + 1e-6);
}

TEST(TracerTest, SameEventSequenceExportsIdenticalBytes) {
  const auto record = [](Tracer& tracer) {
    double clock = 0.0;
    tracer.SetClock([&clock] { return clock; });
    tracer.Instant("onset", "fault", kTrackFault,
                   {{"kind", Tracer::ArgString("drop-burst")}});
    clock = 0.001;
    tracer.Counter("queue", kTrackTransport, 17.0);
    clock = 0.0025;
    tracer.Complete("epoch", "online", kTrackOnline, 0.001, clock,
                    {{"epoch", Tracer::ArgUint(3)},
                     {"gain", Tracer::ArgDouble(0.125)},
                     {"delta", Tracer::ArgInt(-2)}});
  };
  Tracer a;
  Tracer b;
  record(a);
  record(b);
  const std::string exported = a.ExportChromeTrace();
  EXPECT_EQ(exported, b.ExportChromeTrace());
  // The export really is Chrome trace_event: phases and microsecond ts.
  EXPECT_NE(exported.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(exported.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(exported.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(exported.find("\"ts\":1000.000"), std::string::npos);
  EXPECT_NE(exported.find("\"dur\":1500.000"), std::string::npos);
}

TEST(TracerTest, RingEvictsOldestFirstAndCountsDrops) {
  Tracer tracer(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    tracer.Instant("e" + std::to_string(i), "test", 1);
  }
  EXPECT_EQ(tracer.recorded(), 5u);
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(tracer.size(), 3u);
  const std::vector<TraceEvent> kept = tracer.Snapshot();
  ASSERT_EQ(kept.size(), 3u);
  // Oldest first, and the two oldest events (e0, e1) are the ones gone.
  EXPECT_EQ(kept[0].name, "e2");
  EXPECT_EQ(kept[1].name, "e3");
  EXPECT_EQ(kept[2].name, "e4");
}

TEST(TracerTest, SpanEmitsOneCompleteEventWithArgs) {
  Tracer tracer;
  double clock = 1.0;
  tracer.SetClock([&clock] { return clock; });
  {
    TraceSpan span(&tracer, "migrate", "migration", kTrackMigration);
    span.AddArg("instance", static_cast<uint64_t>(42));
    clock = 1.5;
  }  // Destructor ends the span at clock = 1.5.
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kComplete);
  EXPECT_EQ(events[0].name, "migrate");
  EXPECT_DOUBLE_EQ(events[0].start_seconds, 1.0);
  EXPECT_DOUBLE_EQ(events[0].duration_seconds, 0.5);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "instance");
  EXPECT_EQ(events[0].args[0].second, "42");
}

TEST(TracerTest, NullSpanIsANoOp) {
  TraceSpan span(nullptr, "x", "y", 1);
  span.AddArg("k", 1.0);
  span.End();  // Must not crash; nothing to assert beyond surviving.
}

// --- Metrics ----------------------------------------------------------------

TEST(MetricsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  MetricHistogram histogram({1.0, 2.0, 5.0});
  ASSERT_EQ(histogram.bucket_count(), 4u);  // 3 bounds + overflow.
  // "le" semantics: a sample exactly on a bound lands in that bound's
  // bucket; the first sample past it lands in the next.
  EXPECT_EQ(histogram.BucketFor(0.0), 0u);
  EXPECT_EQ(histogram.BucketFor(1.0), 0u);
  EXPECT_EQ(histogram.BucketFor(1.0000001), 1u);
  EXPECT_EQ(histogram.BucketFor(2.0), 1u);
  EXPECT_EQ(histogram.BucketFor(5.0), 2u);
  EXPECT_EQ(histogram.BucketFor(5.0000001), 3u);

  histogram.Observe(1.0);
  histogram.Observe(2.0);
  histogram.Observe(100.0);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 103.0);
  EXPECT_EQ(histogram.CountAt(0), 1u);
  EXPECT_EQ(histogram.CountAt(1), 1u);
  EXPECT_EQ(histogram.CountAt(2), 0u);
  EXPECT_EQ(histogram.CountAt(3), 1u);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry registry;
  MetricCounter* counter = registry.GetCounter("a.calls");
  counter->Add(2);
  EXPECT_EQ(registry.GetCounter("a.calls"), counter);
  EXPECT_EQ(counter->value(), 2u);
  MetricHistogram* histogram = registry.GetHistogram("a.rtt", {0.1, 1.0});
  // Second call with different bounds still returns the original.
  EXPECT_EQ(registry.GetHistogram("a.rtt", {99.0}), histogram);
  EXPECT_EQ(histogram->bucket_count(), 3u);
}

TEST(MetricsTest, SnapshotIsByteStableAcrossIdenticalUpdateSequences) {
  const auto update = [](MetricsRegistry& registry) {
    registry.GetCounter("z.last")->Add(7);
    registry.GetCounter("a.first")->Add(1);
    registry.GetGauge("m.level")->Set(0.25);
    MetricHistogram* h = registry.GetHistogram("h.lat", {0.001, 0.01});
    h->Observe(0.0005);
    h->Observe(0.5);
  };
  MetricsRegistry a;
  MetricsRegistry b;
  update(a);
  update(b);
  const std::string text = a.SnapshotText();
  EXPECT_EQ(text, b.SnapshotText());
  EXPECT_EQ(a.SnapshotJson(), b.SnapshotJson());
  // Names come out sorted regardless of creation order.
  EXPECT_LT(text.find("a.first"), text.find("z.last"));
  EXPECT_NE(text.find("# coign-metrics v1"), std::string::npos);
}

// --- Observability facade ---------------------------------------------------

TEST(ObservabilityTest, SampleCountersEmitsOneCounterEventPerSeries) {
  Observability obs;
  double clock = 2.0;
  obs.tracer().SetClock([&clock] { return clock; });
  obs.metrics().GetCounter("transport.calls")->Add(7);
  obs.metrics().GetCounter("online.epochs")->Add(3);
  obs.metrics().GetGauge("net.slowdown")->Set(1.25);
  // Histograms have no single plottable value; they stay off the track.
  obs.metrics().GetHistogram("transport.rtt_seconds", {0.1})->Observe(0.05);

  obs.SampleCounters();

  std::vector<TraceEvent> counters;
  for (const TraceEvent& event : obs.tracer().Snapshot()) {
    if (event.phase == TraceEvent::Phase::kCounter) {
      counters.push_back(event);
    }
  }
  ASSERT_EQ(counters.size(), 3u);
  // Registry order: counters name-sorted, then gauges — all on the counter
  // track, all stamped with the same clock reading.
  EXPECT_EQ(counters[0].name, "online.epochs");
  EXPECT_EQ(counters[1].name, "transport.calls");
  EXPECT_EQ(counters[2].name, "net.slowdown");
  for (const TraceEvent& event : counters) {
    EXPECT_EQ(event.track, kTrackCounters);
    EXPECT_DOUBLE_EQ(event.start_seconds, 2.0);
    ASSERT_EQ(event.args.size(), 1u);
    EXPECT_EQ(event.args[0].first, "value");
  }
  EXPECT_EQ(counters[0].args[0].second, "3");
  EXPECT_EQ(counters[1].args[0].second, "7");
  EXPECT_EQ(counters[2].args[0].second, "1.25");

  // A second sampling after an update lands the new value at the new time.
  clock = 5.0;
  obs.metrics().GetCounter("online.epochs")->Add(1);
  obs.SampleCounters();
  const std::vector<TraceEvent> events = obs.tracer().Snapshot();
  bool found = false;
  for (const TraceEvent& event : events) {
    if (event.phase == TraceEvent::Phase::kCounter &&
        event.name == "online.epochs" && event.start_seconds == 5.0) {
      EXPECT_EQ(event.args[0].second, "4");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // The export renders them as "C" phase events.
  EXPECT_NE(obs.tracer().ExportChromeTrace().find("\"ph\":\"C\""),
            std::string::npos);
}

TEST(ObservabilityTest, DumpWritesRingSnapshotsUpToTheLimit) {
  Observability obs;
  const std::string prefix = ::testing::TempDir() + "/coign_obs_dump_test";
  obs.SetDumpPrefix(prefix);
  obs.SetDumpLimit(2);
  obs.tracer().Instant("before-dump", "test", 1);
  obs.Dump("quarantine");
  obs.Dump("quarantine");
  obs.Dump("quarantine");  // Past the limit: counted, not written.
  EXPECT_EQ(obs.dumps_written(), 2);
  EXPECT_EQ(obs.metrics().GetCounter("obs.dumps")->value(), 3u);
  for (int i = 0; i < 2; ++i) {
    const std::string path =
        prefix + "-" + std::to_string(i) + "-quarantine.json";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    EXPECT_NE(buffer.str().find("before-dump"), std::string::npos);
    in.close();
    std::remove(path.c_str());
  }
}

TEST(ObservabilityTest, DumpWithoutPrefixOnlyCounts) {
  Observability obs;
  obs.Dump("migration-abandoned");
  EXPECT_EQ(obs.dumps_written(), 0);
  EXPECT_EQ(obs.metrics().GetCounter("obs.dumps")->value(), 1u);
}

}  // namespace
}  // namespace coign
