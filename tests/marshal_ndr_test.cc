#include "src/marshal/ndr.h"

#include <gtest/gtest.h>

#include "src/marshal/proxy_stub.h"
#include "src/support/rng.h"

namespace coign {
namespace {

Message SampleMessage() {
  Message m;
  m.Add("flag", Value::FromBool(true));
  m.Add("count", Value::FromInt32(-3));
  m.Add("big", Value::FromInt64(1ll << 50));
  m.Add("ratio", Value::FromDouble(0.75));
  m.Add("name", Value::FromString("composition"));
  m.Add("payload", Value::FromBytes({9, 8, 7, 6, 5}));
  m.Add("iface", Value::FromInterface(ObjectRef{12, Guid::FromName("iid:IThing")}));
  m.Add("xs", Value::FromArray({Value::FromInt32(1), Value::FromString("two"),
                                Value::FromArray({Value::FromDouble(3.0)})}));
  m.Add("rec", Value::FromRecord({{"inner", Value::FromInt64(4)},
                                  {"blob", Value::BlobOfSize(100, 55)}}));
  m.Add("nothing", Value::Null());
  return m;
}

TEST(NdrTest, WireSizeEqualsSerializedLength) {
  const Message m = SampleMessage();
  Result<uint64_t> size = WireSize(m);
  Result<std::vector<uint8_t>> bytes = Serialize(m);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*size, bytes->size());
}

TEST(NdrTest, RoundTripPreservesValues) {
  const Message m = SampleMessage();
  Result<std::vector<uint8_t>> bytes = Serialize(m);
  ASSERT_TRUE(bytes.ok());
  Result<Message> back = Deserialize(*bytes);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), m.size());
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(back->at(i).name, m.at(i).name);
  }
  EXPECT_EQ(back->Find("count")->AsInt32(), -3);
  EXPECT_EQ(back->Find("name")->AsString(), "composition");
  EXPECT_EQ(back->Find("iface")->AsInterface(),
            (ObjectRef{12, Guid::FromName("iid:IThing")}));
  EXPECT_EQ(back->Find("rec")->AsRecord()[0].second.AsInt64(), 4);
}

TEST(NdrTest, SyntheticBlobMaterializesIdenticalBytes) {
  Message m;
  m.Add("b", Value::BlobOfSize(64, 1234));
  Result<Message> back = RoundTrip(m);
  ASSERT_TRUE(back.ok());
  const Blob& blob = back->Find("b")->AsBlob();
  EXPECT_TRUE(blob.materialized());
  ASSERT_EQ(blob.size, 64u);
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(blob.ByteAt(i), m.Find("b")->AsBlob().ByteAt(i));
  }
}

TEST(NdrTest, OpaqueRefusesToMarshal) {
  Message m;
  m.Add("p", Value::FromOpaque(0xabc));
  EXPECT_EQ(WireSize(m).status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Serialize(m).status().code(), StatusCode::kFailedPrecondition);
  // Nested opaque too.
  Message nested;
  nested.Add("r", Value::FromRecord({{"p", Value::FromOpaque(1)}}));
  EXPECT_FALSE(WireSize(nested).ok());
}

TEST(NdrTest, InterfaceMarshalsByFixedReferenceNotDeepCopy) {
  // An interface pointer's wire size is constant no matter how much state
  // sits behind it — DCOM reference semantics.
  Message a;
  a.Add("i", Value::FromInterface(ObjectRef{1, Guid::FromName("x")}));
  Message b;
  b.Add("i", Value::FromInterface(ObjectRef{999999, Guid::FromName("y")}));
  ASSERT_TRUE(WireSize(a).ok());
  EXPECT_EQ(*WireSize(a), *WireSize(b));
}

TEST(NdrTest, DeepCopyScalesWithArrayContents) {
  Message small;
  small.Add("xs", Value::FromArray({Value::FromInt32(1)}));
  Message large;
  std::vector<Value> many;
  for (int i = 0; i < 100; ++i) {
    many.push_back(Value::FromInt32(i));
  }
  large.Add("xs", Value::FromArray(std::move(many)));
  EXPECT_GT(*WireSize(large), *WireSize(small) + 400);  // >= 99 extra ints.
}

TEST(NdrTest, EmptyMessage) {
  Message m;
  Result<std::vector<uint8_t>> bytes = Serialize(m);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->size(), 4u);  // Just the arg count.
  Result<Message> back = Deserialize(*bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(NdrTest, DeserializeRejectsTruncation) {
  Message m = SampleMessage();
  Result<std::vector<uint8_t>> bytes = Serialize(m);
  ASSERT_TRUE(bytes.ok());
  for (size_t cut : {size_t{1}, bytes->size() / 2, bytes->size() - 1}) {
    std::vector<uint8_t> truncated(bytes->begin(),
                                   bytes->begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(Deserialize(truncated).ok()) << "cut at " << cut;
  }
}

TEST(NdrTest, DeserializeRejectsUnknownTag) {
  std::vector<uint8_t> bytes = {1, 0, 0, 0,        // One argument.
                                1, 0, 'k',         // Name "k".
                                0,                 // Pad to 4... (offset 7->8)
                                0xee};             // Bogus tag.
  EXPECT_FALSE(Deserialize(bytes).ok());
}

// Property sweep: random messages round-trip exactly and sizing always
// matches serialization.
class NdrPropertyTest : public ::testing::TestWithParam<uint64_t> {};

Value RandomValue(Rng& rng, int depth) {
  const int64_t pick = rng.UniformInt(0, depth > 0 ? 8 : 5);
  switch (pick) {
    case 0:
      return Value::FromBool(rng.Bernoulli(0.5));
    case 1:
      return Value::FromInt32(static_cast<int32_t>(rng.UniformInt(-1000000, 1000000)));
    case 2:
      return Value::FromInt64(rng.UniformInt(-(1ll << 60), 1ll << 60));
    case 3:
      return Value::FromDouble(rng.Normal(0, 1e6));
    case 4: {
      std::string s;
      const int64_t length = rng.UniformInt(0, 40);
      for (int64_t i = 0; i < length; ++i) {
        s.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
      }
      return Value::FromString(std::move(s));
    }
    case 5:
      return Value::BlobOfSize(static_cast<uint64_t>(rng.UniformInt(0, 300)),
                               rng.NextUint64());
    case 6:
      return Value::FromInterface(
          ObjectRef{static_cast<InstanceId>(rng.UniformInt(1, 1000)),
                    Guid::FromName("iid:random")});
    case 7: {
      std::vector<Value> xs;
      const int64_t n = rng.UniformInt(0, 4);
      for (int64_t i = 0; i < n; ++i) {
        xs.push_back(RandomValue(rng, depth - 1));
      }
      return Value::FromArray(std::move(xs));
    }
    default: {
      std::vector<std::pair<std::string, Value>> fields;
      const int64_t n = rng.UniformInt(0, 3);
      for (int64_t i = 0; i < n; ++i) {
        fields.emplace_back(std::string(1, static_cast<char>('a' + i)),
                            RandomValue(rng, depth - 1));
      }
      return Value::FromRecord(std::move(fields));
    }
  }
}

TEST_P(NdrPropertyTest, RandomMessagesRoundTrip) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 50; ++iteration) {
    Message m;
    const int64_t args = rng.UniformInt(0, 6);
    for (int64_t a = 0; a < args; ++a) {
      m.Add(std::string(1, static_cast<char>('p' + a)), RandomValue(rng, 3));
    }
    Result<uint64_t> size = WireSize(m);
    Result<std::vector<uint8_t>> bytes = Serialize(m);
    ASSERT_TRUE(size.ok());
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(*size, bytes->size());
    Result<Message> back = Deserialize(*bytes);
    ASSERT_TRUE(back.ok());
    // Re-serialization is a fixed point (synthetic blobs materialize, so
    // compare the second generation with itself).
    Result<std::vector<uint8_t>> bytes2 = Serialize(*back);
    ASSERT_TRUE(bytes2.ok());
    EXPECT_EQ(*bytes, *bytes2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NdrPropertyTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

}  // namespace
}  // namespace coign
