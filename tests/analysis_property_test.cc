// Property sweep: on randomly generated small profiles, the analysis
// engine's distribution is *exactly optimal* — equal in predicted
// communication time to the best of all constraint-respecting partitions
// found by brute force. This is the paper's claim that the two-way
// lift-to-front cut is exact, verified end to end through the engine
// (constraints, graph construction, and cut together).

#include <gtest/gtest.h>

#include "src/analysis/engine.h"
#include "src/analysis/prediction.h"
#include "src/com/class_registry.h"
#include "src/support/rng.h"

namespace coign {
namespace {

struct RandomProfile {
  IccProfile profile;
  std::vector<ClassificationId> free_ids;  // Not pinned by API usage.
};

RandomProfile MakeRandomProfile(Rng& rng) {
  RandomProfile out;
  const int n = static_cast<int>(rng.UniformInt(3, 9));
  for (int i = 0; i < n; ++i) {
    ClassificationInfo info;
    info.id = static_cast<ClassificationId>(i);
    info.clsid = Guid::FromName("clsid:R" + std::to_string(i));
    info.class_name = "R" + std::to_string(i);
    // First classification is GUI (client pin), second storage (server
    // pin), the rest free.
    info.api_usage = i == 0 ? kApiGui : i == 1 ? kApiStorage : kApiNone;
    info.instance_count = 1;
    out.profile.RecordClassification(info);
    if (info.api_usage == kApiNone) {
      out.free_ids.push_back(info.id);
    }
  }
  // Random communication, including some driver edges.
  for (int a = -1; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!rng.Bernoulli(0.5)) {
        continue;
      }
      CallKey key;
      key.src = a < 0 ? kNoClassification : static_cast<ClassificationId>(a);
      key.dst = static_cast<ClassificationId>(b);
      key.iid = Guid::FromName("iid:IRand");
      const int calls = static_cast<int>(rng.UniformInt(1, 20));
      for (int c = 0; c < calls; ++c) {
        out.profile.RecordCall(key, static_cast<uint64_t>(rng.UniformInt(16, 4096)),
                               static_cast<uint64_t>(rng.UniformInt(16, 4096)), true);
      }
    }
  }
  return out;
}

NetworkProfile Net() {
  NetworkProfile network;
  network.per_message_seconds = 1e-3;
  network.seconds_per_byte = 1e-6;
  return network;
}

class EngineOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineOptimalityTest, CutMatchesBruteForceOptimum) {
  Rng rng(GetParam());
  const RandomProfile random = MakeRandomProfile(rng);

  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(random.profile, Net());
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();

  // Brute force: enumerate all placements of the free classifications,
  // with the GUI pinned client and storage pinned server.
  double best = 1e300;
  const size_t free_count = random.free_ids.size();
  for (uint64_t mask = 0; mask < (uint64_t{1} << free_count); ++mask) {
    Distribution candidate;
    candidate.placement[0] = kClientMachine;
    candidate.placement[1] = kServerMachine;
    for (size_t i = 0; i < free_count; ++i) {
      candidate.placement[random.free_ids[i]] =
          (mask >> i) & 1 ? kServerMachine : kClientMachine;
    }
    best = std::min(best,
                    PredictCommunicationSeconds(random.profile, candidate, Net()));
  }

  EXPECT_NEAR(analysis->predicted_comm_seconds, best, best * 1e-9 + 1e-12)
      << "engine cut is not optimal for seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineOptimalityTest,
                         ::testing::Range(uint64_t{9000}, uint64_t{9024}));

}  // namespace
}  // namespace coign
