#include <gtest/gtest.h>

#include "src/analysis/engine.h"
#include "src/analysis/prediction.h"
#include "src/analysis/report.h"
#include "src/com/class_registry.h"

namespace coign {
namespace {

CallKey MakeKey(ClassificationId src, ClassificationId dst) {
  CallKey key;
  key.src = src;
  key.dst = dst;
  key.iid = Guid::FromName("iid:IAnalysis");
  return key;
}

void AddClassification(IccProfile* profile, ClassificationId id, const std::string& name,
                       uint32_t api = kApiNone, uint64_t instances = 1) {
  ClassificationInfo info;
  info.id = id;
  info.clsid = Guid::FromName("clsid:" + name);
  info.class_name = name;
  info.api_usage = api;
  info.instance_count = instances;
  profile->RecordClassification(info);
}

NetworkProfile FastNetwork() {
  NetworkProfile network;
  network.per_message_seconds = 1e-3;
  network.seconds_per_byte = 1e-6;
  return network;
}

// The canonical shape: Gui (pinned client) <-chatty-> Worker <-bulk-> Store
// (pinned server). Worker should land wherever its traffic is heavier.
IccProfile WorkerProfile(uint64_t gui_side_bytes, uint64_t store_side_bytes) {
  IccProfile profile;
  AddClassification(&profile, 0, "Gui", kApiGui, 2);
  AddClassification(&profile, 1, "Worker", kApiNone, 4);
  AddClassification(&profile, 2, "Store", kApiStorage, 1);
  profile.RecordCall(MakeKey(0, 1), gui_side_bytes, 64, true);
  profile.RecordCall(MakeKey(1, 2), store_side_bytes, 64, true);
  profile.RecordCompute(1, 0.25);
  return profile;
}

TEST(AnalysisEngineTest, WorkerFollowsTheHeavierEdge) {
  ProfileAnalysisEngine engine;
  {
    Result<AnalysisResult> result =
        engine.Analyze(WorkerProfile(/*gui=*/100, /*store=*/100000), FastNetwork());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->distribution.MachineFor(1), kServerMachine);
    EXPECT_EQ(result->server_classifications, 2u);  // Worker + Store.
    EXPECT_EQ(result->server_instances, 5u);
  }
  {
    Result<AnalysisResult> result =
        engine.Analyze(WorkerProfile(/*gui=*/100000, /*store=*/100), FastNetwork());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->distribution.MachineFor(1), kClientMachine);
  }
}

TEST(AnalysisEngineTest, PinsAlwaysRespected) {
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> result = engine.Analyze(WorkerProfile(10, 10), FastNetwork());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distribution.MachineFor(0), kClientMachine);
  EXPECT_EQ(result->distribution.MachineFor(2), kServerMachine);
}

TEST(AnalysisEngineTest, PredictedCommMatchesCutEdges) {
  ProfileAnalysisEngine engine;
  const IccProfile profile = WorkerProfile(100, 100000);
  Result<AnalysisResult> result = engine.Analyze(profile, FastNetwork());
  ASSERT_TRUE(result.ok());
  // The crossing edge is Gui <-> Worker.
  double crossing = 0.0;
  for (const CutEdgeReport& edge : result->cut_edges) {
    crossing += edge.seconds;
  }
  EXPECT_NEAR(result->predicted_comm_seconds, crossing, 1e-12);
  EXPECT_NEAR(result->predicted_comm_seconds,
              PredictCommunicationSeconds(profile, result->distribution, FastNetwork()),
              1e-12);
  EXPECT_LE(result->predicted_comm_seconds, result->total_comm_seconds);
}

TEST(AnalysisEngineTest, NonRemotableEdgeForcesColocation) {
  IccProfile profile;
  AddClassification(&profile, 0, "Gui", kApiGui);
  AddClassification(&profile, 1, "Sprite", kApiNone);
  AddClassification(&profile, 2, "Store", kApiStorage);
  // Sprite talks hugely to the Store, but shares opaque memory with Gui.
  profile.RecordCall(MakeKey(0, 1), 10, 10, /*remotable=*/false);
  profile.RecordCall(MakeKey(1, 2), 1000000, 64, true);
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> result = engine.Analyze(profile, FastNetwork());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distribution.MachineFor(1), kClientMachine);
  EXPECT_EQ(result->non_remotable_pairs, 1u);
}

TEST(AnalysisEngineTest, ContradictoryConstraintsReported) {
  IccProfile profile;
  AddClassification(&profile, 0, "Gui", kApiGui);
  AddClassification(&profile, 1, "Store", kApiStorage);
  // A non-remotable interface between a client-pinned and a server-pinned
  // classification cannot be satisfied.
  profile.RecordCall(MakeKey(0, 1), 10, 10, /*remotable=*/false);
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> result = engine.Analyze(profile, FastNetwork());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AnalysisEngineTest, EmptyProfileRefused) {
  ProfileAnalysisEngine engine;
  EXPECT_EQ(engine.Analyze(IccProfile(), FastNetwork()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AnalysisEngineTest, ExtraConstraintsApplied) {
  AnalysisOptions options;
  options.extra_constraints.PinAbsolute(1, kServerMachine);  // Pin the worker.
  ProfileAnalysisEngine engine(options);
  // Traffic says client, the programmer says server.
  Result<AnalysisResult> result =
      engine.Analyze(WorkerProfile(/*gui=*/100000, /*store=*/100), FastNetwork());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distribution.MachineFor(1), kServerMachine);
}

TEST(AnalysisEngineTest, PairwiseColocationApplied) {
  AnalysisOptions options;
  options.extra_constraints.Colocate(1, 2);  // Worker rides with Store.
  ProfileAnalysisEngine engine(options);
  Result<AnalysisResult> result =
      engine.Analyze(WorkerProfile(/*gui=*/100000, /*store=*/100), FastNetwork());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distribution.MachineFor(1), kServerMachine);
}

TEST(AnalysisEngineTest, ApiConstraintDerivationCanBeDisabled) {
  AnalysisOptions options;
  options.derive_api_constraints = false;
  ProfileAnalysisEngine engine(options);
  // With no pins at all, everything clusters on one side and nothing
  // crosses the network.
  Result<AnalysisResult> result = engine.Analyze(WorkerProfile(100, 100), FastNetwork());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->predicted_comm_seconds, 0.0, 1e-12);
}

TEST(AnalysisEngineTest, BothCutAlgorithmsChooseEquallyGoodDistributions) {
  const IccProfile profile = WorkerProfile(5000, 5200);
  AnalysisOptions rtf_options;
  rtf_options.algorithm = CutAlgorithm::kRelabelToFront;
  AnalysisOptions ek_options;
  ek_options.algorithm = CutAlgorithm::kEdmondsKarp;
  Result<AnalysisResult> rtf = ProfileAnalysisEngine(rtf_options).Analyze(profile, FastNetwork());
  Result<AnalysisResult> ek = ProfileAnalysisEngine(ek_options).Analyze(profile, FastNetwork());
  ASSERT_TRUE(rtf.ok());
  ASSERT_TRUE(ek.ok());
  EXPECT_NEAR(rtf->predicted_comm_seconds, ek->predicted_comm_seconds, 1e-9);
}

TEST(AnalysisEngineTest, SessionWarmStartsAreInvisibleInResults) {
  ProfileAnalysisEngine engine;
  MinCutSession session;
  // Three windows over the same topology with drifting weights, solved
  // once through a shared session (warm) and once without (cold): every
  // result must match field for field, and the session must report the
  // repeat of window A as a warm-start hit.
  const IccProfile windows[] = {WorkerProfile(5000, 5200), WorkerProfile(9000, 100),
                                WorkerProfile(5000, 5200)};
  uint64_t previous_hits = 0;
  for (const IccProfile& window : windows) {
    Result<AnalysisResult> warm = engine.Analyze(window, FastNetwork(), &session);
    Result<AnalysisResult> cold = engine.Analyze(window, FastNetwork());
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(warm->cut_value_units, cold->cut_value_units);
    EXPECT_EQ(warm->distribution.placement, cold->distribution.placement);
    EXPECT_EQ(warm->client_classifications, cold->client_classifications);
    EXPECT_EQ(warm->cut_edges.size(), cold->cut_edges.size());
    previous_hits = session.stats().warm_start_hits;
  }
  // The third window is byte-identical to the first... but arrives after
  // window B changed the capacities, so it warm-starts through the delta
  // path rather than the full-fingerprint short-circuit. Re-analyzing it
  // unchanged must take the short-circuit.
  Result<AnalysisResult> repeat = engine.Analyze(windows[2], FastNetwork(), &session);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(session.stats().warm_start_hits, previous_hits + 1);
  EXPECT_GT(session.stats().pushes, 0u);
}

TEST(PredictionTest, CommunicationOnlyCountsCrossMachinePairs) {
  const IccProfile profile = WorkerProfile(1000, 2000);
  Distribution all_client = EverythingOn(kClientMachine);
  EXPECT_EQ(PredictCommunicationSeconds(profile, all_client, FastNetwork()), 0.0);

  Distribution split;
  split.placement[0] = kClientMachine;
  split.placement[1] = kClientMachine;
  split.placement[2] = kServerMachine;
  const double worker_store = PredictCommunicationSeconds(profile, split, FastNetwork());
  // Worker <-> Store: 2 messages, 2064 bytes.
  EXPECT_NEAR(worker_store, 2 * 1e-3 + 2064 * 1e-6, 1e-9);
}

TEST(PredictionTest, ExecutionTimeAddsCompute) {
  const IccProfile profile = WorkerProfile(1000, 2000);
  const ExecutionPrediction prediction =
      PredictExecutionTime(profile, EverythingOn(kClientMachine), FastNetwork());
  EXPECT_DOUBLE_EQ(prediction.compute_seconds, 0.25);
  EXPECT_DOUBLE_EQ(prediction.communication_seconds, 0.0);
  EXPECT_DOUBLE_EQ(prediction.total_seconds(), 0.25);
}

TEST(PredictionTest, DriverCountsAsClient) {
  IccProfile profile;
  AddClassification(&profile, 0, "Free");
  profile.RecordCall(MakeKey(kNoClassification, 0), 100, 100, true);
  Distribution server_only;
  server_only.placement[0] = kServerMachine;
  EXPECT_GT(PredictCommunicationSeconds(profile, server_only, FastNetwork()), 0.0);
  Distribution client_only;
  client_only.placement[0] = kClientMachine;
  EXPECT_EQ(PredictCommunicationSeconds(profile, client_only, FastNetwork()), 0.0);
}

TEST(ReportTest, FigureSummaryAndDetails) {
  const IccProfile profile = WorkerProfile(100, 100000);
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> result = engine.Analyze(profile, FastNetwork());
  ASSERT_TRUE(result.ok());
  const std::string summary = FigureSummary(*result);
  EXPECT_NE(summary.find("Of 7 components"), std::string::npos);
  EXPECT_NE(summary.find("5 on the server"), std::string::npos);
  const std::string report = DistributionReport(profile, *result);
  EXPECT_NE(report.find("Worker"), std::string::npos);
  EXPECT_NE(report.find("server components"), std::string::npos);
  EXPECT_NE(report.find("<driver>") != std::string::npos ||
                report.find("Gui") != std::string::npos,
            false);
}

}  // namespace
}  // namespace coign
