// Full-pipeline integration tests: instrument → profile → network profile →
// analyze → write distribution → distributed execution, for all three
// applications. Verifies the paper's headline invariants: Coign never
// chooses a worse distribution than the default (Table 4), the distributed
// run completes without violating any non-remotable interface, and the
// prediction model tracks measured execution time (Table 5).

#include <gtest/gtest.h>

#include "src/analysis/engine.h"
#include "src/analysis/prediction.h"
#include "src/apps/suite.h"
#include "src/net/network_profiler.h"
#include "src/profile/log_file.h"
#include "src/runtime/rte.h"
#include "src/sim/measurement.h"

namespace coign {
namespace {

struct PipelineOutput {
  IccProfile profile;
  std::vector<Descriptor> classifier_table;
  AnalysisResult analysis;
  RunMeasurement default_run;
  RunMeasurement coign_run;
  ApplicationImage distributed_image;
};

Result<PipelineOutput> RunPipeline(const std::string& scenario_id,
                                   const NetworkModel& network, uint64_t seed = 11) {
  Result<std::unique_ptr<Application>> app_or = BuildApplicationForScenario(scenario_id);
  if (!app_or.ok()) {
    return app_or.status();
  }
  Application& app = **app_or;
  Rng rng(seed);

  BinaryRewriter rewriter;
  Result<ApplicationImage> instrumented =
      rewriter.Instrument(app.Image(), ConfigurationRecord());
  if (!instrumented.ok()) {
    return instrumented.status();
  }

  // Profile.
  PipelineOutput output;
  {
    ObjectSystem system;
    COIGN_RETURN_IF_ERROR(app.Install(&system));
    Result<std::unique_ptr<CoignRuntime>> runtime =
        CoignRuntime::LoadFromImage(&system, *instrumented);
    if (!runtime.ok()) {
      return runtime.status();
    }
    (*runtime)->BeginScenario();
    Result<Scenario> scenario = app.FindScenario(scenario_id);
    if (!scenario.ok()) {
      return scenario.status();
    }
    COIGN_RETURN_IF_ERROR(scenario->run(system, rng));
    system.DestroyAll();
    output.profile = (*runtime)->profiling_logger()->profile();
    output.classifier_table = (*runtime)->classifier().ExportDescriptors();
  }

  // Network profile + analysis.
  NetworkProfiler profiler;
  Transport transport(network);
  const NetworkProfile network_profile = profiler.Profile(transport, rng);
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(output.profile, network_profile);
  if (!analysis.ok()) {
    return analysis.status();
  }
  output.analysis = std::move(*analysis);

  Result<ApplicationImage> distributed = rewriter.WriteDistribution(
      *instrumented, output.analysis.distribution, SerializeProfile(output.profile),
      output.classifier_table);
  if (!distributed.ok()) {
    return distributed.status();
  }
  output.distributed_image = std::move(*distributed);

  MeasurementOptions options;
  options.network = network;

  // Default run.
  {
    ObjectSystem system;
    COIGN_RETURN_IF_ERROR(app.Install(&system));
    const ClassPlacement placement = app.DefaultPlacement(system);
    system.SetPlacementPolicy(placement.AsPolicy());
    Result<Scenario> scenario = app.FindScenario(scenario_id);
    Result<RunMeasurement> run = MeasureRun(
        system,
        [&](ObjectSystem& sys) { return scenario->run(sys, rng); },
        options);
    if (!run.ok()) {
      return run.status();
    }
    output.default_run = *run;
  }

  // Coign run.
  {
    ObjectSystem system;
    COIGN_RETURN_IF_ERROR(app.Install(&system));
    Result<std::unique_ptr<CoignRuntime>> runtime =
        CoignRuntime::LoadFromImage(&system, output.distributed_image);
    if (!runtime.ok()) {
      return runtime.status();
    }
    (*runtime)->BeginScenario();
    Result<Scenario> scenario = app.FindScenario(scenario_id);
    Result<RunMeasurement> run = MeasureRun(
        system,
        [&](ObjectSystem& sys) { return scenario->run(sys, rng); },
        options);
    if (!run.ok()) {
      return run.status();
    }
    output.coign_run = *run;
  }
  return output;
}

class PipelineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineTest, CoignNeverWorseThanDefault) {
  Result<PipelineOutput> output =
      RunPipeline(GetParam(), NetworkModel::TenBaseT());
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  // Table 4's invariant, with a whisker of tolerance for cut ties.
  EXPECT_LE(output->coign_run.communication_seconds,
            output->default_run.communication_seconds * 1.01 + 1e-9)
      << GetParam();
}

TEST_P(PipelineTest, DistributedModeWroteLightweightConfig) {
  Result<PipelineOutput> output = RunPipeline(GetParam(), NetworkModel::TenBaseT());
  ASSERT_TRUE(output.ok());
  Result<ConfigurationRecord> config = output->distributed_image.ReadConfig();
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->mode, RuntimeMode::kDistributed);
  EXPECT_FALSE(config->profile_text.empty());
  // The embedded profile parses back.
  EXPECT_TRUE(ParseProfile(config->profile_text).ok());
}

TEST_P(PipelineTest, PredictionTracksDeterministicMeasurement) {
  Result<PipelineOutput> output = RunPipeline(GetParam(), NetworkModel::TenBaseT());
  ASSERT_TRUE(output.ok());
  // Predicted communication (from the profile + fitted network) vs the
  // deterministic simulated run of the chosen distribution. The network
  // profiler's fit is the only error source; the paper reports <= 8%.
  const NetworkProfile exact = NetworkProfile::Exact(NetworkModel::TenBaseT());
  const double predicted = PredictCommunicationSeconds(
      output->profile, output->analysis.distribution, exact);
  const double measured = output->coign_run.communication_seconds;
  if (measured > 1e-6) {
    EXPECT_NEAR(predicted, measured, measured * 0.08) << GetParam();
  } else {
    EXPECT_LE(predicted, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, PipelineTest,
                         ::testing::Values("o_oldwp0", "o_oldtb3", "o_oldbth", "o_fig5",
                                           "p_oldmsr", "p_oldcur", "b_vueone", "b_bigone"),
                         [](const auto& info) { return std::string(info.param); });

TEST(PipelineShapeTest, Figure5TwoComponentsOnServer) {
  Result<PipelineOutput> output = RunPipeline("o_fig5", NetworkModel::TenBaseT());
  ASSERT_TRUE(output.ok());
  // Reader + property provider (+ the file-store infrastructure node).
  EXPECT_LE(output->analysis.server_classifications, 4u);
  EXPECT_GE(output->analysis.server_classifications, 2u);
}

TEST(PipelineShapeTest, BigTableMovesToServerAndSavesMost) {
  Result<PipelineOutput> output = RunPipeline("o_oldtb3", NetworkModel::TenBaseT());
  ASSERT_TRUE(output.ok());
  const double savings = 1.0 - output->coign_run.communication_seconds /
                                   output->default_run.communication_seconds;
  EXPECT_GT(savings, 0.9);  // Paper: 99%.
}

TEST(PipelineShapeTest, BenefitsMovesCachesToClient) {
  Result<PipelineOutput> output = RunPipeline("b_bigone", NetworkModel::TenBaseT());
  ASSERT_TRUE(output.ok());
  // Coign moves a significant share of middle-tier components to the
  // client (Figure 6: 135 on the middle tier vs the programmer's 187).
  EXPECT_GT(output->analysis.client_instances, 20u);
  const double savings = 1.0 - output->coign_run.communication_seconds /
                                   output->default_run.communication_seconds;
  EXPECT_GT(savings, 0.10);
  EXPECT_LT(savings, 0.70);  // It does not collapse the tiering entirely.
}

TEST(PipelineShapeTest, PhotoDrawConstrainedByNonRemotableInterfaces) {
  Result<PipelineOutput> output = RunPipeline("p_oldmsr", NetworkModel::TenBaseT());
  ASSERT_TRUE(output.ok());
  // "PhotoDraw contains many significant interfaces (almost 50) that can
  // not be distributed."
  EXPECT_GT(output->analysis.non_remotable_pairs, 30u);
  // Sprite caches stay on the client; only the reader-side handful moves.
  EXPECT_LT(output->analysis.server_instances, 30u);
}

TEST(PipelineShapeTest, ClassificationTableKeepsIdsStableUnderUnprofiledUsage) {
  // Regression: without the classification table in the configuration
  // record, a lightweight runtime facing usage the profile never saw
  // regenerates classification ids in a different order, scattering the
  // distribution (the file store could even land on the client). With the
  // table, profiled contexts keep their ids whatever the run-time order.
  Result<PipelineOutput> output = RunPipeline("o_oldwp7", NetworkModel::TenBaseT());
  ASSERT_TRUE(output.ok());

  Result<std::unique_ptr<Application>> app = BuildApplicationForScenario("o_oldwp7");
  ASSERT_TRUE(app.ok());
  ObjectSystem system;
  ASSERT_TRUE((*app)->Install(&system).ok());
  Result<std::unique_ptr<CoignRuntime>> runtime =
      CoignRuntime::LoadFromImage(&system, output->distributed_image);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->BeginScenario();
  Rng rng(99);
  // Run a *table* scenario under the text-trained distribution: documents
  // the app was never profiled on.
  Result<Scenario> scenario = (*app)->FindScenario("o_oldtb0");
  ASSERT_TRUE(scenario.ok());
  ASSERT_TRUE(scenario->run(system, rng).ok());
  // The file store's classification was profiled (the text scenario also
  // reads files), so its instance must still land on the server.
  bool store_seen = false;
  for (const auto& info : system.LiveInstances()) {
    if (info.class_name == "Octarine.FileStore") {
      store_seen = true;
      EXPECT_EQ(info.machine, kServerMachine);
    }
  }
  EXPECT_TRUE(store_seen);
  system.DestroyAll();
}

TEST(PipelineShapeTest, DistributionAdaptsToTheNetwork) {
  // Paper §4.4: the optimal distribution changes with the environment. On
  // a (slow) ISDN link the cut should move no more — and typically fewer —
  // components than on fast Ethernet, and communication time rises.
  Result<PipelineOutput> ethernet = RunPipeline("o_oldbth", NetworkModel::TenBaseT());
  Result<PipelineOutput> isdn = RunPipeline("o_oldbth", NetworkModel::Isdn());
  ASSERT_TRUE(ethernet.ok());
  ASSERT_TRUE(isdn.ok());
  EXPECT_GT(isdn->coign_run.communication_seconds,
            ethernet->coign_run.communication_seconds);
  EXPECT_LE(isdn->coign_run.communication_seconds,
            isdn->default_run.communication_seconds * 1.01 + 1e-9);
}

}  // namespace
}  // namespace coign
