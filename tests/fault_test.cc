// Unit tests for the fault-injection layer: schedule queries and seeded
// generation, the injector's per-episode behaviors, and the hardened
// transport's retry/backoff/timeout accounting.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fault/fault_schedule.h"
#include "src/fault/injector.h"
#include "src/net/transport.h"
#include "src/online/episode_detector.h"

namespace coign {
namespace {

FaultEpisode Episode(FaultKind kind, double start, double duration, double magnitude,
                     MachineId machine = kAnyMachine) {
  FaultEpisode episode;
  episode.kind = kind;
  episode.start_seconds = start;
  episode.duration_seconds = duration;
  episode.machine = machine;
  episode.magnitude = magnitude;
  return episode;
}

TEST(FaultScheduleTest, ActiveEpisodeRespectsTimeWindow) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes(
      {Episode(FaultKind::kLatencySpike, 1.0, 2.0, 4.0)});
  EXPECT_EQ(schedule.ActiveEpisode(FaultKind::kLatencySpike, 0.5, 0, 1), nullptr);
  ASSERT_NE(schedule.ActiveEpisode(FaultKind::kLatencySpike, 1.5, 0, 1), nullptr);
  EXPECT_DOUBLE_EQ(
      schedule.ActiveEpisode(FaultKind::kLatencySpike, 1.5, 0, 1)->magnitude, 4.0);
  // End is exclusive.
  EXPECT_EQ(schedule.ActiveEpisode(FaultKind::kLatencySpike, 3.0, 0, 1), nullptr);
}

TEST(FaultScheduleTest, OverlappingEpisodesDegradeToStrongest) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes(
      {Episode(FaultKind::kLatencySpike, 0.0, 10.0, 2.0),
       Episode(FaultKind::kLatencySpike, 1.0, 2.0, 6.0)});
  EXPECT_DOUBLE_EQ(
      schedule.ActiveEpisode(FaultKind::kLatencySpike, 1.5, 0, 1)->magnitude, 6.0);
  EXPECT_DOUBLE_EQ(
      schedule.ActiveEpisode(FaultKind::kLatencySpike, 5.0, 0, 1)->magnitude, 2.0);
}

TEST(FaultScheduleTest, MachineTargetingLimitsBlastRadius) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes(
      {Episode(FaultKind::kPartition, 0.0, 5.0, 1.0, /*machine=*/1)});
  EXPECT_NE(schedule.ActiveEpisode(FaultKind::kPartition, 1.0, 0, 1), nullptr);
  EXPECT_NE(schedule.ActiveEpisode(FaultKind::kPartition, 1.0, 1, 2), nullptr);
  EXPECT_EQ(schedule.ActiveEpisode(FaultKind::kPartition, 1.0, 0, 2), nullptr);
}

TEST(FaultScheduleTest, RandomIsDeterministicPerSeed) {
  RandomFaultOptions options;
  options.horizon_seconds = 20.0;
  options.episodes_per_kind = 2.0;
  const FaultSchedule a = FaultSchedule::Random(options, 42);
  const FaultSchedule b = FaultSchedule::Random(options, 42);
  const FaultSchedule c = FaultSchedule::Random(options, 43);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(FaultScheduleTest, RandomEpisodesStayInHorizonSortedByStart) {
  RandomFaultOptions options;
  options.horizon_seconds = 10.0;
  options.episodes_per_kind = 3.0;
  const FaultSchedule schedule = FaultSchedule::Random(options, 7);
  double last_start = 0.0;
  for (const FaultEpisode& episode : schedule.episodes()) {
    EXPECT_GE(episode.start_seconds, 0.0);
    EXPECT_LE(episode.start_seconds, options.horizon_seconds);
    EXPECT_GE(episode.start_seconds, last_start);
    EXPECT_GT(episode.duration_seconds, 0.0);
    last_start = episode.start_seconds;
  }
}

TEST(FaultInjectorTest, BackgroundDropRateIsRoughlyHonored) {
  FaultRates background;
  background.drop = 0.25;
  FaultInjector injector(FaultSchedule(), background, 11);
  int drops = 0;
  const int kAttempts = 4000;
  for (int i = 0; i < kAttempts; ++i) {
    if (!injector.OnAttempt(0, 1, 100, 100, 0.0).delivered) {
      ++drops;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / kAttempts, 0.25, 0.03);
  EXPECT_EQ(injector.stats().attempts, static_cast<uint64_t>(kAttempts));
  EXPECT_EQ(injector.stats().drops, static_cast<uint64_t>(drops));
}

TEST(FaultInjectorTest, PartitionDropsEverythingWhileActive) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes(
      {Episode(FaultKind::kPartition, 0.0, 1.0, 1.0)});
  FaultInjector injector(schedule, FaultRates{}, 3);
  EXPECT_FALSE(injector.OnAttempt(0, 1, 10, 10, 0.0).delivered);
  injector.AdvanceClock(2.0);  // Past the episode.
  EXPECT_TRUE(injector.OnAttempt(0, 1, 10, 10, 0.0).delivered);
}

TEST(FaultInjectorTest, CrashChargesRestartPenaltyExactlyOnce) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes(
      {Episode(FaultKind::kCrashRestart, 0.0, 1.0, 0.5, /*machine=*/1)});
  FaultInjector injector(schedule, FaultRates{}, 3);
  EXPECT_FALSE(injector.OnAttempt(0, 1, 10, 10, 0.0).delivered);  // Machine down.
  injector.AdvanceClock(2.0);
  const AttemptPlan first = injector.OnAttempt(0, 1, 10, 10, 0.0);
  EXPECT_TRUE(first.delivered);
  EXPECT_DOUBLE_EQ(first.extra_seconds, 0.5);  // Restart penalty, once.
  const AttemptPlan second = injector.OnAttempt(0, 1, 10, 10, 0.0);
  EXPECT_DOUBLE_EQ(second.extra_seconds, 0.0);
  EXPECT_EQ(injector.stats().restart_penalties, 1u);
}

TEST(FaultInjectorTest, ScalesComeFromActiveEpisodes) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes(
      {Episode(FaultKind::kLatencySpike, 0.0, 1.0, 5.0),
       Episode(FaultKind::kBandwidthDrop, 0.0, 1.0, 3.0)});
  FaultInjector injector(schedule, FaultRates{}, 3);
  const AttemptPlan plan = injector.OnAttempt(0, 1, 10, 10, 0.0);
  EXPECT_DOUBLE_EQ(plan.latency_scale, 5.0);
  EXPECT_DOUBLE_EQ(plan.bandwidth_scale, 3.0);
  EXPECT_FALSE(plan.clean());
}

TEST(FaultScheduleTest, FaultKindNamesAreDistinctAndCoverEveryKind) {
  EXPECT_EQ(FaultKindName(FaultKind::kDropBurst), "drop-burst");
  EXPECT_EQ(FaultKindName(FaultKind::kGilbertElliott), "gilbert-elliott");
  EXPECT_EQ(FaultKindName(FaultKind::kCorruptBurst), "corrupt-burst");
  // An episode renders its chain parameters — corrupt bursts are bursty.
  FaultEpisode episode = Episode(FaultKind::kCorruptBurst, 0.0, 1.0, 0.5);
  EXPECT_NE(episode.ToString().find("corrupt-burst"), std::string::npos);
  EXPECT_NE(episode.ToString().find("ge{"), std::string::npos);
}

TEST(FaultScheduleTest, CrashStormCorruptionIsOptIn) {
  CrashStormOptions options;
  const FaultSchedule legacy = FaultSchedule::CrashStorm(options, 5);
  EXPECT_EQ(legacy.ToString().find("corrupt-burst"), std::string::npos);
  options.corruption_rate = 0.3;
  const FaultSchedule corrupt = FaultSchedule::CrashStorm(options, 5);
  EXPECT_NE(corrupt.ToString().find("corrupt-burst"), std::string::npos);
  // The corruption regimes extend the legacy schedule; they never perturb
  // the episodes older seeds already rely on.
  for (const FaultEpisode& episode : legacy.episodes()) {
    EXPECT_NE(corrupt.ToString().find(episode.ToString()), std::string::npos)
        << episode.ToString();
  }
}

// A corrupt episode that damages every covered attempt: both chain states
// corrupt at rate 1, so the Gilbert-Elliott walk cannot save a payload.
FaultEpisode AlwaysCorrupt(double start, double duration) {
  FaultEpisode episode = Episode(FaultKind::kCorruptBurst, start, duration, 1.0);
  episode.gilbert.loss_good = 1.0;
  episode.gilbert.loss_bad = 1.0;
  return episode;
}

TEST(ReliableRoundTripTest, ChecksummedWireRejectsEveryCorruptAttempt) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes({AlwaysCorrupt(0.0, 100.0)});
  FaultInjector injector(schedule, FaultRates{}, 5);
  Transport transport(NetworkModel::TenBaseT());
  transport.AttachFaults(&injector);
  RetryPolicy policy;
  policy.max_attempts = 4;
  transport.SetRetryPolicy(policy);

  const DeliveryReceipt receipt = transport.ReliableRoundTrip(0, 1, 100, 100, nullptr);
  EXPECT_FALSE(receipt.delivered);
  EXPECT_TRUE(receipt.faulted);
  EXPECT_EQ(receipt.attempts, 4);
  EXPECT_EQ(receipt.corrupt_rejected, 4u);
  EXPECT_EQ(receipt.corrupt_consumed, 0u);
  // Detection is active: rejected attempts pay for crossed bytes, never
  // for a timeout.
  EXPECT_GT(receipt.payload_seconds, 0.0);
  EXPECT_LT(receipt.seconds, policy.timeout_seconds);
}

TEST(ReliableRoundTripTest, CorruptEpisodeEndHealsTheRetry) {
  // The episode is shorter than one rejected attempt's wire time, so the
  // first attempt is damaged and the retry lands after the burst.
  FaultSchedule schedule = FaultSchedule::FromEpisodes({AlwaysCorrupt(0.0, 1e-9)});
  FaultInjector injector(schedule, FaultRates{}, 5);
  Transport transport(NetworkModel::TenBaseT());
  transport.AttachFaults(&injector);

  const DeliveryReceipt receipt = transport.ReliableRoundTrip(0, 1, 100, 100, nullptr);
  EXPECT_TRUE(receipt.delivered);
  EXPECT_EQ(receipt.attempts, 2);
  EXPECT_EQ(receipt.corrupt_rejected, 1u);
  EXPECT_EQ(receipt.corrupt_consumed, 0u);
}

TEST(ReliableRoundTripTest, NaiveWireConsumesThePoison) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes({AlwaysCorrupt(0.0, 100.0)});
  FaultInjector injector(schedule, FaultRates{}, 5);
  Transport transport(NetworkModel::TenBaseT());
  transport.AttachFaults(&injector);
  transport.SetChecksums(false);

  const DeliveryReceipt receipt = transport.ReliableRoundTrip(0, 1, 100, 100, nullptr);
  EXPECT_TRUE(receipt.delivered);  // "Delivered" — the caller got garbage.
  EXPECT_TRUE(receipt.faulted);
  EXPECT_EQ(receipt.attempts, 1);
  EXPECT_EQ(receipt.corrupt_consumed, 1u);
  EXPECT_EQ(receipt.corrupt_rejected, 0u);
}

TEST(ReliableRoundTripTest, CleanPathMatchesExpectedTime) {
  Transport transport(NetworkModel::TenBaseT());
  const DeliveryReceipt receipt = transport.ReliableRoundTrip(0, 1, 100, 200, nullptr);
  EXPECT_TRUE(receipt.delivered);
  EXPECT_FALSE(receipt.faulted);
  EXPECT_EQ(receipt.attempts, 1);
  EXPECT_DOUBLE_EQ(receipt.seconds, transport.ExpectedRoundTripSeconds(100, 200));
  EXPECT_DOUBLE_EQ(receipt.seconds,
                   receipt.latency_seconds + receipt.payload_seconds);
}

TEST(ReliableRoundTripTest, RetryBudgetBoundsAttempts) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes(
      {Episode(FaultKind::kPartition, 0.0, 100.0, 1.0)});
  FaultInjector injector(schedule, FaultRates{}, 5);
  Transport transport(NetworkModel::TenBaseT());
  transport.AttachFaults(&injector);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.timeout_seconds = 0.01;
  policy.backoff_initial_seconds = 0.002;
  policy.backoff_jitter = 0.0;
  transport.SetRetryPolicy(policy);

  const DeliveryReceipt receipt = transport.ReliableRoundTrip(0, 1, 100, 100, nullptr);
  EXPECT_FALSE(receipt.delivered);
  EXPECT_TRUE(receipt.faulted);
  EXPECT_EQ(receipt.attempts, 3);
  // 3 timeouts + 2 backoffs (0.002, then 0.004), no jitter.
  EXPECT_NEAR(receipt.seconds, 3 * 0.01 + 0.002 + 0.004, 1e-12);
  EXPECT_DOUBLE_EQ(receipt.payload_seconds, 0.0);  // Nothing was delivered.
}

TEST(ReliableRoundTripTest, BackoffIsCappedAndClockAdvances) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes(
      {Episode(FaultKind::kPartition, 0.0, 100.0, 1.0)});
  FaultInjector injector(schedule, FaultRates{}, 5);
  Transport transport(NetworkModel::TenBaseT());
  transport.AttachFaults(&injector);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.timeout_seconds = 0.01;
  policy.backoff_initial_seconds = 0.02;
  policy.backoff_multiplier = 10.0;
  policy.backoff_max_seconds = 0.05;  // Caps the 3rd/4th waits.
  policy.backoff_jitter = 0.0;
  transport.SetRetryPolicy(policy);

  const DeliveryReceipt receipt = transport.ReliableRoundTrip(0, 1, 100, 100, nullptr);
  EXPECT_EQ(receipt.attempts, 5);
  // 5 timeouts + waits 0.02, then capped 0.05 x3.
  EXPECT_NEAR(receipt.seconds, 5 * 0.01 + 0.02 + 3 * 0.05, 1e-12);
  // The injector's clock saw every modeled second.
  EXPECT_NEAR(injector.now_seconds(), receipt.seconds, 1e-12);
}

TEST(ReliableRoundTripTest, LatencySpikeScalesOnlyTheLatencyShare) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes(
      {Episode(FaultKind::kLatencySpike, 0.0, 100.0, 4.0)});
  FaultInjector injector(schedule, FaultRates{}, 5);
  NetworkModel model = NetworkModel::TenBaseT();
  model.jitter_fraction = 0.0;
  Transport transport(model);
  transport.AttachFaults(&injector);

  const DeliveryReceipt receipt =
      transport.ReliableRoundTrip(0, 1, 1000, 1000, nullptr);
  EXPECT_TRUE(receipt.delivered);
  EXPECT_TRUE(receipt.faulted);
  EXPECT_NEAR(receipt.latency_seconds, 4.0 * 2.0 * model.per_message_seconds, 1e-12);
  EXPECT_NEAR(receipt.payload_seconds, 2000.0 / model.bytes_per_second, 1e-12);
}

TEST(ReliableRoundTripTest, SameSeedReplaysByteForByte) {
  RandomFaultOptions options;
  options.horizon_seconds = 1.0;
  options.episodes_per_kind = 2.0;
  options.mean_duration_seconds = 0.1;
  const FaultSchedule schedule = FaultSchedule::Random(options, 99);
  FaultRates background;
  background.drop = 0.1;
  background.duplicate = 0.05;
  background.reorder = 0.05;

  auto run = [&]() {
    FaultInjector injector(schedule, background, 1234);
    Transport transport(NetworkModel::TenBaseT());
    transport.AttachFaults(&injector);
    double total = 0.0;
    for (int i = 0; i < 200; ++i) {
      total += transport.ReliableRoundTrip(0, 1, 64 * (i % 7), 128, nullptr).seconds;
    }
    return total;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(SuggestedRetryPolicyTest, ScalesWithTheNetworkModel) {
  const RetryPolicy lan = SuggestedRetryPolicy(NetworkModel::TenBaseT());
  const RetryPolicy wan = SuggestedRetryPolicy(NetworkModel::Isdn());
  EXPECT_GT(wan.timeout_seconds, lan.timeout_seconds);
  EXPECT_GT(lan.max_attempts, 1);
  EXPECT_GT(lan.backoff_max_seconds, lan.backoff_initial_seconds);
}

// --- Gilbert-Elliott two-state loss ---------------------------------------

FaultEpisode GilbertEpisode(double start, double duration, GilbertElliottParams params,
                            MachineId machine = kAnyMachine,
                            FaultDirection direction = FaultDirection::kBoth) {
  FaultEpisode episode;
  episode.kind = FaultKind::kGilbertElliott;
  episode.start_seconds = start;
  episode.duration_seconds = duration;
  episode.gilbert = params;
  episode.magnitude = params.loss_bad;
  episode.machine = machine;
  episode.direction = direction;
  return episode;
}

TEST(GilbertElliottTest, LossIsBurstyNotIndependent) {
  // loss_good = 0: every drop happens inside a bad stretch, so the drop
  // fraction must match the chain's stationary bad probability and drops
  // must clump in runs roughly 1/p_bad_to_good long — the burstiness an
  // independent Bernoulli of the same rate cannot produce.
  GilbertElliottParams params;
  params.p_good_to_bad = 0.05;
  params.p_bad_to_good = 0.3;
  params.loss_good = 0.0;
  params.loss_bad = 1.0;
  FaultSchedule schedule =
      FaultSchedule::FromEpisodes({GilbertEpisode(0.0, 1000.0, params)});
  FaultInjector injector(schedule, FaultRates{}, 21);

  const int kAttempts = 20000;
  int drops = 0, runs = 0;
  bool in_run = false;
  for (int i = 0; i < kAttempts; ++i) {
    const bool dropped = !injector.OnAttempt(0, 1, 100, 100, 0.0).delivered;
    if (dropped) {
      ++drops;
      if (!in_run) {
        ++runs;
      }
    }
    in_run = dropped;
  }
  // Stationary P(bad) = p01 / (p01 + p10) = 0.05 / 0.35.
  EXPECT_NEAR(static_cast<double>(drops) / kAttempts, 0.05 / 0.35, 0.02);
  EXPECT_EQ(injector.stats().ge_drops, static_cast<uint64_t>(drops));
  ASSERT_GT(runs, 0);
  // Mean run length ~ 1/0.3 = 3.3; independent loss at this rate gives 1.17.
  EXPECT_GT(static_cast<double>(drops) / runs, 2.0);
}

TEST(GilbertElliottTest, ChainWalkIsDeterministicPerSeed) {
  GilbertElliottParams params;
  params.p_good_to_bad = 0.1;
  params.p_bad_to_good = 0.2;
  params.loss_good = 0.02;
  params.loss_bad = 0.7;
  FaultSchedule schedule =
      FaultSchedule::FromEpisodes({GilbertEpisode(0.0, 1000.0, params)});

  auto trace = [&](uint64_t seed) {
    FaultInjector injector(schedule, FaultRates{}, seed);
    std::string bits;
    for (int i = 0; i < 500; ++i) {
      bits += injector.OnAttempt(0, 1, 64, 64, 0.0).delivered ? '1' : '0';
    }
    return bits;
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));
}

TEST(GilbertElliottTest, InboundDirectionOnlyHitsTrafficTowardTheMachine) {
  // An inbound-only GE episode at machine 1 with certain loss: traffic
  // toward machine 1 dies, traffic from machine 1 sails through — the
  // per-direction asymmetric episode the symmetric kinds cannot express.
  GilbertElliottParams params;
  params.loss_good = 1.0;
  params.loss_bad = 1.0;
  FaultSchedule schedule = FaultSchedule::FromEpisodes({GilbertEpisode(
      0.0, 100.0, params, /*machine=*/1, FaultDirection::kInbound)});
  FaultInjector injector(schedule, FaultRates{}, 3);
  EXPECT_FALSE(injector.OnAttempt(0, 1, 10, 10, 0.0).delivered);  // dst == 1.
  EXPECT_TRUE(injector.OnAttempt(1, 0, 10, 10, 0.0).delivered);   // src == 1.
  EXPECT_TRUE(injector.OnAttempt(2, 0, 10, 10, 0.0).delivered);   // Uninvolved.
}

TEST(GilbertElliottTest, OutboundDirectionMirrorsInbound) {
  GilbertElliottParams params;
  params.loss_good = 1.0;
  params.loss_bad = 1.0;
  FaultSchedule schedule = FaultSchedule::FromEpisodes({GilbertEpisode(
      0.0, 100.0, params, /*machine=*/1, FaultDirection::kOutbound)});
  FaultInjector injector(schedule, FaultRates{}, 3);
  EXPECT_TRUE(injector.OnAttempt(0, 1, 10, 10, 0.0).delivered);
  EXPECT_FALSE(injector.OnAttempt(1, 0, 10, 10, 0.0).delivered);
}

TEST(FaultScheduleTest, RandomSchedulesIncludeGilbertAndAsymmetricEpisodes) {
  RandomFaultOptions options;
  options.horizon_seconds = 50.0;
  options.episodes_per_kind = 2.0;
  int gilbert = 0, asymmetric = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const FaultSchedule schedule = FaultSchedule::Random(options, seed);
    for (const FaultEpisode& episode : schedule.episodes()) {
      if (episode.kind == FaultKind::kGilbertElliott) {
        ++gilbert;
      }
      if (episode.direction != FaultDirection::kBoth) {
        ++asymmetric;
        EXPECT_NE(episode.machine, kAnyMachine);  // Direction needs a target.
      }
    }
  }
  EXPECT_GT(gilbert, 0);
  EXPECT_GT(asymmetric, 0);
}

TEST(FaultScheduleTest, CrashStormIsDeterministicAndCrashHeavy) {
  CrashStormOptions options;
  options.horizon_seconds = 10.0;
  const FaultSchedule a = FaultSchedule::CrashStorm(options, 5);
  const FaultSchedule b = FaultSchedule::CrashStorm(options, 5);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString(), FaultSchedule::CrashStorm(options, 6).ToString());
  int crashes = 0, gilbert = 0;
  for (const FaultEpisode& episode : a.episodes()) {
    crashes += episode.kind == FaultKind::kCrashRestart;
    gilbert += episode.kind == FaultKind::kGilbertElliott;
  }
  EXPECT_EQ(crashes, options.crash_count);
  EXPECT_GT(gilbert, 0);
}

// --- Crash semantics for in-flight transfers -------------------------------

TEST(FaultInjectorTest, CrashOnsetVoidsInFlightTransfers) {
  FaultSchedule schedule = FaultSchedule::FromEpisodes(
      {Episode(FaultKind::kCrashRestart, 1.0, 1.0, 0.0, /*machine=*/1)});
  FaultInjector injector(schedule, FaultRates{}, 3);
  injector.AdvanceClock(0.5);
  // Round trip that would finish before the crash onset: unharmed.
  EXPECT_TRUE(injector.OnAttempt(0, 1, 10, 10, /*expected_seconds=*/0.4).delivered);
  // Round trip still on the wire when machine 1 dies at t=1.0: the
  // receiver dies holding un-acked state, the delivery is void.
  EXPECT_FALSE(injector.OnAttempt(0, 1, 10, 10, /*expected_seconds=*/1.0).delivered);
  EXPECT_EQ(injector.stats().voided_inflight, 1u);
  // Traffic not involving machine 1 is untouched.
  EXPECT_TRUE(injector.OnAttempt(0, 2, 10, 10, /*expected_seconds=*/1.0).delivered);
}

// --- At-most-once delivery: idempotency-token dedup (satellite) ------------

// Scripts the fate of successive attempts, so dedup accounting can be
// asserted exactly rather than statistically.
class ScriptedFaultModel : public TransportFaultModel {
 public:
  explicit ScriptedFaultModel(std::vector<AttemptPlan> plans)
      : plans_(std::move(plans)) {}
  AttemptPlan OnAttempt(MachineId, MachineId, uint64_t, uint64_t, double) override {
    return next_ < plans_.size() ? plans_[next_++] : AttemptPlan{};
  }
  void AdvanceClock(double) override {}
  double JitterUnit() override { return 0.5; }

 private:
  std::vector<AttemptPlan> plans_;
  size_t next_ = 0;
};

TEST(ReliableRoundTripTest, ReplyLegLossMakesTheRetryADuplicate) {
  // Attempt 1: request crosses, receiver executes, reply lost. Attempt 2:
  // delivered — but the receiver saw this token already, so it suppresses
  // the re-execution. At-most-once: one execution, one dedup event.
  AttemptPlan reply_lost;
  reply_lost.delivered = false;
  reply_lost.request_reached = true;
  ScriptedFaultModel model({reply_lost, AttemptPlan{}});
  Transport transport(NetworkModel::TenBaseT());
  transport.AttachFaults(&model);

  const DeliveryReceipt receipt = transport.ReliableRoundTrip(0, 1, 100, 100, nullptr);
  EXPECT_TRUE(receipt.delivered);
  EXPECT_EQ(receipt.attempts, 2);
  EXPECT_EQ(receipt.duplicates_suppressed, 1u);
}

TEST(ReliableRoundTripTest, EveryExtraExecutionIsSuppressedExactlyOnce) {
  // Two consecutive reply-leg losses then a delivery: the receiver
  // executed on attempt 1; attempts 2 and 3 both arrive as duplicates.
  AttemptPlan reply_lost;
  reply_lost.delivered = false;
  reply_lost.request_reached = true;
  ScriptedFaultModel model({reply_lost, reply_lost, AttemptPlan{}});
  Transport transport(NetworkModel::TenBaseT());
  transport.AttachFaults(&model);

  const DeliveryReceipt receipt = transport.ReliableRoundTrip(0, 1, 100, 100, nullptr);
  EXPECT_TRUE(receipt.delivered);
  EXPECT_EQ(receipt.attempts, 3);
  EXPECT_EQ(receipt.duplicates_suppressed, 2u);
}

TEST(ReliableRoundTripTest, RequestLegLossIsNotADuplicate) {
  // The request never reached the receiver: the retry is the first
  // execution, nothing to suppress.
  AttemptPlan request_lost;
  request_lost.delivered = false;
  ScriptedFaultModel model({request_lost, AttemptPlan{}});
  Transport transport(NetworkModel::TenBaseT());
  transport.AttachFaults(&model);

  const DeliveryReceipt receipt = transport.ReliableRoundTrip(0, 1, 100, 100, nullptr);
  EXPECT_TRUE(receipt.delivered);
  EXPECT_EQ(receipt.attempts, 2);
  EXPECT_EQ(receipt.duplicates_suppressed, 0u);
}

TEST(ReliableRoundTripTest, WireDuplicatesCountAsSuppressed) {
  AttemptPlan duplicated;
  duplicated.duplicated = true;
  ScriptedFaultModel model({duplicated});
  Transport transport(NetworkModel::TenBaseT());
  transport.AttachFaults(&model);

  const DeliveryReceipt receipt = transport.ReliableRoundTrip(0, 1, 100, 100, nullptr);
  EXPECT_TRUE(receipt.delivered);
  EXPECT_EQ(receipt.duplicate_messages, 1u);
  EXPECT_EQ(receipt.duplicates_suppressed, 1u);
}

TEST(ReliableRoundTripTest, DedupCountersMatchInjectorReplyDrops) {
  // Statistical cross-check against the real injector: with generous
  // retries every reply-leg loss is followed by another execution, so the
  // suppressed count must be reply drops plus wire duplicates.
  FaultRates background;
  background.drop = 0.3;
  background.duplicate = 0.05;
  FaultInjector injector(FaultSchedule(), background, 77);
  Transport transport(NetworkModel::TenBaseT());
  transport.AttachFaults(&injector);
  RetryPolicy policy = SuggestedRetryPolicy(NetworkModel::TenBaseT());
  policy.max_attempts = 12;  // Effectively always delivers eventually.
  transport.SetRetryPolicy(policy);

  uint64_t suppressed = 0, undelivered = 0;
  for (int i = 0; i < 500; ++i) {
    const DeliveryReceipt receipt = transport.ReliableRoundTrip(0, 1, 128, 64, nullptr);
    suppressed += receipt.duplicates_suppressed;
    undelivered += receipt.delivered ? 0 : 1;
  }
  ASSERT_EQ(undelivered, 0u);
  EXPECT_GT(injector.stats().reply_drops, 0u);
  EXPECT_EQ(suppressed, injector.stats().reply_drops + injector.stats().duplicates);
}

// --- FaultEpisodeDetector: the quarantine rule in isolation ---------------

// A healthy epoch: 1000 calls, 1% faulted, 1 ms/call latency, 1 us/byte.
EpochHealthSample HealthyEpoch() {
  EpochHealthSample epoch;
  epoch.calls = 1000;
  epoch.faulted_calls = 10;
  epoch.wire_bytes = 1000000;
  epoch.latency_seconds = 1.0;
  epoch.payload_seconds = 1.0;
  return epoch;
}

TEST(EpisodeDetectorTest, FaultBurstQuarantinesAndHoldExpires) {
  QuarantineConfig config;
  config.hold_epochs = 1;
  FaultEpisodeDetector detector(config);

  EXPECT_FALSE(detector.Observe(HealthyEpoch()).quarantine);  // Primes.
  EXPECT_FALSE(detector.Observe(HealthyEpoch()).quarantine);

  EpochHealthSample burst = HealthyEpoch();
  burst.faulted_calls = 300;  // 30% >> 5% + 3 * 1% baseline.
  const FaultEpisodeDetector::Verdict fired = detector.Observe(burst);
  EXPECT_EQ(fired.episode, FaultEpisodeDetector::Trigger::kFaultedFraction);
  EXPECT_TRUE(fired.quarantine);

  // The hold distrusts the tail, then a healthy epoch clears.
  const FaultEpisodeDetector::Verdict held = detector.Observe(HealthyEpoch());
  EXPECT_EQ(held.episode, FaultEpisodeDetector::Trigger::kNone);
  EXPECT_TRUE(held.quarantine);
  EXPECT_FALSE(detector.Observe(HealthyEpoch()).quarantine);
}

TEST(EpisodeDetectorTest, SilentLatencySlowdownQuarantines) {
  FaultEpisodeDetector detector(QuarantineConfig{});
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(detector.Observe(HealthyEpoch()).quarantine);
  }

  // The wire slows 5x but not one call is marked faulted: the pre-slowdown
  // detector (faulted fraction only) would happily feed this epoch to the
  // window and the live estimator.
  EpochHealthSample congested = HealthyEpoch();
  congested.faulted_calls = 10;
  congested.latency_seconds = 5.0;
  const FaultEpisodeDetector::Verdict verdict = detector.Observe(congested);
  EXPECT_EQ(verdict.episode, FaultEpisodeDetector::Trigger::kLatencySlowdown);
  EXPECT_TRUE(verdict.quarantine);
}

TEST(EpisodeDetectorTest, SilentPayloadSlowdownQuarantines) {
  FaultEpisodeDetector detector(QuarantineConfig{});
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(detector.Observe(HealthyEpoch()).quarantine);
  }
  EpochHealthSample squeezed = HealthyEpoch();
  squeezed.payload_seconds = 4.0;  // Per-byte time 4x baseline.
  const FaultEpisodeDetector::Verdict verdict = detector.Observe(squeezed);
  EXPECT_EQ(verdict.episode, FaultEpisodeDetector::Trigger::kPayloadSlowdown);
  EXPECT_TRUE(verdict.quarantine);
}

TEST(EpisodeDetectorTest, SteadyDegradationBecomesTheBaseline) {
  QuarantineConfig config;
  config.hold_epochs = 0;
  FaultEpisodeDetector detector(config);
  detector.Observe(HealthyEpoch());

  // A permanently slower link: 2.5x latency every epoch, under the 3x
  // trigger. No epoch may quarantine and the baseline must converge to the
  // new normal — steady slow is the network, not an endless episode.
  EpochHealthSample slow = HealthyEpoch();
  slow.latency_seconds = 2.5;
  int quarantined_tail = 0;
  for (int i = 0; i < 30; ++i) {
    const bool quarantined = detector.Observe(slow).quarantine;
    if (i >= 20 && quarantined) {
      ++quarantined_tail;
    }
  }
  EXPECT_EQ(quarantined_tail, 0);
  EXPECT_NEAR(detector.latency_baseline(), 2.5e-3, 2.5e-4);
}

TEST(EpisodeDetectorTest, QuarantinedEpochsDoNotPoisonTheBaselines) {
  QuarantineConfig config;
  config.hold_epochs = 0;
  FaultEpisodeDetector detector(config);
  detector.Observe(HealthyEpoch());
  detector.Observe(HealthyEpoch());
  const double before = detector.latency_baseline();

  // A 10x episode, many epochs long: every epoch quarantines and the
  // baseline must not learn it.
  EpochHealthSample episode = HealthyEpoch();
  episode.latency_seconds = 10.0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(detector.Observe(episode).quarantine) << i;
  }
  EXPECT_DOUBLE_EQ(detector.latency_baseline(), before);
  EXPECT_FALSE(detector.Observe(HealthyEpoch()).quarantine);
}

TEST(EpisodeDetectorTest, IdleEpochsLeaveRateBaselinesAlone) {
  FaultEpisodeDetector detector(QuarantineConfig{});
  detector.Observe(HealthyEpoch());
  detector.Observe(HealthyEpoch());
  const double latency = detector.latency_baseline();
  const double payload = detector.payload_baseline();
  detector.Observe(EpochHealthSample{});  // Nothing on the wire.
  EXPECT_DOUBLE_EQ(detector.latency_baseline(), latency);
  EXPECT_DOUBLE_EQ(detector.payload_baseline(), payload);
}

}  // namespace
}  // namespace coign
