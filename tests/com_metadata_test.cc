#include "src/com/metadata.h"

#include <gtest/gtest.h>

namespace coign {
namespace {

InterfaceDesc MakeSample() {
  return InterfaceBuilder("ISample")
      .Method("DoThing")
      .In("count", ValueKind::kInt32)
      .Out("result", ValueKind::kBlob)
      .Method("Other")
      .InOut("buffer", ValueKind::kString)
      .Build();
}

TEST(InterfaceBuilderTest, BuildsMethodsAndParams) {
  const InterfaceDesc desc = MakeSample();
  EXPECT_EQ(desc.name, "ISample");
  EXPECT_TRUE(desc.remotable);
  ASSERT_EQ(desc.methods.size(), 2u);
  EXPECT_EQ(desc.methods[0].name, "DoThing");
  ASSERT_EQ(desc.methods[0].params.size(), 2u);
  EXPECT_EQ(desc.methods[0].params[0].direction, ParamDirection::kIn);
  EXPECT_EQ(desc.methods[0].params[1].direction, ParamDirection::kOut);
  EXPECT_EQ(desc.methods[0].params[1].kind, ValueKind::kBlob);
  EXPECT_EQ(desc.methods[1].params[0].direction, ParamDirection::kInOut);
}

TEST(InterfaceBuilderTest, IidDerivedFromName) {
  EXPECT_EQ(MakeSample().iid, Guid::FromName("iid:ISample"));
}

TEST(InterfaceBuilderTest, NonRemotable) {
  const InterfaceDesc desc = InterfaceBuilder("IOpaque").NonRemotable().Method("M").Build();
  EXPECT_FALSE(desc.remotable);
}

TEST(InterfaceDescTest, FindMethodBounds) {
  const InterfaceDesc desc = MakeSample();
  EXPECT_NE(desc.FindMethod(0), nullptr);
  EXPECT_NE(desc.FindMethod(1), nullptr);
  EXPECT_EQ(desc.FindMethod(2), nullptr);
}

TEST(InterfaceRegistryTest, RegisterAndLookup) {
  InterfaceRegistry registry;
  ASSERT_TRUE(registry.Register(MakeSample()).ok());
  EXPECT_EQ(registry.size(), 1u);
  const InterfaceDesc* by_iid = registry.Lookup(Guid::FromName("iid:ISample"));
  ASSERT_NE(by_iid, nullptr);
  EXPECT_EQ(by_iid->name, "ISample");
  EXPECT_EQ(registry.LookupByName("ISample"), by_iid);
  EXPECT_EQ(registry.LookupByName("IMissing"), nullptr);
  EXPECT_EQ(registry.Lookup(Guid::FromName("iid:IMissing")), nullptr);
}

TEST(InterfaceRegistryTest, RejectsDuplicates) {
  InterfaceRegistry registry;
  ASSERT_TRUE(registry.Register(MakeSample()).ok());
  const Status dup = registry.Register(MakeSample());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(InterfaceRegistryTest, AllEnumerates) {
  InterfaceRegistry registry;
  ASSERT_TRUE(registry.Register(MakeSample()).ok());
  ASSERT_TRUE(registry.Register(InterfaceBuilder("IOther").Method("M").Build()).ok());
  EXPECT_EQ(registry.All().size(), 2u);
}

}  // namespace
}  // namespace coign
