// Exercises the Coign runtime end to end on a miniature application: a Ui
// component (GUI APIs) that creates a Worker, which pulls data from a Store
// component (storage APIs).

#include "src/runtime/rte.h"

#include <gtest/gtest.h>

#include "src/apps/component_library.h"
#include "src/runtime/binary_rewriter.h"

namespace coign {
namespace {

enum Method : MethodIndex { kRun = 0, kPull = 1 };

class RteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.interfaces()
                    .Register(InterfaceBuilder("IMini")
                                  .Method("Run")
                                  .In("n", ValueKind::kInt32)
                                  .Out("ok", ValueKind::kBool)
                                  .Method("Pull")
                                  .In("n", ValueKind::kInt32)
                                  .Out("data", ValueKind::kBlob)
                                  .Build())
                    .ok());
    iid_ = system_.interfaces().LookupByName("IMini")->iid;

    // Ui::Run -> creates Worker, calls Worker::Run.
    // Worker::Run -> creates Store, pulls n blobs.
    // Store::Pull -> returns a 1 KB blob.
    handlers_.Set(iid_, kRun, [this](ScriptedComponent& self, const Message& in,
                                     Message* out) {
      ObjectSystem& sys = *self.system();
      sys.ChargeCompute(1e-4);
      const ClassDesc* my_class = sys.ClassOf(self.id());
      if (my_class->name == "Mini.Ui") {
        Result<ObjectRef> worker =
            sys.CreateInstance(Guid::FromName("clsid:Mini.Worker"), iid_);
        if (!worker.ok()) {
          return worker.status();
        }
        Message run_in;
        run_in.Add("n", *in.Find("n"));
        Message run_out;
        return sys.Call(*worker, kRun, run_in, &run_out);
      }
      // Worker.
      Result<ObjectRef> store = sys.CreateInstance(Guid::FromName("clsid:Mini.Store"), iid_);
      if (!store.ok()) {
        return store.status();
      }
      const int32_t n = in.Find("n")->AsInt32();
      for (int32_t i = 0; i < n; ++i) {
        Message pull_in;
        pull_in.Add("n", Value::FromInt32(i));
        Message pull_out;
        COIGN_RETURN_IF_ERROR(sys.Call(*store, kPull, pull_in, &pull_out));
      }
      out->Add("ok", Value::FromBool(true));
      return Status::Ok();
    });
    handlers_.Set(iid_, kPull, [](ScriptedComponent& self, const Message& in, Message* out) {
      self.system()->ChargeCompute(1e-5);
      out->Add("data", Value::BlobOfSize(1024, static_cast<uint64_t>(
                                                   in.Find("n")->AsInt32())));
      return Status::Ok();
    });

    ASSERT_TRUE(
        RegisterScriptedClass(&system_, "Mini.Ui", {iid_}, kApiGui, &handlers_).ok());
    ASSERT_TRUE(
        RegisterScriptedClass(&system_, "Mini.Worker", {iid_}, kApiNone, &handlers_).ok());
    ASSERT_TRUE(
        RegisterScriptedClass(&system_, "Mini.Store", {iid_}, kApiStorage, &handlers_).ok());
  }

  Status RunUi(int32_t pulls) {
    Result<ObjectRef> ui = system_.CreateInstanceByName("Mini.Ui", "IMini");
    if (!ui.ok()) {
      return ui.status();
    }
    Message in;
    in.Add("n", Value::FromInt32(pulls));
    Message out;
    return system_.Call(*ui, kRun, in, &out);
  }

  ObjectSystem system_;
  HandlerTable handlers_;
  InterfaceId iid_;
};

TEST_F(RteTest, ProfilingModeSummarizesCommunication) {
  ConfigurationRecord config;  // Profiling defaults.
  CoignRuntime runtime(&system_, config);
  runtime.BeginScenario();
  ASSERT_TRUE(RunUi(5).ok());

  ASSERT_NE(runtime.profiling_logger(), nullptr);
  const IccProfile& profile = runtime.profiling_logger()->profile();
  EXPECT_EQ(profile.classifications().size(), 3u);  // Ui, Worker, Store.
  // Calls observed: Ui.Run + Worker.Run + 5 pulls.
  EXPECT_EQ(runtime.calls_observed(), 7u);
  EXPECT_EQ(profile.total_calls(), 7u);
  EXPECT_GT(profile.total_bytes(), 5u * 1024);  // Deep-copied pull replies.
  EXPECT_GT(profile.total_compute_seconds(), 0.0);

  // API usage metadata captured for constraints.
  bool saw_gui = false, saw_storage = false;
  for (const auto& [id, info] : profile.classifications()) {
    saw_gui |= (info.api_usage & kApiGui) != 0;
    saw_storage |= (info.api_usage & kApiStorage) != 0;
    EXPECT_EQ(info.instance_count, 1u);
  }
  EXPECT_TRUE(saw_gui);
  EXPECT_TRUE(saw_storage);

  // Interface wrapping happened for every called interface.
  EXPECT_GE(runtime.interfaces_wrapped(), 3u);
}

TEST_F(RteTest, ProfilingModeKeepsPlacementLocal) {
  ConfigurationRecord config;
  CoignRuntime runtime(&system_, config);
  runtime.BeginScenario();
  ASSERT_TRUE(RunUi(2).ok());
  for (const auto& info : system_.LiveInstances()) {
    EXPECT_EQ(info.machine, kClientMachine);
  }
  EXPECT_EQ(runtime.remote_calls_observed(), 0u);
}

TEST_F(RteTest, DistributedModeRelocatesInstantiations) {
  // First profile to learn the classifications.
  ConfigurationRecord profiling;
  Distribution distribution;
  {
    CoignRuntime runtime(&system_, profiling);
    runtime.BeginScenario();
    ASSERT_TRUE(RunUi(3).ok());
    // Build a distribution by class name: Store and Worker to the server.
    const IccProfile& profile = runtime.profiling_logger()->profile();
    for (const auto& [id, info] : profile.classifications()) {
      distribution.placement[id] =
          (info.class_name == "Mini.Ui") ? kClientMachine : kServerMachine;
    }
    system_.DestroyAll();
  }

  ConfigurationRecord light;
  light.mode = RuntimeMode::kDistributed;
  light.distribution = distribution;
  CoignRuntime runtime(&system_, light);
  runtime.BeginScenario();
  ASSERT_TRUE(RunUi(3).ok());

  EXPECT_EQ(runtime.mode(), RuntimeMode::kDistributed);
  EXPECT_EQ(runtime.profiling_logger(), nullptr);  // Null logger in place.
  int on_server = 0;
  for (const auto& info : system_.LiveInstances()) {
    if (info.machine == kServerMachine) {
      ++on_server;
      EXPECT_NE(info.class_name, "Mini.Ui");
    }
  }
  EXPECT_EQ(on_server, 2);  // Worker + Store.
  EXPECT_GT(runtime.remote_calls_observed(), 0u);

  // The client factory trapped the Ui-driver instantiation locally and
  // forwarded the Worker instantiation; the Store instantiation was
  // trapped on the server (by the Worker) and fulfilled there.
  EXPECT_EQ(runtime.client_factory().local_instantiations(), 1u);
  EXPECT_EQ(runtime.client_factory().forwarded_instantiations(), 1u);
  EXPECT_EQ(runtime.server_factory().local_instantiations(), 1u);
  EXPECT_EQ(runtime.server_factory().fulfilled_for_peer(), 1u);
}

TEST_F(RteTest, LoadFromImageRequiresInstrumentation) {
  ApplicationImage raw;
  raw.name = "mini.exe";
  raw.import_table = {"ole32.dll"};
  EXPECT_EQ(CoignRuntime::LoadFromImage(&system_, raw).status().code(),
            StatusCode::kFailedPrecondition);

  BinaryRewriter rewriter;
  Result<ApplicationImage> instrumented = rewriter.Instrument(raw, ConfigurationRecord());
  ASSERT_TRUE(instrumented.ok());
  Result<std::unique_ptr<CoignRuntime>> runtime =
      CoignRuntime::LoadFromImage(&system_, *instrumented);
  ASSERT_TRUE(runtime.ok());
  EXPECT_EQ((*runtime)->mode(), RuntimeMode::kProfiling);
}

TEST_F(RteTest, EventLoggerTracesEverything) {
  ConfigurationRecord config;
  CoignRuntime runtime(&system_, config);
  EventLogger events;
  runtime.AddLogger(&events);
  runtime.BeginScenario();
  ASSERT_TRUE(RunUi(1).ok());
  system_.DestroyAll();

  int instantiations = 0, destructions = 0, calls = 0, wraps = 0;
  for (const ProfileEvent& event : events.events()) {
    switch (event.kind) {
      case EventKind::kComponentInstantiation:
        ++instantiations;
        break;
      case EventKind::kComponentDestruction:
        ++destructions;
        break;
      case EventKind::kInterfaceCall:
        ++calls;
        break;
      case EventKind::kInterfaceInstantiation:
        ++wraps;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(instantiations, 3);
  EXPECT_EQ(destructions, 3);
  EXPECT_EQ(calls, 3);  // Run + Run + 1 pull.
  EXPECT_GE(wraps, 3);
}

TEST_F(RteTest, EventLoggerBoundsMemory) {
  EventLogger bounded(/*max_events=*/2);
  ConfigurationRecord config;
  CoignRuntime runtime(&system_, config);
  runtime.AddLogger(&bounded);
  runtime.BeginScenario();
  ASSERT_TRUE(RunUi(5).ok());
  EXPECT_EQ(bounded.events().size(), 2u);
  EXPECT_GT(bounded.dropped_events(), 0u);
  bounded.Clear();
  EXPECT_TRUE(bounded.events().empty());
  EXPECT_EQ(bounded.dropped_events(), 0u);
}

TEST_F(RteTest, BeginScenarioResetsPerExecutionState) {
  ConfigurationRecord config;
  CoignRuntime runtime(&system_, config);
  runtime.BeginScenario();
  ASSERT_TRUE(RunUi(2).ok());
  const size_t classifications_after_first =
      runtime.classifier().classification_count();
  system_.DestroyAll();

  runtime.BeginScenario();
  ASSERT_TRUE(RunUi(2).ok());
  // Same scenario, same contexts: no new classifications.
  EXPECT_EQ(runtime.classifier().classification_count(), classifications_after_first);
  // Profile keeps accumulating across scenarios.
  EXPECT_EQ(runtime.profiling_logger()->profile().total_calls(), 8u);
}

TEST_F(RteTest, DetachOnDestructionStopsInterception) {
  {
    ConfigurationRecord config;
    CoignRuntime runtime(&system_, config);
    runtime.BeginScenario();
    ASSERT_TRUE(RunUi(1).ok());
  }
  // Runtime destroyed: the app still works, un-instrumented.
  ASSERT_TRUE(RunUi(1).ok());
}

}  // namespace
}  // namespace coign
