#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "src/online/migration_journal.h"

namespace coign {
namespace {

MigrationJournal TestJournal() {
  MigrationJournal journal;
  journal.Append({MigrationPhase::kIntent, 7, kClientMachine, kServerMachine, 512});
  journal.Append({MigrationPhase::kPrepared, 7, kClientMachine, kServerMachine, 512});
  journal.Append({MigrationPhase::kCommitted, 7, kClientMachine, kServerMachine, 512});
  journal.Append({MigrationPhase::kIntent, 9, kServerMachine, kClientMachine, 64});
  journal.Append({MigrationPhase::kRolledBack, 9, kServerMachine, kClientMachine, 64});
  journal.Append({MigrationPhase::kIntent, 11, kClientMachine, kServerMachine, 2048});
  return journal;
}

void ExpectSameRecords(const MigrationJournal& a, const MigrationJournal& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records()[i].ToString(), b.records()[i].ToString()) << "record " << i;
  }
}

TEST(MigrationJournalPersistTest, SaveLoadRoundTripsExactly) {
  const MigrationJournal journal = TestJournal();
  const std::string path = ::testing::TempDir() + "/coign_journal_roundtrip.txt";
  ASSERT_TRUE(journal.SaveToFile(path).ok());
  Result<MigrationJournal> loaded = MigrationJournal::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameRecords(journal, *loaded);
  EXPECT_FALSE(loaded->recovered_torn_tail());
  // Recovery semantics survive the round trip: instance 11 is still the
  // only one in flight.
  const std::vector<MigrationRecord> in_flight = loaded->InFlight();
  ASSERT_EQ(in_flight.size(), 1u);
  EXPECT_EQ(in_flight[0].instance, 11u);
  EXPECT_EQ(loaded->Serialize(), journal.Serialize());
  std::remove(path.c_str());
}

TEST(MigrationJournalPersistTest, LoadMissingFileIsNotFound) {
  Result<MigrationJournal> loaded =
      MigrationJournal::LoadFromFile(::testing::TempDir() + "/coign_no_such_journal");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(MigrationJournalPersistTest, BytesAfterFinalNewlineAreDroppedAsTorn) {
  const MigrationJournal journal = TestJournal();
  // A crash mid-append: the new record's bytes made it to disk but not its
  // terminating newline. Those bytes were never durably written.
  const std::string text = journal.Serialize() + "rec intent 13 0 1 99";
  Result<MigrationJournal> parsed = MigrationJournal::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->recovered_torn_tail());
  ExpectSameRecords(journal, *parsed);
  EXPECT_EQ(parsed->LastFor(13), nullptr);
}

TEST(MigrationJournalPersistTest, TruncatedFinalRecordIsDroppedAsTorn) {
  const MigrationJournal journal = TestJournal();
  // The final line has its newline but lost half its fields.
  const std::string text = journal.Serialize() + "rec prepared 13\n";
  Result<MigrationJournal> parsed = MigrationJournal::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->recovered_torn_tail());
  ExpectSameRecords(journal, *parsed);
}

TEST(MigrationJournalPersistTest, DamageBeforeTheTailIsSkippedAndCounted) {
  const MigrationJournal journal = TestJournal();
  std::string text = journal.Serialize();
  // Mangle the first record line: it is covered by later newlines, so this
  // is corruption, not tearing. The v2 CRC localizes it — exactly that
  // record is dropped and counted, the rest of the journal survives.
  const size_t first_rec = text.find("rec intent");
  ASSERT_NE(first_rec, std::string::npos);
  text.replace(first_rec, 10, "rec mangle");
  Result<MigrationJournal> parsed = MigrationJournal::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->corrupt_skipped(), 1u);
  EXPECT_EQ(parsed->size(), journal.size() - 1);
  EXPECT_FALSE(parsed->recovered_torn_tail());
}

// Strips the v2 CRC fields off a serialized journal, producing the v1 form
// old snapshots on disk still carry.
std::string ToV1(const MigrationJournal& journal) {
  std::istringstream in(journal.Serialize());
  std::string line;
  std::getline(in, line);  // Header.
  std::string out = "migration-journal v1\n";
  while (std::getline(in, line)) {
    out += line.substr(0, line.find_last_of(' '));
    out += '\n';
  }
  return out;
}

TEST(MigrationJournalPersistTest, V1SnapshotsStillLoad) {
  const MigrationJournal journal = TestJournal();
  Result<MigrationJournal> parsed = MigrationJournal::Parse(ToV1(journal));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameRecords(journal, *parsed);
  EXPECT_EQ(parsed->corrupt_skipped(), 0u);
}

TEST(MigrationJournalPersistTest, V1DamageBeforeTheTailStaysAHardError) {
  // v1 has no per-record checksum: mid-file damage cannot be localized and
  // must still fail loudly rather than be silently dropped.
  std::string text = ToV1(TestJournal());
  const size_t first_rec = text.find("rec intent");
  ASSERT_NE(first_rec, std::string::npos);
  text.replace(first_rec, 10, "rec mangle");
  EXPECT_FALSE(MigrationJournal::Parse(text).ok());
}

TEST(MigrationJournalPersistTest, FlippedCrcDigitDropsOnlyThatRecord) {
  const MigrationJournal journal = TestJournal();
  std::string text = journal.Serialize();
  // Flip one digit of the second record's CRC field: the record body is
  // intact but no longer proves itself, so it is dropped and counted.
  const size_t second_line_end = text.find('\n', text.find("rec prepared"));
  ASSERT_NE(second_line_end, std::string::npos);
  char& digit = text[second_line_end - 1];
  digit = digit == '0' ? '1' : '0';
  Result<MigrationJournal> parsed = MigrationJournal::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->corrupt_skipped(), 1u);
  EXPECT_EQ(parsed->size(), journal.size() - 1);
  EXPECT_EQ(parsed->LastFor(7)->phase, MigrationPhase::kCommitted);
}

TEST(MigrationJournalPersistTest, EmptyJournalRoundTrips) {
  const MigrationJournal journal;
  Result<MigrationJournal> parsed = MigrationJournal::Parse(journal.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->empty());
  EXPECT_FALSE(parsed->recovered_torn_tail());
}

}  // namespace
}  // namespace coign
