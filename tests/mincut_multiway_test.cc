#include "src/mincut/multiway.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace coign {
namespace {

CapUnits AssignmentWeight(const EdgeList& edges, const std::vector<int>& assignment) {
  CapUnits weight = 0;
  for (const auto& [a, b, w] : edges) {
    if (assignment[static_cast<size_t>(a)] != assignment[static_cast<size_t>(b)]) {
      weight = SatAdd(weight, w);
    }
  }
  return weight;
}

TEST(MultiwayCutTest, TwoTerminalsMatchesExactMinCutStructure) {
  // Triangle-ish: node 2 clearly belongs with terminal 1.
  EdgeList edges = {{0, 2, 10}, {2, 1, 50}};
  const MultiwayCutResult result = MultiwayCutIsolation(3, edges, {0, 1});
  EXPECT_EQ(result.assignment[0], 0);
  EXPECT_EQ(result.assignment[1], 1);
  EXPECT_EQ(result.assignment[2], 1);
  EXPECT_EQ(result.total_weight, 10);
}

TEST(MultiwayCutTest, ThreeClusters) {
  // Three tight clusters, one terminal each, thin inter-cluster links.
  // Nodes: 0-2 cluster A, 3-5 cluster B, 6-8 cluster C. Weights in units
  // (the old fixture scaled by 10 to stay integral).
  EdgeList edges;
  auto clique = [&edges](int base) {
    edges.emplace_back(base, base + 1, 100);
    edges.emplace_back(base + 1, base + 2, 100);
    edges.emplace_back(base, base + 2, 100);
  };
  clique(0);
  clique(3);
  clique(6);
  edges.emplace_back(2, 3, 5);
  edges.emplace_back(5, 6, 5);
  edges.emplace_back(8, 0, 5);

  const MultiwayCutResult result = MultiwayCutIsolation(9, edges, {0, 3, 6});
  // Each cluster stays whole with its terminal.
  for (int v = 0; v < 3; ++v) {
    EXPECT_EQ(result.assignment[static_cast<size_t>(v)], 0) << v;
  }
  for (int v = 3; v < 6; ++v) {
    EXPECT_EQ(result.assignment[static_cast<size_t>(v)], 1) << v;
  }
  for (int v = 6; v < 9; ++v) {
    EXPECT_EQ(result.assignment[static_cast<size_t>(v)], 2) << v;
  }
  EXPECT_EQ(result.total_weight, 15);
  EXPECT_EQ(result.total_weight, AssignmentWeight(edges, result.assignment));
}

TEST(MultiwayCutTest, TerminalsAlwaysKeepTheirOwnSide) {
  EdgeList edges = {{0, 1, 100}, {1, 2, 100}, {0, 2, 100}};
  const MultiwayCutResult result = MultiwayCutIsolation(3, edges, {0, 1, 2});
  EXPECT_EQ(result.assignment[0], 0);
  EXPECT_EQ(result.assignment[1], 1);
  EXPECT_EQ(result.assignment[2], 2);
}

TEST(MultiwayCutTest, IsolatedNodesLandWithDiscardedTerminal) {
  // Node 3 has no edges; the heuristic leaves it with the terminal whose
  // isolating cut was discarded. Whatever the side, the weight is stable.
  EdgeList edges = {{0, 1, 1}};
  const MultiwayCutResult result = MultiwayCutIsolation(4, edges, {0, 1, 2});
  EXPECT_EQ(result.assignment.size(), 4u);
  EXPECT_EQ(result.total_weight, AssignmentWeight(edges, result.assignment));
}

TEST(MultiwayCutTest, CrossingSentinelEdgeSaturatesTotalWeight) {
  // Terminals 0 and 1 pinned together by a sentinel edge: the heuristic
  // must still terminate and report exactly kInfiniteCapacity so the
  // analysis layer can detect the unsatisfiable pin with ==.
  EdgeList edges = {{0, 1, kInfiniteCapacity}, {0, 2, 3}, {2, 1, 3}};
  const MultiwayCutResult result = MultiwayCutIsolation(3, edges, {0, 1});
  EXPECT_EQ(result.total_weight, kInfiniteCapacity);
}

// Property: the isolation heuristic is within 2(1 - 1/k) of any partition
// we can find by brute force on small random instances. Cut weights are
// exact integers; only the approximation ratio itself needs doubles.
class MultiwayPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiwayPropertyTest, WithinApproximationBoundOfBruteForce) {
  Rng rng(GetParam());
  const int n = 7;
  const std::vector<int> terminals = {0, 1, 2};
  EdgeList edges;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (rng.Bernoulli(0.6)) {
        edges.emplace_back(a, b, rng.UniformInt(1, 5'000'000));
      }
    }
  }
  const MultiwayCutResult result = MultiwayCutIsolation(n, edges, terminals);
  EXPECT_EQ(result.total_weight, AssignmentWeight(edges, result.assignment));

  // Brute force over the 3^(n-3) assignments of free nodes.
  CapUnits best = kInfiniteCapacity;
  std::vector<int> assignment(n);
  assignment[0] = 0;
  assignment[1] = 1;
  assignment[2] = 2;
  const int free_nodes = n - 3;
  int combos = 1;
  for (int i = 0; i < free_nodes; ++i) {
    combos *= 3;
  }
  for (int mask = 0; mask < combos; ++mask) {
    int m = mask;
    for (int i = 0; i < free_nodes; ++i) {
      assignment[static_cast<size_t>(3 + i)] = m % 3;
      m /= 3;
    }
    best = std::min(best, AssignmentWeight(edges, assignment));
  }
  const double bound = 2.0 * (1.0 - 1.0 / 3.0);
  EXPECT_LE(static_cast<double>(result.total_weight),
            static_cast<double>(best) * bound);
  EXPECT_GE(result.total_weight, best);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiwayPropertyTest,
                         ::testing::Range(uint64_t{2000}, uint64_t{2012}));

}  // namespace
}  // namespace coign
