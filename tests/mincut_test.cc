#include <gtest/gtest.h>

#include "src/mincut/edmonds_karp.h"
#include "src/mincut/flow_network.h"
#include "src/mincut/relabel_to_front.h"
#include "src/support/rng.h"

namespace coign {
namespace {

using CutFn = CutResult (*)(const FlowNetwork&, int, int);

struct AlgorithmParam {
  const char* name;
  CutFn fn;
};

class MinCutAlgorithmTest : public ::testing::TestWithParam<AlgorithmParam> {};

TEST_P(MinCutAlgorithmTest, SingleEdge) {
  FlowNetwork network(2);
  network.AddEdge(0, 1, 5.0);
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_NEAR(cut.cut_value, 5.0, 1e-9);
  EXPECT_TRUE(cut.in_source_side[0]);
  EXPECT_FALSE(cut.in_source_side[1]);
  ASSERT_EQ(cut.cut_edges.size(), 1u);
}

TEST_P(MinCutAlgorithmTest, DisconnectedTerminalsHaveZeroCut) {
  FlowNetwork network(4);
  network.AddEdge(0, 2, 9.0);
  network.AddEdge(1, 3, 9.0);
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_NEAR(cut.cut_value, 0.0, 1e-12);
  EXPECT_TRUE(cut.cut_edges.empty());
}

TEST_P(MinCutAlgorithmTest, ClassicClrsExample) {
  // CLRS figure-style network: directed arcs.
  FlowNetwork network(6);
  network.AddArc(0, 1, 16);
  network.AddArc(0, 2, 13);
  network.AddArc(1, 2, 10);
  network.AddArc(2, 1, 4);
  network.AddArc(1, 3, 12);
  network.AddArc(3, 2, 9);
  network.AddArc(2, 4, 14);
  network.AddArc(4, 3, 7);
  network.AddArc(3, 5, 20);
  network.AddArc(4, 5, 4);
  const CutResult cut = GetParam().fn(network, 0, 5);
  EXPECT_NEAR(cut.cut_value, 23.0, 1e-9);  // The textbook max flow.
}

TEST_P(MinCutAlgorithmTest, PathBottleneck) {
  FlowNetwork network(5);
  network.AddEdge(0, 1, 10);
  network.AddEdge(1, 2, 1.5);  // Bottleneck.
  network.AddEdge(2, 3, 10);
  network.AddEdge(3, 4, 10);
  const CutResult cut = GetParam().fn(network, 0, 4);
  EXPECT_NEAR(cut.cut_value, 1.5, 1e-9);
  EXPECT_TRUE(cut.in_source_side[1]);
  EXPECT_FALSE(cut.in_source_side[2]);
}

TEST_P(MinCutAlgorithmTest, InfiniteConstraintEdgeNeverCut) {
  // A "pinned" node wired to the source with kInfiniteCapacity must end up
  // on the source side even when all its other traffic points at the sink.
  FlowNetwork network(3);
  network.AddEdge(0, 2, kInfiniteCapacity);  // Constraint: 2 stays with 0.
  network.AddEdge(2, 1, 100.0);              // Heavy traffic toward the sink.
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_NEAR(cut.cut_value, 100.0, 1e-6);
  EXPECT_TRUE(cut.in_source_side[2]);
}

TEST_P(MinCutAlgorithmTest, StarGraphCutsCheaperSide) {
  // Node 2 talks 1.0 to the client and 3.0 to the server: it belongs on
  // the server side; the cut pays only the client edge.
  FlowNetwork network(3);
  network.AddEdge(0, 2, 1.0);
  network.AddEdge(2, 1, 3.0);
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_NEAR(cut.cut_value, 1.0, 1e-9);
  EXPECT_FALSE(cut.in_source_side[2]);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, MinCutAlgorithmTest,
                         ::testing::Values(AlgorithmParam{"RelabelToFront",
                                                          &MinCutRelabelToFront},
                                           AlgorithmParam{"EdmondsKarp", &MinCutEdmondsKarp}),
                         [](const auto& info) { return info.param.name; });

double CutWeightOfPartition(const std::vector<std::tuple<int, int, double>>& edges,
                            const std::vector<bool>& source_side) {
  double weight = 0.0;
  for (const auto& [a, b, w] : edges) {
    if (source_side[static_cast<size_t>(a)] != source_side[static_cast<size_t>(b)]) {
      weight += w;
    }
  }
  return weight;
}

// Property: on random graphs both algorithms find cuts with (a) equal
// value, (b) value equal to the partition weight they report, and (c) no
// cheaper single-node move (local optimality of a min cut).
class RandomGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphTest, AlgorithmsAgreeAndCutsAreConsistent) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.UniformInt(4, 24));
  std::vector<std::tuple<int, int, double>> edges;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (rng.Bernoulli(0.35)) {
        edges.emplace_back(a, b, rng.UniformDouble(0.1, 10.0));
      }
    }
  }

  FlowNetwork network1(n);
  FlowNetwork network2(n);
  for (const auto& [a, b, w] : edges) {
    network1.AddEdge(a, b, w);
    network2.AddEdge(a, b, w);
  }
  const CutResult rtf = MinCutRelabelToFront(network1, 0, n - 1);
  const CutResult ek = MinCutEdmondsKarp(network2, 0, n - 1);

  EXPECT_NEAR(rtf.cut_value, ek.cut_value, 1e-6);

  // The reported flow value equals the partition's crossing weight.
  EXPECT_NEAR(CutWeightOfPartition(edges, rtf.in_source_side), rtf.cut_value, 1e-6);
  EXPECT_NEAR(CutWeightOfPartition(edges, ek.in_source_side), ek.cut_value, 1e-6);

  // No single node can move sides and lower the cut (necessary condition
  // for optimality; terminals stay put).
  for (int v = 1; v < n - 1; ++v) {
    std::vector<bool> flipped = rtf.in_source_side;
    flipped[static_cast<size_t>(v)] = !flipped[static_cast<size_t>(v)];
    EXPECT_GE(CutWeightOfPartition(edges, flipped) + 1e-9, rtf.cut_value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Range(uint64_t{1000}, uint64_t{1020}));

TEST(FlowNetworkTest, CutsDoNotMutateTheInputNetwork) {
  // The const& entry points work on per-call copies: repeated cuts over
  // the same network agree, and the caller's arcs keep zero flow.
  FlowNetwork network(3);
  network.AddEdge(0, 1, 2.0);
  network.AddEdge(1, 2, 2.0);
  const CutResult first = MinCutRelabelToFront(network, 0, 2);
  const CutResult second = MinCutRelabelToFront(network, 0, 2);
  EXPECT_NEAR(first.cut_value, second.cut_value, 1e-12);
  for (int node = 0; node < network.node_count(); ++node) {
    for (const FlowArc& arc : network.ArcsFrom(node)) {
      EXPECT_DOUBLE_EQ(arc.flow, 0.0);
    }
  }
  // ResetFlow stays available for callers that build flows by hand.
  network.ResetFlow();
  EXPECT_NEAR(MinCutRelabelToFront(network, 0, 2).cut_value, first.cut_value, 1e-12);
}

TEST(FlowNetworkTest, ExtractCutListsSaturatedCrossingEdges) {
  FlowNetwork network(4);
  network.AddEdge(0, 1, 1.0);
  network.AddEdge(0, 2, 1.0);
  network.AddEdge(1, 3, 1.0);
  network.AddEdge(2, 3, 1.0);
  const CutResult cut = MinCutRelabelToFront(network, 0, 3);
  EXPECT_NEAR(cut.cut_value, 2.0, 1e-9);
  EXPECT_EQ(cut.cut_edges.size(), 2u);
  // Both unit-capacity source edges saturate; only the source remains on
  // the source side.
  EXPECT_EQ(cut.SourceSideCount(), 1);
  for (const auto& [from, to] : cut.cut_edges) {
    EXPECT_EQ(from, 0);
    EXPECT_TRUE(to == 1 || to == 2);
  }
}

}  // namespace
}  // namespace coign
