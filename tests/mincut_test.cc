#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/mincut/edmonds_karp.h"
#include "src/mincut/flow_network.h"
#include "src/mincut/push_relabel.h"
#include "src/mincut/relabel_to_front.h"
#include "src/support/rng.h"

namespace coign {
namespace {

using CutFn = CutResult (*)(const FlowNetwork&, int, int);

struct AlgorithmParam {
  const char* name;
  CutFn fn;
};

class MinCutAlgorithmTest : public ::testing::TestWithParam<AlgorithmParam> {};

TEST_P(MinCutAlgorithmTest, SingleEdge) {
  FlowNetwork network(2);
  network.AddEdge(0, 1, 5);
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_EQ(cut.cut_value, 5);
  EXPECT_TRUE(cut.in_source_side[0]);
  EXPECT_FALSE(cut.in_source_side[1]);
  ASSERT_EQ(cut.cut_edges.size(), 1u);
}

TEST_P(MinCutAlgorithmTest, DisconnectedTerminalsHaveZeroCut) {
  FlowNetwork network(4);
  network.AddEdge(0, 2, 9);
  network.AddEdge(1, 3, 9);
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_EQ(cut.cut_value, 0);
  EXPECT_TRUE(cut.cut_edges.empty());
}

TEST_P(MinCutAlgorithmTest, ClassicClrsExample) {
  // CLRS figure-style network: directed arcs.
  FlowNetwork network(6);
  network.AddArc(0, 1, 16);
  network.AddArc(0, 2, 13);
  network.AddArc(1, 2, 10);
  network.AddArc(2, 1, 4);
  network.AddArc(1, 3, 12);
  network.AddArc(3, 2, 9);
  network.AddArc(2, 4, 14);
  network.AddArc(4, 3, 7);
  network.AddArc(3, 5, 20);
  network.AddArc(4, 5, 4);
  const CutResult cut = GetParam().fn(network, 0, 5);
  EXPECT_EQ(cut.cut_value, 23);  // The textbook max flow.
}

TEST_P(MinCutAlgorithmTest, PathBottleneck) {
  // Capacities in units (3/2 of the old float fixture, scaled by 2 to
  // stay integral): the bottleneck edge decides the cut exactly.
  FlowNetwork network(5);
  network.AddEdge(0, 1, 20);
  network.AddEdge(1, 2, 3);  // Bottleneck.
  network.AddEdge(2, 3, 20);
  network.AddEdge(3, 4, 20);
  const CutResult cut = GetParam().fn(network, 0, 4);
  EXPECT_EQ(cut.cut_value, 3);
  EXPECT_TRUE(cut.in_source_side[1]);
  EXPECT_FALSE(cut.in_source_side[2]);
}

TEST_P(MinCutAlgorithmTest, InfiniteConstraintEdgeNeverCut) {
  // A "pinned" node wired to the source with kInfiniteCapacity must end up
  // on the source side even when all its other traffic points at the sink.
  FlowNetwork network(3);
  network.AddEdge(0, 2, kInfiniteCapacity);  // Constraint: 2 stays with 0.
  network.AddEdge(2, 1, 100);                // Heavy traffic toward the sink.
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_EQ(cut.cut_value, 100);
  EXPECT_TRUE(cut.in_source_side[2]);
}

TEST_P(MinCutAlgorithmTest, StarGraphCutsCheaperSide) {
  // Node 2 talks 1 unit to the client and 3 to the server: it belongs on
  // the server side; the cut pays only the client edge.
  FlowNetwork network(3);
  network.AddEdge(0, 2, 1);
  network.AddEdge(2, 1, 3);
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_EQ(cut.cut_value, 1);
  EXPECT_FALSE(cut.in_source_side[2]);
}

TEST_P(MinCutAlgorithmTest, InfeasibleSentinelPathReportsInfiniteCut) {
  // A pure-sentinel s-t path: every cut severs a constraint. Both
  // algorithms must report exactly kInfiniteCapacity — the analysis
  // engine's unsatisfiable-constraints signal — and terminate doing so
  // (the float era could spin here; exact arithmetic cannot).
  FlowNetwork network(3);
  network.AddEdge(0, 2, kInfiniteCapacity);
  network.AddEdge(2, 1, kInfiniteCapacity);
  network.AddEdge(0, 1, 7);  // Finite traffic alongside the pins.
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_EQ(cut.cut_value, kInfiniteCapacity);
}

TEST_P(MinCutAlgorithmTest, ParallelSentinelArcsIntoOneNodeStayExact) {
  // Two sentinel arcs feeding node 3 saturate its stored excess in
  // push-relabel (kInf + kInf clamps); the surplus must drain back to the
  // source without disturbing the finite cut value.
  FlowNetwork network(5);
  network.AddArc(0, 2, kInfiniteCapacity);
  network.AddArc(0, 3, kInfiniteCapacity);
  network.AddArc(2, 3, kInfiniteCapacity);
  network.AddArc(3, 4, 11);
  network.AddArc(4, 1, 6);
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_EQ(cut.cut_value, 6);
}

TEST_P(MinCutAlgorithmTest, SummedCapacitiesNearInt64MaxSaturateToSentinel) {
  // Three parallel finite edges each close to the finite maximum: the true
  // max flow exceeds int64 range, so the reported value must saturate to
  // exactly the sentinel in both algorithms rather than wrapping.
  FlowNetwork network(5);
  network.AddArc(0, 2, kMaxFiniteCapacity - 2);
  network.AddArc(0, 3, kMaxFiniteCapacity - 2);
  network.AddArc(0, 4, kMaxFiniteCapacity - 2);
  network.AddArc(2, 1, kMaxFiniteCapacity - 2);
  network.AddArc(3, 1, kMaxFiniteCapacity - 2);
  network.AddArc(4, 1, kMaxFiniteCapacity - 2);
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_EQ(cut.cut_value, kInfiniteCapacity);
}

TEST_P(MinCutAlgorithmTest, NearMaxFiniteCapacitySingleEdgeIsExact) {
  // One edge just below the sentinel: the flow is huge but representable,
  // and the result must be bit-exact, not approximately large.
  FlowNetwork network(3);
  network.AddArc(0, 2, kMaxFiniteCapacity - 1);
  network.AddArc(2, 1, kMaxFiniteCapacity - 7);
  const CutResult cut = GetParam().fn(network, 0, 1);
  EXPECT_EQ(cut.cut_value, kMaxFiniteCapacity - 7);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, MinCutAlgorithmTest,
                         ::testing::Values(AlgorithmParam{"RelabelToFront",
                                                          &MinCutRelabelToFront},
                                           AlgorithmParam{"EdmondsKarp", &MinCutEdmondsKarp},
                                           AlgorithmParam{"PushRelabel", &MinCutPushRelabel}),
                         [](const auto& info) { return info.param.name; });

// Saturating arithmetic unit tests: the sentinel is absorbing at both
// rails and ordinary values stay exact.
TEST(SaturatingArithmeticTest, AddSaturatesAtTheRails) {
  EXPECT_EQ(SatAdd(1, 2), 3);
  EXPECT_EQ(SatAdd(kInfiniteCapacity, 1), kInfiniteCapacity);
  EXPECT_EQ(SatAdd(kInfiniteCapacity, kInfiniteCapacity), kInfiniteCapacity);
  EXPECT_EQ(SatAdd(kMaxFiniteCapacity, 1), kInfiniteCapacity);
  EXPECT_EQ(SatAdd(kMaxFiniteCapacity, 0), kMaxFiniteCapacity);
  EXPECT_EQ(SatAdd(-kInfiniteCapacity, -1), -kInfiniteCapacity);
  EXPECT_EQ(SatAdd(-kInfiniteCapacity, kInfiniteCapacity), 0);
}

TEST(SaturatingArithmeticTest, SubSaturatesAtTheRails) {
  EXPECT_EQ(SatSub(5, 3), 2);
  EXPECT_EQ(SatSub(0, kInfiniteCapacity), -kInfiniteCapacity);
  EXPECT_EQ(SatSub(-2, kInfiniteCapacity), -kInfiniteCapacity);
  EXPECT_EQ(SatSub(kInfiniteCapacity, -1), kInfiniteCapacity);
  EXPECT_EQ(SatSub(kInfiniteCapacity, kInfiniteCapacity), 0);
  // The symmetric range: INT64_MIN is never produced.
  EXPECT_EQ(SatSub(-kInfiniteCapacity, 1), -kInfiniteCapacity);
}

TEST(SaturatingArithmeticTest, ResidualOfSentinelArcSaturates) {
  // A sentinel-capacity arc whose reverse owes sentinel-scale flow has a
  // residual beyond int64 range; it must clamp to the sentinel, not wrap.
  FlowArc arc;
  arc.capacity = kInfiniteCapacity;
  arc.flow = -kInfiniteCapacity;
  EXPECT_EQ(arc.Residual(), kInfiniteCapacity);
  arc.flow = kInfiniteCapacity;
  EXPECT_EQ(arc.Residual(), 0);
  arc.flow = 5;
  EXPECT_EQ(arc.Residual(), kInfiniteCapacity - 5);
}

CapUnits CutWeightOfPartition(const std::vector<std::tuple<int, int, CapUnits>>& edges,
                              const std::vector<bool>& source_side) {
  CapUnits weight = 0;
  for (const auto& [a, b, w] : edges) {
    if (source_side[static_cast<size_t>(a)] != source_side[static_cast<size_t>(b)]) {
      weight = SatAdd(weight, w);
    }
  }
  return weight;
}

// Property: on random graphs both algorithms find cuts with (a) equal
// value, (b) value equal to the partition weight they report, and (c) no
// cheaper single-node move (local optimality of a min cut). All equalities
// are exact — fixed-point capacities leave no room for epsilon.
class RandomGraphTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomGraphTest, AlgorithmsAgreeAndCutsAreConsistent) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.UniformInt(4, 24));
  std::vector<std::tuple<int, int, CapUnits>> edges;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (rng.Bernoulli(0.35)) {
        edges.emplace_back(a, b, rng.UniformInt(1, 10'000'000));
      }
    }
  }

  FlowNetwork network1(n);
  FlowNetwork network2(n);
  for (const auto& [a, b, w] : edges) {
    network1.AddEdge(a, b, w);
    network2.AddEdge(a, b, w);
  }
  const CutResult rtf = MinCutRelabelToFront(network1, 0, n - 1);
  const CutResult ek = MinCutEdmondsKarp(network2, 0, n - 1);

  EXPECT_EQ(rtf.cut_value, ek.cut_value);

  // The reported flow value equals the partition's crossing weight.
  EXPECT_EQ(CutWeightOfPartition(edges, rtf.in_source_side), rtf.cut_value);
  EXPECT_EQ(CutWeightOfPartition(edges, ek.in_source_side), ek.cut_value);

  // No single node can move sides and lower the cut (necessary condition
  // for optimality; terminals stay put).
  for (int v = 1; v < n - 1; ++v) {
    std::vector<bool> flipped = rtf.in_source_side;
    flipped[static_cast<size_t>(v)] = !flipped[static_cast<size_t>(v)];
    EXPECT_GE(CutWeightOfPartition(edges, flipped), rtf.cut_value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphTest,
                         ::testing::Range(uint64_t{1000}, uint64_t{1020}));

TEST(FlowNetworkTest, CutsDoNotMutateTheInputNetwork) {
  // The const& entry points work on per-call copies: repeated cuts over
  // the same network agree, and the caller's arcs keep zero flow.
  FlowNetwork network(3);
  network.AddEdge(0, 1, 2);
  network.AddEdge(1, 2, 2);
  const CutResult first = MinCutRelabelToFront(network, 0, 2);
  const CutResult second = MinCutRelabelToFront(network, 0, 2);
  EXPECT_EQ(first.cut_value, second.cut_value);
  for (int node = 0; node < network.node_count(); ++node) {
    for (const FlowArc& arc : network.ArcsFrom(node)) {
      EXPECT_EQ(arc.flow, 0);
    }
  }
  // ResetFlow stays available for callers that build flows by hand.
  network.ResetFlow();
  EXPECT_EQ(MinCutRelabelToFront(network, 0, 2).cut_value, first.cut_value);
}

TEST(FlowNetworkTest, ExtractCutListsSaturatedCrossingEdges) {
  FlowNetwork network(4);
  network.AddEdge(0, 1, 1);
  network.AddEdge(0, 2, 1);
  network.AddEdge(1, 3, 1);
  network.AddEdge(2, 3, 1);
  const CutResult cut = MinCutRelabelToFront(network, 0, 3);
  EXPECT_EQ(cut.cut_value, 2);
  EXPECT_EQ(cut.cut_edges.size(), 2u);
  // Both unit-capacity source edges saturate; only the source remains on
  // the source side.
  EXPECT_EQ(cut.SourceSideCount(), 1);
  for (const auto& [from, to] : cut.cut_edges) {
    EXPECT_EQ(from, 0);
    EXPECT_TRUE(to == 1 || to == 2);
  }
}

}  // namespace
}  // namespace coign
