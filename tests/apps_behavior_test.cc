// Behavioural tests of the synthetic applications: the structural
// signatures the evaluation depends on (negotiation only in mixed
// documents, non-remotable GUI confinement, deterministic profiling,
// undo entries under varying call depths, multi-machine execution).

#include <set>

#include <gtest/gtest.h>

#include "src/analysis/multiway.h"
#include "src/apps/benefits.h"
#include "src/apps/octarine.h"
#include "src/apps/photodraw.h"
#include "src/apps/suite.h"
#include "src/net/network_profiler.h"
#include "src/runtime/rte.h"
#include "src/sim/measurement.h"

namespace coign {
namespace {

// Runs a scenario under profiling and returns the runtime's event trace.
struct TracedRun {
  IccProfile profile;
  std::vector<ProfileEvent> events;
};

TracedRun Trace(Application& app, const std::string& scenario_id) {
  ObjectSystem system;
  EXPECT_TRUE(app.Install(&system).ok());
  ConfigurationRecord config;
  CoignRuntime runtime(&system, config);
  EventLogger events;
  runtime.AddLogger(&events);
  runtime.BeginScenario();
  Rng rng(3);
  Result<Scenario> scenario = app.FindScenario(scenario_id);
  EXPECT_TRUE(scenario.ok());
  EXPECT_TRUE(scenario->run(system, rng).ok());
  system.DestroyAll();
  TracedRun out;
  out.profile = runtime.profiling_logger()->profile();
  out.events = events.events();
  return out;
}

uint64_t CallsOnInterface(const TracedRun& run, const ObjectSystem& names,
                          const std::string& interface_name) {
  const InterfaceDesc* iface = names.interfaces().LookupByName(interface_name);
  EXPECT_NE(iface, nullptr);
  uint64_t calls = 0;
  for (const ProfileEvent& event : run.events) {
    if (event.kind == EventKind::kInterfaceCall && event.iid == iface->iid) {
      ++calls;
    }
  }
  return calls;
}

TEST(OctarineBehaviorTest, NegotiationOnlyInMixedDocuments) {
  std::unique_ptr<Application> app = MakeOctarine();
  ObjectSystem names;
  ASSERT_TRUE(app->Install(&names).ok());

  const TracedRun text_run = Trace(*app, "o_oldwp0");
  const TracedRun table_run = Trace(*app, "o_oldtb0");
  const TracedRun mixed_run = Trace(*app, "o_oldbth");

  EXPECT_EQ(CallsOnInterface(text_run, names, "Octarine.INegotiate"), 0u);
  EXPECT_EQ(CallsOnInterface(table_run, names, "Octarine.INegotiate"), 0u);
  // "Complex negotiations for page placement between the table components
  // and the text components" — many small calls.
  EXPECT_GT(CallsOnInterface(mixed_run, names, "Octarine.INegotiate"), 100u);
}

TEST(OctarineBehaviorTest, TableDocumentsScanWithFileAmplification) {
  std::unique_ptr<Application> app = MakeOctarine();
  ObjectSystem names;
  ASSERT_TRUE(app->Install(&names).ok());
  const uint64_t small = CallsOnInterface(Trace(*app, "o_oldtb0"), names,
                                          "Octarine.IFileStore");
  const uint64_t large = CallsOnInterface(Trace(*app, "o_oldtb3"), names,
                                          "Octarine.IFileStore");
  // The 150-page scan reads ~30x the blocks of the 5-page scan.
  EXPECT_GT(large, small * 20);
}

TEST(OctarineBehaviorTest, UndoEntriesCreatedUnderDifferentDepths) {
  std::unique_ptr<Application> app = MakeOctarine();
  const TracedRun mixed_run = Trace(*app, "o_oldbth");
  // Undo entries created from app-level, engine-level, model-level and
  // row-level stacks get distinct IFCB classifications.
  std::set<ClassificationId> entry_classifications;
  for (const ProfileEvent& event : mixed_run.events) {
    if (event.kind != EventKind::kComponentInstantiation) {
      continue;
    }
    if (event.subject_class == Guid::FromName("clsid:Octarine.UndoEntry")) {
      entry_classifications.insert(event.subject_classification);
    }
  }
  EXPECT_GE(entry_classifications.size(), 3u);
}

TEST(PhotoDrawBehaviorTest, SpriteHierarchyBuiltOnce) {
  std::unique_ptr<Application> app = MakePhotoDraw();
  ObjectSystem system;
  ASSERT_TRUE(app->Install(&system).ok());
  Rng rng(3);
  Result<Scenario> scenario = app->FindScenario("p_oldmsr");
  ASSERT_TRUE(scenario.ok());
  ASSERT_TRUE(scenario->run(system, rng).ok());
  size_t sprites = 0;
  for (const auto& info : system.LiveInstances()) {
    if (info.class_name.rfind("PD.SpriteCache", 0) == 0) {
      ++sprites;
    }
  }
  // 1 + 4 + 16 + 64.
  EXPECT_EQ(sprites, 85u);
}

TEST(PhotoDrawBehaviorTest, NonRemotableSpriteInterfacesNeverCross) {
  // Run the Coign-chosen distribution and verify every ISpriteMem call is
  // machine-local (the ObjectSystem would refuse otherwise, but assert the
  // structural claim explicitly from the default run's placement).
  std::unique_ptr<Application> app = MakePhotoDraw();
  ObjectSystem names;
  ASSERT_TRUE(app->Install(&names).ok());
  const TracedRun run = Trace(*app, "p_oldmsr");
  // Every call on the non-remotable interfaces happened (nothing failed),
  // and the profile marks them as must-colocate pairs.
  size_t non_remotable_pairs = 0;
  for (const auto& [key, summary] : run.profile.calls()) {
    if (summary.non_remotable_calls > 0) {
      ++non_remotable_pairs;
    }
  }
  EXPECT_GT(non_remotable_pairs, 100u);  // Sprite mesh + UI sinks.
}

class DeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismTest, ProfilesAreBitStableAcrossRuns) {
  Result<std::unique_ptr<Application>> app1 = BuildApplicationForScenario(GetParam());
  Result<std::unique_ptr<Application>> app2 = BuildApplicationForScenario(GetParam());
  ASSERT_TRUE(app1.ok() && app2.ok());
  const TracedRun a = Trace(**app1, GetParam());
  const TracedRun b = Trace(**app2, GetParam());
  EXPECT_EQ(a.profile.total_calls(), b.profile.total_calls());
  EXPECT_EQ(a.profile.total_bytes(), b.profile.total_bytes());
  EXPECT_EQ(a.profile.classifications().size(), b.profile.classifications().size());
  EXPECT_DOUBLE_EQ(a.profile.total_compute_seconds(), b.profile.total_compute_seconds());
  EXPECT_EQ(a.events.size(), b.events.size());
}

INSTANTIATE_TEST_SUITE_P(Scenarios, DeterminismTest,
                         ::testing::Values("o_oldbth", "o_bigone", "p_oldmsr", "b_bigone"),
                         [](const auto& info) { return std::string(info.param); });

TEST(MultiMachineExecutionTest, ThreeTierDistributionRunsAndMatchesPrediction) {
  std::unique_ptr<Application> app = MakeBenefits();

  // Profile.
  ObjectSystem profiling_system;
  ASSERT_TRUE(app->Install(&profiling_system).ok());
  ConfigurationRecord config;
  CoignRuntime profiler_runtime(&profiling_system, config);
  profiler_runtime.BeginScenario();
  Rng rng(3);
  Result<Scenario> scenario = app->FindScenario("b_vueone");
  ASSERT_TRUE(scenario.ok());
  ASSERT_TRUE(scenario->run(profiling_system, rng).ok());
  profiling_system.DestroyAll();
  const IccProfile& profile = profiler_runtime.profiling_logger()->profile();
  const std::vector<Descriptor> table = profiler_runtime.classifier().ExportDescriptors();

  // Three-way analysis with the session manager anchored to the middle.
  MultiwayOptions options;
  options.machine_count = 3;
  options.storage_machine = 2;
  for (const auto& [id, info] : profile.classifications()) {
    if (info.class_name == "BN.SessionMgr") {
      options.extra_pins.emplace_back(id, 1);
    }
  }
  const NetworkProfile exact = NetworkProfile::Exact(NetworkModel::TenBaseT());
  Result<MultiwayAnalysisResult> analysis = AnalyzeMultiway(profile, exact, options);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();

  // Execute under the 3-machine distribution.
  ObjectSystem system;
  ASSERT_TRUE(app->Install(&system).ok());
  ConfigurationRecord light;
  light.mode = RuntimeMode::kDistributed;
  light.distribution = analysis->distribution;
  light.classifier_table = table;
  CoignRuntime runtime(&system, light);
  runtime.BeginScenario();
  MeasurementOptions measurement;
  measurement.network = NetworkModel::TenBaseT();
  Result<RunMeasurement> run = MeasureRun(
      system, [&](ObjectSystem& sys) { return scenario->run(sys, rng); }, measurement);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run->remote_calls, 0u);
  // Deterministic accounting matches the multiway prediction.
  EXPECT_NEAR(run->communication_seconds, analysis->crossing_seconds,
              analysis->crossing_seconds * 0.02);
}

}  // namespace
}  // namespace coign
