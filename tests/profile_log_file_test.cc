#include "src/profile/log_file.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "src/com/class_registry.h"

#include "src/support/str_util.h"

namespace coign {
namespace {

IccProfile SampleProfile() {
  IccProfile profile;
  ClassificationInfo info;
  info.id = 0;
  info.clsid = Guid::FromName("clsid:Reader");
  info.class_name = "App.Doc Reader";  // Name with a space, on purpose.
  info.api_usage = kApiStorage;
  profile.RecordClassification(info);
  profile.RecordInstantiation(0);
  ClassificationInfo info2;
  info2.id = 3;
  info2.clsid = Guid::FromName("clsid:Ui");
  info2.class_name = "App.Ui";
  info2.api_usage = kApiGui;
  profile.RecordClassification(info2);

  CallKey key;
  key.src = 0;
  key.dst = 3;
  key.iid = Guid::FromName("iid:IView");
  key.method = 2;
  profile.RecordCall(key, 1000, 64, true);
  profile.RecordCall(key, 3, 100000, false);
  profile.RecordCompute(0, 0.125);
  return profile;
}

void ExpectEquivalent(const IccProfile& a, const IccProfile& b) {
  EXPECT_EQ(a.total_calls(), b.total_calls());
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_DOUBLE_EQ(a.total_compute_seconds(), b.total_compute_seconds());
  EXPECT_EQ(a.SortedClassificationIds(), b.SortedClassificationIds());
  for (ClassificationId id : a.SortedClassificationIds()) {
    const ClassificationInfo* ia = a.FindClassification(id);
    const ClassificationInfo* ib = b.FindClassification(id);
    ASSERT_NE(ib, nullptr);
    EXPECT_EQ(ia->class_name, ib->class_name);
    EXPECT_EQ(ia->clsid, ib->clsid);
    EXPECT_EQ(ia->api_usage, ib->api_usage);
    EXPECT_EQ(ia->instance_count, ib->instance_count);
  }
  ASSERT_EQ(a.calls().size(), b.calls().size());
  for (const auto& [key, summary] : a.calls()) {
    ASSERT_TRUE(b.calls().contains(key));
    const CallSummary& other = b.calls().at(key);
    EXPECT_EQ(summary.requests, other.requests);
    EXPECT_EQ(summary.replies, other.replies);
    EXPECT_EQ(summary.non_remotable_calls, other.non_remotable_calls);
  }
}

TEST(LogFileTest, SerializeParseRoundTrip) {
  const IccProfile profile = SampleProfile();
  Result<IccProfile> parsed = ParseProfile(SerializeProfile(profile));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectEquivalent(profile, *parsed);
}

TEST(LogFileTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseProfile("").ok());
  EXPECT_FALSE(ParseProfile("not a profile").ok());
  EXPECT_FALSE(ParseProfile("coign-profile v1\nbogus keyword here\n").ok());
}

TEST(LogFileTest, FileRoundTripAndMerge) {
  const IccProfile profile = SampleProfile();
  const std::string path1 = "/tmp/coign_test_profile1.log";
  const std::string path2 = "/tmp/coign_test_profile2.log";
  ASSERT_TRUE(WriteProfileFile(profile, path1).ok());
  ASSERT_TRUE(WriteProfileFile(profile, path2).ok());

  Result<IccProfile> one = ReadProfileFile(path1);
  ASSERT_TRUE(one.ok());
  ExpectEquivalent(profile, *one);

  // "Log files from multiple profiling scenarios may be combined."
  Result<IccProfile> merged = MergeProfileFiles({path1, path2});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->total_calls(), profile.total_calls() * 2);
  EXPECT_EQ(merged->total_bytes(), profile.total_bytes() * 2);
  EXPECT_EQ(merged->FindClassification(0)->instance_count, 2u);

  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(LogFileTest, MissingFileErrors) {
  EXPECT_EQ(ReadProfileFile("/tmp/definitely_missing_coign_profile.log").status().code(),
            StatusCode::kNotFound);
}

TEST(LogFileTest, SerializedFormHasMagicAndSections) {
  const std::string text = SerializeProfile(SampleProfile());
  EXPECT_TRUE(StartsWith(text, "coign-profile v1\n"));
  EXPECT_NE(text.find("classification 0 "), std::string::npos);
  EXPECT_NE(text.find("App.Doc Reader"), std::string::npos);
  EXPECT_NE(text.find("compute 0 "), std::string::npos);
  EXPECT_NE(text.find("call 0 3 "), std::string::npos);
}

}  // namespace
}  // namespace coign
