// Tests for the online repartitioning subsystem: the sliding-window
// accountant, the rent-or-buy policy (hysteresis, migration-cost gates),
// the live migrator, and the drift-detector edge cases the online loop
// depends on.

#include <gtest/gtest.h>

#include "src/apps/component_library.h"
#include "src/apps/octarine.h"
#include "src/fault/injector.h"
#include "src/net/network_model.h"
#include "src/online/circuit_breaker.h"
#include "src/online/measure_online.h"
#include "src/online/migrator.h"
#include "src/online/policy.h"
#include "src/online/window.h"
#include "src/runtime/drift.h"

namespace coign {
namespace {

CallKey KeyOf(ClassificationId src, ClassificationId dst, MethodIndex method = 0) {
  CallKey key;
  key.src = src;
  key.dst = dst;
  key.iid = Guid::FromName("iid:ITest");
  key.method = method;
  return key;
}

ClassificationInfo InfoOf(ClassificationId id, const std::string& name) {
  ClassificationInfo info;
  info.id = id;
  info.clsid = Guid::FromName("clsid:" + name);
  info.class_name = name;
  info.api_usage = kApiNone;
  info.instance_count = 1;
  return info;
}

// --- SlidingWindowGraph -----------------------------------------------------

TEST(SlidingWindowTest, EpochFoldAndExponentialDecay) {
  WindowOptions options;
  options.decay = 0.5;
  options.prune_weight = 0.01;
  SlidingWindowGraph window(options);
  const CallKey key = KeyOf(1, 2);

  window.Record(key, 8);
  EXPECT_DOUBLE_EQ(window.WeightOf(key), 0.0);  // Current epoch not folded yet.
  window.AdvanceEpoch();
  EXPECT_DOUBLE_EQ(window.WeightOf(key), 8.0);

  window.AdvanceEpoch();  // No new traffic: decays.
  EXPECT_DOUBLE_EQ(window.WeightOf(key), 4.0);
  window.Record(key, 2);
  window.AdvanceEpoch();  // window = 0.5 * 4 + 2.
  EXPECT_DOUBLE_EQ(window.WeightOf(key), 4.0);
  EXPECT_EQ(window.epoch_count(), 3u);
}

TEST(SlidingWindowTest, PruningBoundsMemory) {
  WindowOptions options;
  options.decay = 0.5;
  options.prune_weight = 0.01;
  SlidingWindowGraph window(options);
  window.Record(KeyOf(1, 2), 1);
  window.AdvanceEpoch();
  EXPECT_EQ(window.tracked_keys(), 1u);
  // 1 * 0.5^n falls below 0.01 within 7 epochs; the key must vanish.
  for (int i = 0; i < 8; ++i) {
    window.AdvanceEpoch();
  }
  EXPECT_EQ(window.tracked_keys(), 0u);
  EXPECT_DOUBLE_EQ(window.total_message_weight(), 0.0);
}

TEST(SlidingWindowTest, WindowedProfileScalesProfiledKeys) {
  IccProfile base;
  base.RecordClassification(InfoOf(1, "A"));
  base.RecordClassification(InfoOf(2, "B"));
  const CallKey key = KeyOf(1, 2);
  for (int i = 0; i < 10; ++i) {
    base.RecordCall(key, 100, 50, /*remotable=*/true);
  }

  SlidingWindowGraph window;
  window.Record(key, 20);  // Twice the profiled rate.
  window.AdvanceEpoch();

  const IccProfile windowed = window.WindowedProfile(base);
  auto it = windowed.calls().find(key);
  ASSERT_NE(it, windowed.calls().end());
  EXPECT_EQ(it->second.call_count(), 20u);
  // Size distribution preserved: 150 bytes round-trip per call.
  EXPECT_EQ(it->second.total_bytes(), 20u * 150u);
}

TEST(SlidingWindowTest, UnprofiledKeysNeedLiveRegistry) {
  IccProfile base;
  base.RecordClassification(InfoOf(1, "A"));
  const CallKey key = KeyOf(1, 9);  // Classification 9 unknown to the profile.

  SlidingWindowGraph window;
  window.Record(key, 50, /*remotable=*/false);
  window.AdvanceEpoch();

  // Without metadata for 9 the key cannot be placed — it is dropped.
  EXPECT_TRUE(window.WindowedProfile(base).calls().empty());

  // With the live registry (classification first seen at run time) the key
  // is synthesized at the default message size, non-remotability preserved.
  std::unordered_map<ClassificationId, ClassificationInfo> live;
  live.emplace(9, InfoOf(9, "LiveOnly"));
  const IccProfile windowed = window.WindowedProfile(base, live);
  auto it = windowed.calls().find(key);
  ASSERT_NE(it, windowed.calls().end());
  EXPECT_EQ(it->second.call_count(), 50u);
  EXPECT_EQ(it->second.non_remotable_calls, 50u);
  ASSERT_NE(windowed.FindClassification(9), nullptr);
  EXPECT_EQ(windowed.FindClassification(9)->class_name, "LiveOnly");
}

// --- RepartitionPolicy ------------------------------------------------------

// A profile with one hot pair: A (client) talking to B over the wire.
IccProfile HotPairProfile(uint64_t calls) {
  IccProfile profile;
  profile.RecordClassification(InfoOf(1, "A"));
  profile.RecordClassification(InfoOf(2, "B"));
  const CallKey key = KeyOf(1, 2);
  for (uint64_t i = 0; i < calls; ++i) {
    profile.RecordCall(key, 4096, 4096, /*remotable=*/true);
  }
  return profile;
}

Distribution SplitAB() {
  Distribution current;
  current.placement[1] = kClientMachine;
  current.placement[2] = kServerMachine;
  return current;
}

TEST(RepartitionPolicyTest, RejectsEmptyAndThinWindows) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  RepartitionPolicy policy;

  Result<RepartitionDecision> empty =
      policy.Evaluate(IccProfile(), network, Distribution(), {});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->adopt);
  EXPECT_EQ(empty->reject_cause, RejectCause::kEmptyWindow);

  Result<RepartitionDecision> thin =
      policy.Evaluate(HotPairProfile(3), network, SplitAB(), {});
  ASSERT_TRUE(thin.ok());
  EXPECT_FALSE(thin->adopt);
  EXPECT_EQ(thin->reject_cause, RejectCause::kInsufficientEvidence);
}

TEST(RepartitionPolicyTest, AcceptsColocationOfHotPair) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  RepartitionPolicy policy;
  std::unordered_map<ClassificationId, uint64_t> live = {{1, 1}, {2, 1}};

  Result<RepartitionDecision> decision =
      policy.Evaluate(HotPairProfile(500), network, SplitAB(), live);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->adopt) << decision->reason;
  // The bill (one instance's state) is far below a window of hot traffic,
  // so the policy moves live state eagerly rather than adopting lazily.
  EXPECT_TRUE(decision->migrate) << decision->reason;
  EXPECT_EQ(decision->reject_cause, RejectCause::kNone);
  // The proposed cut colocates the pair: no cross-machine traffic left.
  EXPECT_EQ(decision->proposed.MachineFor(1), decision->proposed.MachineFor(2));
  EXPECT_LT(decision->proposed_seconds, decision->current_seconds);
  EXPECT_GT(decision->instances_to_move, 0u);
}

TEST(RepartitionPolicyTest, HysteresisRejectsMarginalGains) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  RepartitionConfig config;
  // A gain threshold no real cut can clear: relative gain is at most 100%.
  config.min_relative_gain = 1.5;
  RepartitionPolicy policy(config);
  std::unordered_map<ClassificationId, uint64_t> live = {{1, 1}, {2, 1}};

  Result<RepartitionDecision> decision =
      policy.Evaluate(HotPairProfile(500), network, SplitAB(), live);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->adopt);
  EXPECT_EQ(decision->reject_cause, RejectCause::kHysteresis);
}

TEST(RepartitionPolicyTest, RentOrBuyAdoptsLazilyWhenMigrationIsExpensive) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  RepartitionConfig config;
  config.state_bytes_per_instance = 64 * 1024 * 1024;  // Monstrous state.
  RepartitionPolicy policy(config);
  // Many live instances of the server-side classification.
  std::unordered_map<ClassificationId, uint64_t> live = {{1, 1}, {2, 1000}};

  Result<RepartitionDecision> decision =
      policy.Evaluate(HotPairProfile(500), network, SplitAB(), live);
  ASSERT_TRUE(decision.ok());
  // The better cut is still worth adopting — factories place future
  // instances per it for free — but moving 1000 instances of huge state is
  // not: live instances keep renting the old cut until they die.
  EXPECT_TRUE(decision->adopt) << decision->reason;
  EXPECT_FALSE(decision->migrate);
  EXPECT_EQ(decision->reject_cause, RejectCause::kNone);
  EXPECT_GT(decision->migration_seconds, 0.0);
}

TEST(RepartitionPolicyTest, RentOrBuyKeepsRentingOverAShortHorizon) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  RepartitionConfig config;
  config.state_bytes_per_instance = 64 * 1024 * 1024;
  // One window of future: lazy adoption gains nothing (live instances rent
  // through it) and eager migration cannot amortize the bill.
  config.horizon_windows = 1.0;
  RepartitionPolicy policy(config);
  std::unordered_map<ClassificationId, uint64_t> live = {{1, 1}, {2, 1000}};

  Result<RepartitionDecision> decision =
      policy.Evaluate(HotPairProfile(500), network, SplitAB(), live);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->adopt);
  EXPECT_FALSE(decision->migrate);
  EXPECT_EQ(decision->reject_cause, RejectCause::kMigrationCost);
}

TEST(RepartitionPolicyTest, IdleClassificationsKeepTheirPlacement) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  // Window sees only the A-B pair; classification 3 exists in the profile
  // but has no traffic — a disconnected node the min cut would place
  // arbitrarily. The policy must keep it where it is (server).
  IccProfile windowed = HotPairProfile(500);
  windowed.RecordClassification(InfoOf(3, "Idle"));
  Distribution current = SplitAB();
  current.placement[3] = kServerMachine;

  RepartitionPolicy policy;
  std::unordered_map<ClassificationId, uint64_t> live = {{1, 1}, {2, 1}, {3, 4}};
  Result<RepartitionDecision> decision = policy.Evaluate(windowed, network, current, live);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->proposed.MachineFor(3), kServerMachine);
}

// --- LiveMigrator -----------------------------------------------------------

class MigratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.interfaces()
                    .Register(InterfaceBuilder("IEcho")
                                  .Method("Echo")
                                  .In("x", ValueKind::kInt32)
                                  .Out("x", ValueKind::kInt32)
                                  .Build())
                    .ok());
    iid_ = system_.interfaces().LookupByName("IEcho")->iid;
    handlers_.Set(iid_, 0,
                  [](ScriptedComponent& self, const Message& in, Message* out) {
                    (void)self;
                    out->Add("x", Value::FromInt32(in.Find("x")->AsInt32()));
                    return Status::Ok();
                  });
    ASSERT_TRUE(
        RegisterScriptedClass(&system_, "Echo", {iid_}, kApiNone, &handlers_).ok());
  }

  ObjectSystem system_;
  HandlerTable handlers_;
  InterfaceId iid_;
};

TEST_F(MigratorTest, MovesInstancesAcrossTheCutAndBillsState) {
  ASSERT_TRUE(system_.CreateInstanceByName("Echo", "IEcho").ok());
  ASSERT_TRUE(system_.CreateInstanceByName("Echo", "IEcho").ok());
  for (const auto& info : system_.LiveInstances()) {
    EXPECT_EQ(info.machine, kClientMachine);
  }

  Distribution target;
  target.placement[7] = kServerMachine;
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  LiveMigrator migrator(/*state_bytes_per_instance=*/2048,
                        [](InstanceId) -> ClassificationId { return 7; });
  Result<MigrationReport> report = migrator.Migrate(system_, target, network);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->instances_moved, 2u);
  EXPECT_EQ(report->bytes_transferred, 2u * 2048u);
  EXPECT_GT(report->seconds, 0.0);
  for (const auto& info : system_.LiveInstances()) {
    EXPECT_EQ(info.machine, kServerMachine);
  }

  // Already in place: a second migration is a no-op.
  Result<MigrationReport> again = migrator.Migrate(system_, target, network);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->instances_moved, 0u);
}

TEST_F(MigratorTest, UnclassifiedInstancesStayPut) {
  ASSERT_TRUE(system_.CreateInstanceByName("Echo", "IEcho").ok());
  Distribution target;
  target.default_machine = kServerMachine;
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  LiveMigrator migrator(2048,
                        [](InstanceId) -> ClassificationId { return kNoClassification; });
  Result<MigrationReport> report = migrator.Migrate(system_, target, network);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->instances_moved, 0u);
  EXPECT_EQ(system_.LiveInstances()[0].machine, kClientMachine);
}

// --- DetectDrift edge cases -------------------------------------------------

TEST(DriftEdgeCaseTest, EmptyWindowIsNotDrift) {
  IccProfile profile = HotPairProfile(100);
  DriftOptions options;
  options.min_messages = 0;  // Force a judgment on the empty window.
  const DriftReport report = DetectDrift(profile, MessageCounts(), options);
  EXPECT_EQ(report.observed_messages, 0u);
  // Regression: this used to be 0/0 = NaN.
  EXPECT_DOUBLE_EQ(report.unprofiled_fraction, 0.0);
  EXPECT_FALSE(report.unprofiled_fraction != report.unprofiled_fraction);
}

TEST(DriftEdgeCaseTest, EmptyProfileFlagsAllTrafficAsUnprofiled) {
  MessageCounts observed;
  observed.Record(1, 2, 500);
  DriftOptions options;
  options.min_messages = 100;
  const DriftReport report = DetectDrift(IccProfile(), observed, options);
  EXPECT_DOUBLE_EQ(report.unprofiled_fraction, 1.0);
  EXPECT_TRUE(report.reprofile_recommended);
}

TEST(DriftEdgeCaseTest, MatchingTrafficIsNotDrift) {
  IccProfile profile = HotPairProfile(100);
  MessageCounts observed;
  observed.Record(1, 2, 200);  // Same pair, scaled rate: same direction.
  const DriftReport report = DetectDrift(profile, observed);
  EXPECT_GT(report.similarity, 0.99);
  EXPECT_FALSE(report.reprofile_recommended);
}

// --- Circuit breaker state machine -------------------------------------------

BreakerConfig TestBreakerConfig() {
  BreakerConfig config;
  config.enabled = true;
  config.min_calls = 4;
  config.trip_after = 2;
  config.open_epochs = 2;
  config.max_open_epochs = 8;
  return config;
}

constexpr BreakerSample kHealthyEpoch{/*calls=*/10, /*undelivered=*/0,
                                      /*corrupt_rejected=*/0};
constexpr BreakerSample kCorruptEpoch{/*calls=*/10, /*undelivered=*/0,
                                      /*corrupt_rejected=*/5};
constexpr BreakerSample kDeadEpoch{/*calls=*/10, /*undelivered=*/3,
                                   /*corrupt_rejected=*/0};

TEST(CircuitBreakerTest, TripsOnlyAfterConsecutiveBadEpochs) {
  CircuitBreaker breaker(TestBreakerConfig());
  breaker.Observe(kCorruptEpoch);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.Observe(kHealthyEpoch);  // A good epoch resets the streak.
  breaker.Observe(kCorruptEpoch);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.Observe(kDeadEpoch);  // Either threshold continues the streak.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, QuietEpochsCastNoVote) {
  CircuitBreaker breaker(TestBreakerConfig());
  const BreakerSample quiet{/*calls=*/3, /*undelivered=*/3, /*corrupt_rejected=*/3};
  for (int i = 0; i < 10; ++i) {
    breaker.Observe(quiet);  // Below min_calls: too little traffic to judge.
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, HoldExpiresIntoHalfOpenAndHealthyProbeCloses) {
  CircuitBreaker breaker(TestBreakerConfig());
  breaker.Observe(kCorruptEpoch);
  breaker.Observe(kCorruptEpoch);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.WantsProbe());
  breaker.Observe(kCorruptEpoch);  // Hold 2 -> 1 (evidence ignored while open).
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  breaker.Observe(kCorruptEpoch);  // Hold 1 -> 0: probe time.
  ASSERT_TRUE(breaker.WantsProbe());
  breaker.OnProbeResult(true);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.probes(), 1u);
  EXPECT_EQ(breaker.reopens(), 0u);
}

TEST(CircuitBreakerTest, FailedProbesDoubleTheHoldUpToTheCap) {
  CircuitBreaker breaker(TestBreakerConfig());
  breaker.Observe(kCorruptEpoch);
  breaker.Observe(kCorruptEpoch);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // Walk open -> half-open -> failed probe cycles; the hold doubles
  // 2, 4, 8, 8 (capped at max_open_epochs).
  for (const int expected_hold : {2, 4, 8, 8}) {
    for (int i = 0; i < expected_hold; ++i) {
      EXPECT_FALSE(breaker.WantsProbe()) << "hold " << expected_hold << " epoch " << i;
      breaker.Observe(kHealthyEpoch);
    }
    ASSERT_TRUE(breaker.WantsProbe()) << "hold " << expected_hold;
    breaker.OnProbeResult(false);
  }
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.reopens(), 4u);
  // A healthy probe resets the hold so the next trip starts over at 2.
  for (int i = 0; i < 8; ++i) {
    breaker.Observe(kHealthyEpoch);
  }
  breaker.OnProbeResult(true);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.Observe(kCorruptEpoch);
  breaker.Observe(kCorruptEpoch);
  breaker.Observe(kHealthyEpoch);
  breaker.Observe(kHealthyEpoch);
  EXPECT_TRUE(breaker.WantsProbe());
}

TEST(CircuitBreakerTest, MissingProbeVerdictKeepsItHalfOpen) {
  CircuitBreaker breaker(TestBreakerConfig());
  breaker.Observe(kDeadEpoch);
  breaker.Observe(kDeadEpoch);
  breaker.Observe(kHealthyEpoch);
  breaker.Observe(kHealthyEpoch);
  ASSERT_TRUE(breaker.WantsProbe());
  breaker.Observe(kHealthyEpoch);  // No verdict arrived; stay half-open.
  EXPECT_TRUE(breaker.WantsProbe());
  EXPECT_EQ(breaker.probes(), 0u);
}

// --- End to end: the closed loop on a real application ----------------------

// Profiles octarine in process and analyzes a shipped distribution — the
// base fixture the end-to-end tests start from. `ok` is false when any
// setup step failed (assert on it first).
struct OnlineFixture {
  std::unique_ptr<Application> app;
  IccProfile profile;
  NetworkModel network = NetworkModel::TenBaseT();
  NetworkProfile fitted;
  ConfigurationRecord config;
  bool ok = false;
};

OnlineFixture MakeOnlineFixture() {
  OnlineFixture fixture;
  fixture.app = MakeOctarine();

  // Profile text usage only, in-process (profiling-mode runtime).
  ObjectSystem profiling_system;
  if (!fixture.app->Install(&profiling_system).ok()) {
    return fixture;
  }
  ConfigurationRecord profiling_config;
  profiling_config.mode = RuntimeMode::kProfiling;
  CoignRuntime profiling_runtime(&profiling_system, profiling_config);
  Rng rng(17);
  for (const char* id : {"o_oldwp0", "o_oldwp3"}) {
    Result<Scenario> scenario = fixture.app->FindScenario(id);
    if (!scenario.ok() || !(profiling_runtime.BeginScenario(),
                            scenario->run(profiling_system, rng).ok())) {
      return fixture;
    }
    profiling_system.DestroyAll();
  }
  fixture.profile = profiling_runtime.profiling_logger()->profile();

  fixture.fitted = NetworkProfile::Exact(fixture.network);
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(fixture.profile, fixture.fitted);
  if (!analysis.ok()) {
    return fixture;
  }
  fixture.config.mode = RuntimeMode::kDistributed;
  fixture.config.classifier_table = profiling_runtime.classifier().ExportDescriptors();
  fixture.config.distribution = analysis->distribution;
  fixture.ok = true;
  return fixture;
}

TEST(OnlineRepartitionIntegrationTest, AdaptiveRunRepartitionsUnderDrift) {
  OnlineFixture fixture = MakeOnlineFixture();
  ASSERT_TRUE(fixture.ok);
  std::unique_ptr<Application>& app = fixture.app;
  const IccProfile& profile = fixture.profile;
  const ConfigurationRecord& config = fixture.config;

  OnlineMeasurementOptions options;
  options.network = fixture.network;
  options.fitted = fixture.fitted;
  options.online.policy.min_window_messages = 50.0;

  // Usage drifts to table-heavy documents the profile never saw.
  const std::vector<OnlinePhase> workload =
      CyclicWorkload({"o_oldwp3", "o_mixed9"}, /*repetitions=*/2, /*cycles=*/2);
  Result<OnlineRunResult> adaptive =
      MeasureOnlineRun(*app, workload, config, profile, options);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_EQ(adaptive->online.epochs, 8u);
  EXPECT_GE(adaptive->online.drift_flags, 1u);
  EXPECT_GE(adaptive->online.repartitions, 1u);
  // Every repartition either migrated live state or adopted lazily.
  EXPECT_LE(adaptive->online.lazy_adoptions, adaptive->online.repartitions);

  // The same workload without adaptation pays more communication.
  OnlineMeasurementOptions static_options = options;
  static_options.adaptive = false;
  Result<OnlineRunResult> fixed =
      MeasureOnlineRun(*app, workload, config, profile, static_options);
  ASSERT_TRUE(fixed.ok());
  EXPECT_LT(adaptive->run.communication_seconds, fixed->run.communication_seconds);
}

TEST(OnlineRepartitionIntegrationTest, BreakerDegradesToLocalAndRepromotes) {
  OnlineFixture fixture = MakeOnlineFixture();
  ASSERT_TRUE(fixture.ok);

  OnlineMeasurementOptions options;
  options.network = fixture.network;
  options.fitted = fixture.fitted;
  options.online.policy.min_window_messages = 50.0;
  const std::vector<OnlinePhase> workload =
      CyclicWorkload({"o_oldwp3", "o_mixed9"}, /*repetitions=*/2, /*cycles=*/3);

  // The fault-free adaptive run sizes the horizon and fixes the partition
  // a poisoned wire must not be able to steer the run away from.
  Result<OnlineRunResult> clean =
      MeasureOnlineRun(*fixture.app, workload, fixture.config, fixture.profile, options);
  ASSERT_TRUE(clean.ok());
  const double horizon = clean->run.execution_seconds;

  // Heavy symmetric corruption over the middle of the run, with clean head
  // and tail stretches so both the trip and the re-promotion land inside.
  FaultEpisode burst;
  burst.kind = FaultKind::kCorruptBurst;
  burst.start_seconds = horizon * 0.1;
  burst.duration_seconds = horizon * 0.4;
  burst.gilbert = {0.0, 0.0, 0.9, 0.9};
  burst.magnitude = 0.9;
  FaultInjector injector(FaultSchedule::FromEpisodes({burst}), FaultRates{}, 5);

  OnlineMeasurementOptions faulted = options;
  faulted.faults = &injector;
  faulted.retry = SuggestedRetryPolicy(fixture.network);
  faulted.online.quarantine.enabled = true;
  faulted.online.breaker.enabled = true;
  // The scripted burst concentrates in few epochs, so trip on the first
  // bad one and probe after a single held epoch — the test exercises the
  // full trip -> degrade -> probe -> re-promote arc, not the default
  // tuning's patience.
  faulted.online.breaker.trip_after = 1;
  faulted.online.breaker.open_epochs = 3;
  Result<OnlineRunResult> hardened =
      MeasureOnlineRun(*fixture.app, workload, fixture.config, fixture.profile, faulted);
  ASSERT_TRUE(hardened.ok());

  // The checksummed wire bounced the poison instead of consuming it...
  EXPECT_GT(hardened->transport.corrupt_rejected, 0u);
  EXPECT_EQ(hardened->transport.corrupt_consumed, 0u);
  // ...the breaker opened, the run degraded to the all-local plan, and the
  // healed tail re-promoted the distributed plan.
  EXPECT_GE(hardened->online.breaker_trips, 1u);
  EXPECT_GE(hardened->online.safe_mode_entries, 1u);
  EXPECT_GE(hardened->online.safe_mode_exits, 1u);
  EXPECT_GT(hardened->online.safe_mode_epochs, 0u);
  // End-to-end integrity: the run ends on the same partition the
  // fault-free adaptive run ends on.
  EXPECT_EQ(hardened->final_distribution.placement,
            clean->final_distribution.placement);
  EXPECT_EQ(hardened->final_distribution.default_machine,
            clean->final_distribution.default_machine);
}

}  // namespace
}  // namespace coign
