// Tests for the online repartitioning subsystem: the sliding-window
// accountant, the rent-or-buy policy (hysteresis, migration-cost gates),
// the live migrator, and the drift-detector edge cases the online loop
// depends on.

#include <gtest/gtest.h>

#include "src/apps/component_library.h"
#include "src/apps/octarine.h"
#include "src/net/network_model.h"
#include "src/online/measure_online.h"
#include "src/online/migrator.h"
#include "src/online/policy.h"
#include "src/online/window.h"
#include "src/runtime/drift.h"

namespace coign {
namespace {

CallKey KeyOf(ClassificationId src, ClassificationId dst, MethodIndex method = 0) {
  CallKey key;
  key.src = src;
  key.dst = dst;
  key.iid = Guid::FromName("iid:ITest");
  key.method = method;
  return key;
}

ClassificationInfo InfoOf(ClassificationId id, const std::string& name) {
  ClassificationInfo info;
  info.id = id;
  info.clsid = Guid::FromName("clsid:" + name);
  info.class_name = name;
  info.api_usage = kApiNone;
  info.instance_count = 1;
  return info;
}

// --- SlidingWindowGraph -----------------------------------------------------

TEST(SlidingWindowTest, EpochFoldAndExponentialDecay) {
  WindowOptions options;
  options.decay = 0.5;
  options.prune_weight = 0.01;
  SlidingWindowGraph window(options);
  const CallKey key = KeyOf(1, 2);

  window.Record(key, 8);
  EXPECT_DOUBLE_EQ(window.WeightOf(key), 0.0);  // Current epoch not folded yet.
  window.AdvanceEpoch();
  EXPECT_DOUBLE_EQ(window.WeightOf(key), 8.0);

  window.AdvanceEpoch();  // No new traffic: decays.
  EXPECT_DOUBLE_EQ(window.WeightOf(key), 4.0);
  window.Record(key, 2);
  window.AdvanceEpoch();  // window = 0.5 * 4 + 2.
  EXPECT_DOUBLE_EQ(window.WeightOf(key), 4.0);
  EXPECT_EQ(window.epoch_count(), 3u);
}

TEST(SlidingWindowTest, PruningBoundsMemory) {
  WindowOptions options;
  options.decay = 0.5;
  options.prune_weight = 0.01;
  SlidingWindowGraph window(options);
  window.Record(KeyOf(1, 2), 1);
  window.AdvanceEpoch();
  EXPECT_EQ(window.tracked_keys(), 1u);
  // 1 * 0.5^n falls below 0.01 within 7 epochs; the key must vanish.
  for (int i = 0; i < 8; ++i) {
    window.AdvanceEpoch();
  }
  EXPECT_EQ(window.tracked_keys(), 0u);
  EXPECT_DOUBLE_EQ(window.total_message_weight(), 0.0);
}

TEST(SlidingWindowTest, WindowedProfileScalesProfiledKeys) {
  IccProfile base;
  base.RecordClassification(InfoOf(1, "A"));
  base.RecordClassification(InfoOf(2, "B"));
  const CallKey key = KeyOf(1, 2);
  for (int i = 0; i < 10; ++i) {
    base.RecordCall(key, 100, 50, /*remotable=*/true);
  }

  SlidingWindowGraph window;
  window.Record(key, 20);  // Twice the profiled rate.
  window.AdvanceEpoch();

  const IccProfile windowed = window.WindowedProfile(base);
  auto it = windowed.calls().find(key);
  ASSERT_NE(it, windowed.calls().end());
  EXPECT_EQ(it->second.call_count(), 20u);
  // Size distribution preserved: 150 bytes round-trip per call.
  EXPECT_EQ(it->second.total_bytes(), 20u * 150u);
}

TEST(SlidingWindowTest, UnprofiledKeysNeedLiveRegistry) {
  IccProfile base;
  base.RecordClassification(InfoOf(1, "A"));
  const CallKey key = KeyOf(1, 9);  // Classification 9 unknown to the profile.

  SlidingWindowGraph window;
  window.Record(key, 50, /*remotable=*/false);
  window.AdvanceEpoch();

  // Without metadata for 9 the key cannot be placed — it is dropped.
  EXPECT_TRUE(window.WindowedProfile(base).calls().empty());

  // With the live registry (classification first seen at run time) the key
  // is synthesized at the default message size, non-remotability preserved.
  std::unordered_map<ClassificationId, ClassificationInfo> live;
  live.emplace(9, InfoOf(9, "LiveOnly"));
  const IccProfile windowed = window.WindowedProfile(base, live);
  auto it = windowed.calls().find(key);
  ASSERT_NE(it, windowed.calls().end());
  EXPECT_EQ(it->second.call_count(), 50u);
  EXPECT_EQ(it->second.non_remotable_calls, 50u);
  ASSERT_NE(windowed.FindClassification(9), nullptr);
  EXPECT_EQ(windowed.FindClassification(9)->class_name, "LiveOnly");
}

// --- RepartitionPolicy ------------------------------------------------------

// A profile with one hot pair: A (client) talking to B over the wire.
IccProfile HotPairProfile(uint64_t calls) {
  IccProfile profile;
  profile.RecordClassification(InfoOf(1, "A"));
  profile.RecordClassification(InfoOf(2, "B"));
  const CallKey key = KeyOf(1, 2);
  for (uint64_t i = 0; i < calls; ++i) {
    profile.RecordCall(key, 4096, 4096, /*remotable=*/true);
  }
  return profile;
}

Distribution SplitAB() {
  Distribution current;
  current.placement[1] = kClientMachine;
  current.placement[2] = kServerMachine;
  return current;
}

TEST(RepartitionPolicyTest, RejectsEmptyAndThinWindows) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  RepartitionPolicy policy;

  Result<RepartitionDecision> empty =
      policy.Evaluate(IccProfile(), network, Distribution(), {});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->adopt);
  EXPECT_EQ(empty->reject_cause, RejectCause::kEmptyWindow);

  Result<RepartitionDecision> thin =
      policy.Evaluate(HotPairProfile(3), network, SplitAB(), {});
  ASSERT_TRUE(thin.ok());
  EXPECT_FALSE(thin->adopt);
  EXPECT_EQ(thin->reject_cause, RejectCause::kInsufficientEvidence);
}

TEST(RepartitionPolicyTest, AcceptsColocationOfHotPair) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  RepartitionPolicy policy;
  std::unordered_map<ClassificationId, uint64_t> live = {{1, 1}, {2, 1}};

  Result<RepartitionDecision> decision =
      policy.Evaluate(HotPairProfile(500), network, SplitAB(), live);
  ASSERT_TRUE(decision.ok());
  EXPECT_TRUE(decision->adopt) << decision->reason;
  // The bill (one instance's state) is far below a window of hot traffic,
  // so the policy moves live state eagerly rather than adopting lazily.
  EXPECT_TRUE(decision->migrate) << decision->reason;
  EXPECT_EQ(decision->reject_cause, RejectCause::kNone);
  // The proposed cut colocates the pair: no cross-machine traffic left.
  EXPECT_EQ(decision->proposed.MachineFor(1), decision->proposed.MachineFor(2));
  EXPECT_LT(decision->proposed_seconds, decision->current_seconds);
  EXPECT_GT(decision->instances_to_move, 0u);
}

TEST(RepartitionPolicyTest, HysteresisRejectsMarginalGains) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  RepartitionConfig config;
  // A gain threshold no real cut can clear: relative gain is at most 100%.
  config.min_relative_gain = 1.5;
  RepartitionPolicy policy(config);
  std::unordered_map<ClassificationId, uint64_t> live = {{1, 1}, {2, 1}};

  Result<RepartitionDecision> decision =
      policy.Evaluate(HotPairProfile(500), network, SplitAB(), live);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->adopt);
  EXPECT_EQ(decision->reject_cause, RejectCause::kHysteresis);
}

TEST(RepartitionPolicyTest, RentOrBuyAdoptsLazilyWhenMigrationIsExpensive) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  RepartitionConfig config;
  config.state_bytes_per_instance = 64 * 1024 * 1024;  // Monstrous state.
  RepartitionPolicy policy(config);
  // Many live instances of the server-side classification.
  std::unordered_map<ClassificationId, uint64_t> live = {{1, 1}, {2, 1000}};

  Result<RepartitionDecision> decision =
      policy.Evaluate(HotPairProfile(500), network, SplitAB(), live);
  ASSERT_TRUE(decision.ok());
  // The better cut is still worth adopting — factories place future
  // instances per it for free — but moving 1000 instances of huge state is
  // not: live instances keep renting the old cut until they die.
  EXPECT_TRUE(decision->adopt) << decision->reason;
  EXPECT_FALSE(decision->migrate);
  EXPECT_EQ(decision->reject_cause, RejectCause::kNone);
  EXPECT_GT(decision->migration_seconds, 0.0);
}

TEST(RepartitionPolicyTest, RentOrBuyKeepsRentingOverAShortHorizon) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  RepartitionConfig config;
  config.state_bytes_per_instance = 64 * 1024 * 1024;
  // One window of future: lazy adoption gains nothing (live instances rent
  // through it) and eager migration cannot amortize the bill.
  config.horizon_windows = 1.0;
  RepartitionPolicy policy(config);
  std::unordered_map<ClassificationId, uint64_t> live = {{1, 1}, {2, 1000}};

  Result<RepartitionDecision> decision =
      policy.Evaluate(HotPairProfile(500), network, SplitAB(), live);
  ASSERT_TRUE(decision.ok());
  EXPECT_FALSE(decision->adopt);
  EXPECT_FALSE(decision->migrate);
  EXPECT_EQ(decision->reject_cause, RejectCause::kMigrationCost);
}

TEST(RepartitionPolicyTest, IdleClassificationsKeepTheirPlacement) {
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  // Window sees only the A-B pair; classification 3 exists in the profile
  // but has no traffic — a disconnected node the min cut would place
  // arbitrarily. The policy must keep it where it is (server).
  IccProfile windowed = HotPairProfile(500);
  windowed.RecordClassification(InfoOf(3, "Idle"));
  Distribution current = SplitAB();
  current.placement[3] = kServerMachine;

  RepartitionPolicy policy;
  std::unordered_map<ClassificationId, uint64_t> live = {{1, 1}, {2, 1}, {3, 4}};
  Result<RepartitionDecision> decision = policy.Evaluate(windowed, network, current, live);
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->proposed.MachineFor(3), kServerMachine);
}

// --- LiveMigrator -----------------------------------------------------------

class MigratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.interfaces()
                    .Register(InterfaceBuilder("IEcho")
                                  .Method("Echo")
                                  .In("x", ValueKind::kInt32)
                                  .Out("x", ValueKind::kInt32)
                                  .Build())
                    .ok());
    iid_ = system_.interfaces().LookupByName("IEcho")->iid;
    handlers_.Set(iid_, 0,
                  [](ScriptedComponent& self, const Message& in, Message* out) {
                    (void)self;
                    out->Add("x", Value::FromInt32(in.Find("x")->AsInt32()));
                    return Status::Ok();
                  });
    ASSERT_TRUE(
        RegisterScriptedClass(&system_, "Echo", {iid_}, kApiNone, &handlers_).ok());
  }

  ObjectSystem system_;
  HandlerTable handlers_;
  InterfaceId iid_;
};

TEST_F(MigratorTest, MovesInstancesAcrossTheCutAndBillsState) {
  ASSERT_TRUE(system_.CreateInstanceByName("Echo", "IEcho").ok());
  ASSERT_TRUE(system_.CreateInstanceByName("Echo", "IEcho").ok());
  for (const auto& info : system_.LiveInstances()) {
    EXPECT_EQ(info.machine, kClientMachine);
  }

  Distribution target;
  target.placement[7] = kServerMachine;
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  LiveMigrator migrator(/*state_bytes_per_instance=*/2048,
                        [](InstanceId) -> ClassificationId { return 7; });
  Result<MigrationReport> report = migrator.Migrate(system_, target, network);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->instances_moved, 2u);
  EXPECT_EQ(report->bytes_transferred, 2u * 2048u);
  EXPECT_GT(report->seconds, 0.0);
  for (const auto& info : system_.LiveInstances()) {
    EXPECT_EQ(info.machine, kServerMachine);
  }

  // Already in place: a second migration is a no-op.
  Result<MigrationReport> again = migrator.Migrate(system_, target, network);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->instances_moved, 0u);
}

TEST_F(MigratorTest, UnclassifiedInstancesStayPut) {
  ASSERT_TRUE(system_.CreateInstanceByName("Echo", "IEcho").ok());
  Distribution target;
  target.default_machine = kServerMachine;
  const NetworkProfile network = NetworkProfile::Exact(NetworkModel::TenBaseT());
  LiveMigrator migrator(2048,
                        [](InstanceId) -> ClassificationId { return kNoClassification; });
  Result<MigrationReport> report = migrator.Migrate(system_, target, network);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->instances_moved, 0u);
  EXPECT_EQ(system_.LiveInstances()[0].machine, kClientMachine);
}

// --- DetectDrift edge cases -------------------------------------------------

TEST(DriftEdgeCaseTest, EmptyWindowIsNotDrift) {
  IccProfile profile = HotPairProfile(100);
  DriftOptions options;
  options.min_messages = 0;  // Force a judgment on the empty window.
  const DriftReport report = DetectDrift(profile, MessageCounts(), options);
  EXPECT_EQ(report.observed_messages, 0u);
  // Regression: this used to be 0/0 = NaN.
  EXPECT_DOUBLE_EQ(report.unprofiled_fraction, 0.0);
  EXPECT_FALSE(report.unprofiled_fraction != report.unprofiled_fraction);
}

TEST(DriftEdgeCaseTest, EmptyProfileFlagsAllTrafficAsUnprofiled) {
  MessageCounts observed;
  observed.Record(1, 2, 500);
  DriftOptions options;
  options.min_messages = 100;
  const DriftReport report = DetectDrift(IccProfile(), observed, options);
  EXPECT_DOUBLE_EQ(report.unprofiled_fraction, 1.0);
  EXPECT_TRUE(report.reprofile_recommended);
}

TEST(DriftEdgeCaseTest, MatchingTrafficIsNotDrift) {
  IccProfile profile = HotPairProfile(100);
  MessageCounts observed;
  observed.Record(1, 2, 200);  // Same pair, scaled rate: same direction.
  const DriftReport report = DetectDrift(profile, observed);
  EXPECT_GT(report.similarity, 0.99);
  EXPECT_FALSE(report.reprofile_recommended);
}

// --- End to end: the closed loop on a real application ----------------------

TEST(OnlineRepartitionIntegrationTest, AdaptiveRunRepartitionsUnderDrift) {
  std::unique_ptr<Application> app = MakeOctarine();

  // Profile text usage only, in-process (profiling-mode runtime).
  ObjectSystem profiling_system;
  ASSERT_TRUE(app->Install(&profiling_system).ok());
  ConfigurationRecord profiling_config;
  profiling_config.mode = RuntimeMode::kProfiling;
  CoignRuntime profiling_runtime(&profiling_system, profiling_config);
  Rng rng(17);
  for (const char* id : {"o_oldwp0", "o_oldwp3"}) {
    Result<Scenario> scenario = app->FindScenario(id);
    ASSERT_TRUE(scenario.ok());
    profiling_runtime.BeginScenario();
    ASSERT_TRUE(scenario->run(profiling_system, rng).ok());
    profiling_system.DestroyAll();
  }
  const IccProfile profile = profiling_runtime.profiling_logger()->profile();

  const NetworkModel network = NetworkModel::TenBaseT();
  const NetworkProfile fitted = NetworkProfile::Exact(network);
  ProfileAnalysisEngine engine;
  Result<AnalysisResult> analysis = engine.Analyze(profile, fitted);
  ASSERT_TRUE(analysis.ok());

  ConfigurationRecord config;
  config.mode = RuntimeMode::kDistributed;
  config.classifier_table = profiling_runtime.classifier().ExportDescriptors();
  config.distribution = analysis->distribution;

  OnlineMeasurementOptions options;
  options.network = network;
  options.fitted = fitted;
  options.online.policy.min_window_messages = 50.0;

  // Usage drifts to table-heavy documents the profile never saw.
  const std::vector<OnlinePhase> workload =
      CyclicWorkload({"o_oldwp3", "o_mixed9"}, /*repetitions=*/2, /*cycles=*/2);
  Result<OnlineRunResult> adaptive =
      MeasureOnlineRun(*app, workload, config, profile, options);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_EQ(adaptive->online.epochs, 8u);
  EXPECT_GE(adaptive->online.drift_flags, 1u);
  EXPECT_GE(adaptive->online.repartitions, 1u);
  // Every repartition either migrated live state or adopted lazily.
  EXPECT_LE(adaptive->online.lazy_adoptions, adaptive->online.repartitions);

  // The same workload without adaptation pays more communication.
  OnlineMeasurementOptions static_options = options;
  static_options.adaptive = false;
  Result<OnlineRunResult> fixed =
      MeasureOnlineRun(*app, workload, config, profile, static_options);
  ASSERT_TRUE(fixed.ok());
  EXPECT_LT(adaptive->run.communication_seconds, fixed->run.communication_seconds);
}

}  // namespace
}  // namespace coign
