#include "src/com/value.h"

#include <gtest/gtest.h>

namespace coign {
namespace {

TEST(ValueTest, NullByDefault) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), ValueKind::kNull);
}

TEST(ValueTest, ScalarRoundTrips) {
  EXPECT_EQ(Value::FromBool(true).AsBool(), true);
  EXPECT_EQ(Value::FromInt32(-7).AsInt32(), -7);
  EXPECT_EQ(Value::FromInt64(1ll << 40).AsInt64(), 1ll << 40);
  EXPECT_DOUBLE_EQ(Value::FromDouble(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::FromString("hi").AsString(), "hi");
  EXPECT_EQ(Value::FromOpaque(0xdead).AsOpaque(), 0xdeadu);
}

TEST(ValueTest, MaterializedBlob) {
  const Value v = Value::FromBytes({1, 2, 3});
  EXPECT_EQ(v.AsBlob().size, 3u);
  EXPECT_TRUE(v.AsBlob().materialized());
  EXPECT_EQ(v.AsBlob().ByteAt(1), 2);
}

TEST(ValueTest, SyntheticBlobIsDeterministic) {
  const Value a = Value::BlobOfSize(1000, 42);
  const Value b = Value::BlobOfSize(1000, 42);
  EXPECT_FALSE(a.AsBlob().materialized());
  EXPECT_EQ(a.AsBlob().ByteAt(500), b.AsBlob().ByteAt(500));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == Value::BlobOfSize(1000, 43));
}

TEST(ValueTest, SyntheticAndMaterializedBlobsCompareByContent) {
  const Value synthetic = Value::BlobOfSize(16, 5);
  std::vector<uint8_t> bytes;
  for (uint64_t i = 0; i < 16; ++i) {
    bytes.push_back(synthetic.AsBlob().ByteAt(i));
  }
  EXPECT_EQ(synthetic, Value::FromBytes(bytes));
}

TEST(ValueTest, ZeroSizeBlobCountsAsMaterialized) {
  EXPECT_TRUE(Value::BlobOfSize(0).AsBlob().materialized());
}

TEST(ValueTest, InterfaceHoldsRef) {
  const ObjectRef ref{42, Guid::FromName("iid:IThing")};
  EXPECT_EQ(Value::FromInterface(ref).AsInterface(), ref);
}

TEST(ValueTest, ArraysAndRecords) {
  const Value v = Value::FromRecord({
      {"xs", Value::FromArray({Value::FromInt32(1), Value::FromInt32(2)})},
      {"name", Value::FromString("n")},
  });
  EXPECT_EQ(v.AsRecord().size(), 2u);
  EXPECT_EQ(v.AsRecord()[0].second.AsArray()[1].AsInt32(), 2);
}

TEST(ValueTest, ContainsOpaqueRecurses) {
  EXPECT_TRUE(Value::FromOpaque(1).ContainsOpaque());
  EXPECT_FALSE(Value::FromInt32(1).ContainsOpaque());
  const Value nested = Value::FromRecord({
      {"deep", Value::FromArray({Value::FromRecord({{"ptr", Value::FromOpaque(9)}})})},
  });
  EXPECT_TRUE(nested.ContainsOpaque());
}

TEST(ValueTest, CollectInterfacesRecursesInOrder) {
  const ObjectRef r1{1, Guid::FromName("i1")};
  const ObjectRef r2{2, Guid::FromName("i2")};
  const Value nested = Value::FromArray({
      Value::FromInterface(r1),
      Value::FromRecord({{"x", Value::FromInterface(r2)}}),
      Value::FromInt32(3),
  });
  EXPECT_TRUE(nested.ContainsInterface());
  std::vector<ObjectRef> refs;
  nested.CollectInterfaces(&refs);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0], r1);
  EXPECT_EQ(refs[1], r2);
}

TEST(ValueTest, EqualityDiscriminatesKinds) {
  EXPECT_FALSE(Value::FromInt32(1) == Value::FromInt64(1));
  EXPECT_FALSE(Value::FromBool(false) == Value::Null());
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, ToStringIsReadable) {
  EXPECT_EQ(Value::FromInt32(5).ToString(), "5");
  EXPECT_EQ(Value::FromString("a").ToString(), "\"a\"");
  EXPECT_EQ(Value::BlobOfSize(10).ToString(), "blob[10]");
  EXPECT_EQ(Value::FromArray({Value::FromInt32(1)}).ToString(), "[1]");
}

TEST(ValueKindTest, NamesAreStable) {
  EXPECT_STREQ(ValueKindName(ValueKind::kOpaque), "opaque");
  EXPECT_STREQ(ValueKindName(ValueKind::kInterface), "interface");
}

}  // namespace
}  // namespace coign
