#include "src/profile/icc_profile.h"

#include <gtest/gtest.h>

#include "src/com/class_registry.h"

namespace coign {
namespace {

CallKey MakeKey(ClassificationId src, ClassificationId dst, MethodIndex method = 0) {
  CallKey key;
  key.src = src;
  key.dst = dst;
  key.iid = Guid::FromName("iid:ITest");
  key.method = method;
  return key;
}

ClassificationInfo MakeInfo(ClassificationId id, const std::string& name,
                            uint32_t api = kApiNone) {
  ClassificationInfo info;
  info.id = id;
  info.clsid = Guid::FromName("clsid:" + name);
  info.class_name = name;
  info.api_usage = api;
  return info;
}

TEST(IccProfileTest, EmptyByDefault) {
  IccProfile profile;
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.total_calls(), 0u);
  EXPECT_EQ(profile.FindClassification(3), nullptr);
}

TEST(IccProfileTest, RecordCallAggregatesByKey) {
  IccProfile profile;
  profile.RecordCall(MakeKey(1, 2), 100, 50, true);
  profile.RecordCall(MakeKey(1, 2), 200, 60, true);
  profile.RecordCall(MakeKey(1, 2, /*method=*/1), 5, 5, false);
  EXPECT_EQ(profile.total_calls(), 3u);
  EXPECT_EQ(profile.total_bytes(), 100u + 50 + 200 + 60 + 10);
  ASSERT_EQ(profile.calls().size(), 2u);
  const CallSummary& summary = profile.calls().at(MakeKey(1, 2));
  EXPECT_EQ(summary.call_count(), 2u);
  EXPECT_EQ(summary.requests.total_bytes(), 300u);
  EXPECT_EQ(summary.replies.total_bytes(), 110u);
  EXPECT_EQ(summary.non_remotable_calls, 0u);
  EXPECT_EQ(profile.calls().at(MakeKey(1, 2, 1)).non_remotable_calls, 1u);
}

TEST(IccProfileTest, ClassificationMetadataAndInstantiation) {
  IccProfile profile;
  profile.RecordClassification(MakeInfo(7, "Widget", kApiGui));
  profile.RecordInstantiation(7);
  profile.RecordInstantiation(7);
  profile.RecordInstantiation(99);  // Unknown id: ignored.
  const ClassificationInfo* info = profile.FindClassification(7);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->class_name, "Widget");
  EXPECT_EQ(info->instance_count, 2u);
  EXPECT_EQ(info->api_usage, kApiGui);
}

TEST(IccProfileTest, ComputeAccumulatesPerClassification) {
  IccProfile profile;
  profile.RecordCompute(1, 0.5);
  profile.RecordCompute(1, 0.25);
  profile.RecordCompute(2, 1.0);
  EXPECT_DOUBLE_EQ(profile.ComputeSecondsOf(1), 0.75);
  EXPECT_DOUBLE_EQ(profile.ComputeSecondsOf(2), 1.0);
  EXPECT_DOUBLE_EQ(profile.ComputeSecondsOf(3), 0.0);
  EXPECT_DOUBLE_EQ(profile.total_compute_seconds(), 1.75);
}

TEST(IccProfileTest, MergeIsAssociativeAccumulation) {
  IccProfile a;
  a.RecordClassification(MakeInfo(1, "A"));
  a.RecordInstantiation(1);
  a.RecordCall(MakeKey(1, 2), 100, 10, true);
  a.RecordCompute(1, 0.5);

  IccProfile b;
  b.RecordClassification(MakeInfo(1, "A"));
  b.RecordClassification(MakeInfo(2, "B", kApiStorage));
  b.RecordInstantiation(1);
  b.RecordCall(MakeKey(1, 2), 50, 5, false);
  b.RecordCall(MakeKey(2, 3), 7, 7, true);
  b.RecordCompute(1, 0.5);

  a.Merge(b);
  EXPECT_EQ(a.FindClassification(1)->instance_count, 2u);
  EXPECT_EQ(a.FindClassification(2)->api_usage, kApiStorage);
  EXPECT_EQ(a.calls().at(MakeKey(1, 2)).call_count(), 2u);
  EXPECT_EQ(a.calls().at(MakeKey(1, 2)).non_remotable_calls, 1u);
  EXPECT_EQ(a.total_calls(), 3u);
  EXPECT_DOUBLE_EQ(a.total_compute_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(a.ComputeSecondsOf(1), 1.0);
  EXPECT_EQ(a.SortedClassificationIds(), (std::vector<ClassificationId>{1, 2}));
}

TEST(IccProfileTest, InjectCallSummaryUpdatesTotals) {
  IccProfile profile;
  ExponentialHistogram requests, replies;
  requests.Add(100);
  requests.Add(200);
  replies.Add(10);
  replies.Add(20);
  profile.InjectCallSummary(MakeKey(4, 5), requests, replies, 1);
  EXPECT_EQ(profile.total_calls(), 2u);
  EXPECT_EQ(profile.total_bytes(), 330u);
  EXPECT_EQ(profile.calls().at(MakeKey(4, 5)).non_remotable_calls, 1u);
}

}  // namespace
}  // namespace coign
