#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/com/class_registry.h"
#include "src/fleet/cohort.h"
#include "src/fleet/fingerprint.h"
#include "src/fleet/plan_cache.h"
#include "src/fleet/service.h"
#include "src/fleet/thread_pool.h"
#include "src/sim/fleet_population.h"

namespace coign {
namespace {

// The canonical analysis shape: Gui (pinned client) <-> Worker <-> Store
// (pinned server); Worker follows the heavier edge, which flips as the
// network's relative costs move — so different cohorts really can get
// different cuts.
IccProfile TestProfile(uint64_t gui_bytes = 200, uint64_t store_bytes = 100000) {
  IccProfile profile;
  const auto add = [&](ClassificationId id, const std::string& name, uint32_t api,
                       uint64_t instances) {
    ClassificationInfo info;
    info.id = id;
    info.clsid = Guid::FromName("clsid:" + name);
    info.class_name = name;
    info.api_usage = api;
    info.instance_count = instances;
    profile.RecordClassification(info);
  };
  add(0, "Gui", kApiGui, 2);
  add(1, "Worker", kApiNone, 4);
  add(2, "Store", kApiStorage, 1);
  CallKey gui_worker;
  gui_worker.src = 0;
  gui_worker.dst = 1;
  gui_worker.iid = Guid::FromName("iid:IFleetTest");
  CallKey worker_store = gui_worker;
  worker_store.src = 1;
  worker_store.dst = 2;
  profile.RecordCall(gui_worker, gui_bytes, 64, true);
  profile.RecordCall(worker_store, store_bytes, 64, true);
  profile.RecordCompute(1, 0.25);
  return profile;
}

std::vector<FleetClient> TestFleet(int clients, uint64_t seed = 42) {
  FleetPopulationOptions options;
  options.client_count = clients;
  return GenerateFleet(options, seed);
}

TEST(CohortTest, BucketCenterLandsInItsOwnBucket) {
  const CohortingOptions options;
  for (const NetworkModel& model :
       {NetworkModel::Isdn(), NetworkModel::TenBaseT(), NetworkModel::San()}) {
    const CohortKey key = BucketOf(model, options);
    const NetworkModel center = BucketCenter(key, options);
    EXPECT_EQ(BucketOf(center, options), key) << model.name;
  }
}

TEST(CohortTest, NearbyClientsShareABucketDistantOnesDoNot) {
  const CohortingOptions options;
  const NetworkModel base = NetworkModel::TenBaseT();
  // 10^(1/8) per bucket: a 1% perturbation stays put (away from an edge, as
  // the preset happens to sit), a 10x shift moves a full decade of buckets.
  EXPECT_EQ(BucketOf(base, options), BucketOf(base.Scaled(1.01, 1.0), options));
  const CohortKey shifted = BucketOf(base.Scaled(10.0, 0.1), options);
  EXPECT_EQ(shifted.latency_bucket, BucketOf(base, options).latency_bucket + 8);
  EXPECT_EQ(shifted.bandwidth_bucket, BucketOf(base, options).bandwidth_bucket - 8);
}

TEST(CohortTest, BuildCohortsPartitionsTheFleetInGridOrder) {
  const std::vector<FleetClient> fleet = TestFleet(200);
  const CohortingOptions options;
  const std::vector<Cohort> cohorts = BuildCohorts(fleet, options);
  ASSERT_FALSE(cohorts.empty());

  std::set<uint32_t> seen;
  for (size_t i = 0; i < cohorts.size(); ++i) {
    if (i > 0) {
      EXPECT_TRUE(cohorts[i - 1].key < cohorts[i].key);
    }
    EXPECT_EQ(BucketOf(cohorts[i].representative, options), cohorts[i].key);
    for (uint32_t member : cohorts[i].members) {
      EXPECT_EQ(BucketOf(fleet[member].network, options), cohorts[i].key);
      EXPECT_TRUE(seen.insert(member).second) << "client in two cohorts";
    }
  }
  EXPECT_EQ(seen.size(), fleet.size());
}

TEST(CohortTest, LossyClientsBucketApartFromCleanOnes) {
  const CohortingOptions options;
  FleetClient clean;
  clean.network = NetworkModel::TenBaseT();
  FleetClient lossy = clean;
  lossy.fault_rates.drop = 0.01;

  const CohortKey clean_key = BucketOf(clean, options);
  const CohortKey lossy_key = BucketOf(lossy, options);
  EXPECT_EQ(clean_key.loss_bucket, 0);
  EXPECT_LT(lossy_key.loss_bucket, 0);
  // Same link, different keys: a lossy client never shares a plan with a
  // clean one.
  EXPECT_EQ(clean_key.latency_bucket, lossy_key.latency_bucket);
  EXPECT_EQ(clean_key.bandwidth_bucket, lossy_key.bandwidth_bucket);
  EXPECT_TRUE(clean_key < lossy_key || lossy_key < clean_key);
  EXPECT_NE(clean_key.ToString(), lossy_key.ToString());
  // The loss axis only shows for lossy buckets; clean names are unchanged.
  EXPECT_EQ(clean_key.ToString().find("/D"), std::string::npos);
  EXPECT_NE(lossy_key.ToString().find("/D"), std::string::npos);

  // Below the clean threshold the loss axis stays off entirely.
  FleetClient barely = clean;
  barely.fault_rates.drop = options.clean_drop_threshold / 2.0;
  EXPECT_EQ(BucketOf(barely, options).loss_bucket, 0);

  // The bucket's representative drop rate lands back in the same bucket.
  FleetClient center = clean;
  center.fault_rates.drop = BucketDropCenter(lossy_key.loss_bucket, options);
  EXPECT_EQ(BucketOf(center, options).loss_bucket, lossy_key.loss_bucket);
}

TEST(CohortTest, InflateForLossChargesExpectedRetransmissions) {
  const NetworkModel base = NetworkModel::TenBaseT();
  const NetworkModel inflated = InflateForLoss(base, 0.5);
  // p = 0.5 doubles the expected attempts per delivery: latency doubles,
  // effective bandwidth halves.
  EXPECT_DOUBLE_EQ(inflated.per_message_seconds, base.per_message_seconds * 2.0);
  EXPECT_DOUBLE_EQ(inflated.bytes_per_second, base.bytes_per_second / 2.0);
  // Zero loss is the identity.
  const NetworkModel untouched = InflateForLoss(base, 0.0);
  EXPECT_DOUBLE_EQ(untouched.per_message_seconds, base.per_message_seconds);
  EXPECT_DOUBLE_EQ(untouched.bytes_per_second, base.bytes_per_second);
}

TEST(CohortTest, GenerateFleetLossyFractionDrawsLossyClients) {
  FleetPopulationOptions options;
  options.client_count = 400;
  // Default population is loss-free (back compatible).
  for (const FleetClient& client : GenerateFleet(options, 42)) {
    EXPECT_EQ(client.fault_rates.drop, 0.0);
  }
  options.lossy_fraction = 0.25;
  const std::vector<FleetClient> fleet = GenerateFleet(options, 42);
  size_t lossy = 0;
  for (const FleetClient& client : fleet) {
    if (client.fault_rates.drop > 0.0) {
      ++lossy;
      EXPECT_GE(client.fault_rates.drop, options.min_drop_rate);
      EXPECT_LE(client.fault_rates.drop, options.max_drop_rate);
    }
  }
  EXPECT_GT(lossy, fleet.size() / 8);
  EXPECT_LT(lossy, fleet.size() / 2);
  // Loss draws ride forked per-client streams: the networks of a lossy
  // population match the loss-free one byte for byte.
  const std::vector<FleetClient> clean = GenerateFleet(
      [&] { FleetPopulationOptions o = options; o.lossy_fraction = 0.0; return o; }(),
      42);
  ASSERT_EQ(clean.size(), fleet.size());
  for (size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(clean[i].network.per_message_seconds,
              fleet[i].network.per_message_seconds);
    EXPECT_EQ(clean[i].network.bytes_per_second, fleet[i].network.bytes_per_second);
  }
}

TEST(FingerprintTest, InsensitiveToRecordingOrderSensitiveToContent) {
  const uint64_t base = ProfileFingerprint(TestProfile());
  EXPECT_EQ(base, ProfileFingerprint(TestProfile()));

  // Same calls recorded in a different interleaving: same fingerprint.
  IccProfile reordered = TestProfile();
  EXPECT_EQ(base, ProfileFingerprint(reordered));

  EXPECT_NE(base, ProfileFingerprint(TestProfile(/*gui_bytes=*/201)));
  EXPECT_NE(base, ProfileFingerprint(TestProfile(200, 100001)));
}

TEST(PlanCacheTest, CountsHitsAndMissesAndEvictsLru) {
  PlanCache cache(2);
  AnalysisResult plan;
  const auto key = [](int32_t bucket) {
    return PlanCacheKey{1, CohortKey{bucket, 0}};
  };

  EXPECT_FALSE(cache.Lookup(key(0)).has_value());
  cache.Insert(key(0), plan);
  cache.Insert(key(1), plan);
  EXPECT_TRUE(cache.Lookup(key(0)).has_value());  // Refreshes 0 over 1.
  cache.Insert(key(2), plan);                     // Evicts 1, the LRU.
  EXPECT_TRUE(cache.Lookup(key(0)).has_value());
  EXPECT_FALSE(cache.Lookup(key(1)).has_value());
  EXPECT_TRUE(cache.Lookup(key(2)).has_value());

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, DistinctProfilesDoNotCollide) {
  PlanCache cache(8);
  AnalysisResult plan;
  cache.Insert(PlanCacheKey{1, CohortKey{0, 0}}, plan);
  EXPECT_FALSE(cache.Lookup(PlanCacheKey{2, CohortKey{0, 0}}).has_value());
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  AnalysisResult plan;
  cache.Insert(PlanCacheKey{1, CohortKey{0, 0}}, plan);
  EXPECT_FALSE(cache.Lookup(PlanCacheKey{1, CohortKey{0, 0}}).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

// A plan with every serialized field populated, so the round-trip tests
// exercise the full snapshot format (bit-pattern doubles included).
AnalysisResult SnapshotPlan(double seconds) {
  AnalysisResult plan;
  plan.predicted_comm_seconds = seconds;
  plan.total_comm_seconds = seconds * 3.0 + 0.1;
  plan.client_classifications = 2;
  plan.server_classifications = 1;
  plan.client_instances = 6;
  plan.server_instances = 1;
  plan.non_remotable_pairs = 1;
  plan.distribution.default_machine = kClientMachine;
  plan.distribution.placement[0] = kClientMachine;
  plan.distribution.placement[1] = kClientMachine;
  plan.distribution.placement[2] = kServerMachine;
  CutEdgeReport edge;
  edge.client_side = 1;
  edge.server_side = 2;
  edge.seconds = seconds / 7.0;  // Not decimal-round; bit pattern must survive.
  plan.cut_edges.push_back(edge);
  return plan;
}

TEST(PlanCacheTest, SerializeLoadRoundTripsByteExactly) {
  PlanCache cache(8);
  cache.Insert(PlanCacheKey{11, CohortKey{0, 1}}, SnapshotPlan(0.125));
  cache.Insert(PlanCacheKey{11, CohortKey{2, 3}}, SnapshotPlan(1.0 / 3.0));
  cache.Insert(PlanCacheKey{12, CohortKey{0, 1}}, SnapshotPlan(2.7182818));

  const std::string snapshot = cache.Serialize();
  PlanCache reloaded(8);
  ASSERT_TRUE(reloaded.Load(snapshot).ok());
  EXPECT_EQ(reloaded.size(), 3u);
  // Byte-exact round trip: reserializing the loaded cache reproduces the
  // snapshot, LRU order and double bit patterns included.
  EXPECT_EQ(reloaded.Serialize(), snapshot);

  const auto hit = reloaded.Lookup(PlanCacheKey{11, CohortKey{2, 3}});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->predicted_comm_seconds, 1.0 / 3.0);
  EXPECT_EQ(hit->distribution.placement.at(2), kServerMachine);
  ASSERT_EQ(hit->cut_edges.size(), 1u);
  EXPECT_EQ(hit->cut_edges[0].seconds, (1.0 / 3.0) / 7.0);
}

TEST(PlanCacheTest, LoadPreservesLruOrderAcrossRestart) {
  PlanCache cache(2);
  const auto key = [](int32_t bucket) {
    return PlanCacheKey{1, CohortKey{bucket, 0}};
  };
  cache.Insert(key(0), SnapshotPlan(0.1));
  cache.Insert(key(1), SnapshotPlan(0.2));
  (void)cache.Lookup(key(0));  // 0 is now most recent; 1 is the LRU.

  PlanCache reloaded(2);
  ASSERT_TRUE(reloaded.Load(cache.Serialize()).ok());
  reloaded.Insert(key(2), SnapshotPlan(0.3));  // Must evict 1, not 0.
  EXPECT_TRUE(reloaded.Lookup(key(0)).has_value());
  EXPECT_FALSE(reloaded.Lookup(key(1)).has_value());
  EXPECT_TRUE(reloaded.Lookup(key(2)).has_value());
}

TEST(PlanCacheTest, LoadIntoSmallerCacheKeepsTheMostRecentEntries) {
  PlanCache cache(4);
  const auto key = [](int32_t bucket) {
    return PlanCacheKey{1, CohortKey{bucket, 0}};
  };
  for (int32_t bucket = 0; bucket < 4; ++bucket) {
    cache.Insert(key(bucket), SnapshotPlan(0.1 * (bucket + 1)));
  }

  PlanCache smaller(2);
  ASSERT_TRUE(smaller.Load(cache.Serialize()).ok());
  EXPECT_EQ(smaller.size(), 2u);
  EXPECT_TRUE(smaller.Lookup(key(3)).has_value());
  EXPECT_TRUE(smaller.Lookup(key(2)).has_value());
  EXPECT_FALSE(smaller.Lookup(key(0)).has_value());
}

TEST(PlanCacheTest, LoadRejectsMalformedSnapshots) {
  PlanCache cache(4);
  EXPECT_FALSE(cache.Load("not a cache").ok());
  EXPECT_FALSE(cache.Load("plan-cache v9 0\n").ok());
  EXPECT_FALSE(cache.Load("plan-cache v1 1\nentry oops\n").ok());
  // v4 (checksummed records) is current; v3 (exact cut values), v2 (loss
  // buckets, no cut units) and v1 still load. Empty snapshots are fine in
  // all versions.
  EXPECT_TRUE(cache.Load("plan-cache v4 0\n").ok());
  EXPECT_TRUE(cache.Load("plan-cache v3 0\n").ok());
  EXPECT_TRUE(cache.Load("plan-cache v2 0\n").ok());
}

TEST(PlanCacheTest, V4DamageIsLocalizedToTheDamagedRecord) {
  PlanCache cache(8);
  cache.Insert(PlanCacheKey{11, CohortKey{0, 1}}, SnapshotPlan(0.125));
  cache.Insert(PlanCacheKey{11, CohortKey{2, 3}}, SnapshotPlan(1.0 / 3.0));
  cache.Insert(PlanCacheKey{12, CohortKey{0, 1}}, SnapshotPlan(2.7182818));
  std::string snapshot = cache.Serialize();

  // Flip one bit in the middle record's plan line: only that record is
  // dropped (and counted); its neighbors load intact.
  const size_t damage = snapshot.find("plan ", snapshot.find("plan ") + 1);
  ASSERT_NE(damage, std::string::npos);
  snapshot[damage] ^= 0x08;
  PlanCache reloaded(8);
  ASSERT_TRUE(reloaded.Load(snapshot).ok());
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.stats().corrupt_skipped, 1u);
  EXPECT_TRUE(reloaded.Lookup(PlanCacheKey{11, CohortKey{0, 1}}).has_value());
  EXPECT_TRUE(reloaded.Lookup(PlanCacheKey{12, CohortKey{0, 1}}).has_value());

  // A truncated tail (torn write) drops the unfinished record without
  // counting it as corruption.
  const std::string full = cache.Serialize();
  const std::string torn = full.substr(0, full.size() - 10);
  PlanCache torn_cache(8);
  ASSERT_TRUE(torn_cache.Load(torn).ok());
  EXPECT_EQ(torn_cache.size(), 2u);
  EXPECT_EQ(torn_cache.stats().corrupt_skipped, 0u);
}

TEST(PlanCacheTest, V3SnapshotsStillLoadStrictly) {
  PlanCache cache(8);
  cache.Insert(PlanCacheKey{11, CohortKey{0, 1}}, SnapshotPlan(0.125));
  cache.Insert(PlanCacheKey{11, CohortKey{2, 3}}, SnapshotPlan(1.0 / 3.0));
  // Rewrite the v4 snapshot as its v3 equivalent: same record lines, no
  // crc lines, v3 header.
  std::istringstream in(cache.Serialize());
  std::string line;
  std::getline(in, line);
  std::string v3 = "plan-cache v3 2\n";
  while (std::getline(in, line)) {
    if (line.compare(0, 4, "crc ") != 0) {
      v3 += line;
      v3 += '\n';
    }
  }
  PlanCache reloaded(8);
  ASSERT_TRUE(reloaded.Load(v3).ok());
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_TRUE(reloaded.Lookup(PlanCacheKey{11, CohortKey{2, 3}}).has_value());
  // v3 has no checksums to localize damage: any mangled byte still fails
  // the whole load.
  std::string mangled = v3;
  const size_t plan_pos = mangled.find("plan ");
  ASSERT_NE(plan_pos, std::string::npos);
  mangled[plan_pos] = 'q';
  PlanCache strict(8);
  EXPECT_FALSE(strict.Load(mangled).ok());
}

TEST(FleetServiceTest, CacheFileRoundTripServesWarmRestart) {
  const IccProfile profile = TestProfile();
  const std::vector<FleetClient> fleet = TestFleet(48);
  const std::string path = ::testing::TempDir() + "/coign_plan_cache_test.txt";

  FleetServiceOptions options;
  options.worker_threads = 1;
  FleetPartitionService cold(options);
  Result<FleetPlanResult> first = cold.Plan(profile, fleet);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->stats.plans_computed, 0u);
  ASSERT_TRUE(cold.SaveCache(path).ok());

  FleetPartitionService warm(options);
  ASSERT_TRUE(warm.LoadCache(path).ok());
  EXPECT_EQ(warm.cache_size(), cold.cache_size());
  Result<FleetPlanResult> second = warm.Plan(profile, fleet);
  ASSERT_TRUE(second.ok());
  // A warm restart recomputes nothing and serves identical plans.
  EXPECT_EQ(second->stats.plans_computed, 0u);
  EXPECT_EQ(second->stats.cache_hits, second->stats.cohorts);
  ASSERT_EQ(second->plans.size(), first->plans.size());
  for (size_t i = 0; i < first->plans.size(); ++i) {
    EXPECT_EQ(second->plans[i].analysis.predicted_comm_seconds,
              first->plans[i].analysis.predicted_comm_seconds);
    EXPECT_EQ(second->plans[i].analysis.distribution.placement,
              first->plans[i].analysis.distribution.placement);
  }

  FleetPartitionService missing(options);
  EXPECT_EQ(missing.LoadCache(path + ".does-not-exist").code(),
            StatusCode::kNotFound);
}

TEST(WorkerPoolTest, RunsEveryIndexExactlyOnce) {
  for (const int threads : {1, 4}) {
    WorkerPool pool(threads);
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<int>> runs(kCount);
    pool.ParallelFor(kCount, [&](size_t i) { runs[i].fetch_add(1); });
    for (size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(runs[i].load(), 1) << i;
    }
    pool.ParallelFor(0, [&](size_t) { ADD_FAILURE() << "empty batch ran a task"; });
  }
}

TEST(WorkerPoolTest, BatchesAreReusable) {
  WorkerPool pool(3);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(17, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 50u * 17u);
}

TEST(FleetServiceTest, RejectsAnEmptyFleet) {
  FleetPartitionService service;
  const IccProfile profile = TestProfile();
  Result<FleetPlanResult> planned = service.Plan(profile, {});
  ASSERT_FALSE(planned.ok());
  EXPECT_EQ(planned.status().code(), StatusCode::kInvalidArgument);
}

TEST(FleetServiceTest, EveryClientIsServedByItsOwnBucket) {
  FleetServiceOptions options;
  options.worker_threads = 4;
  FleetPartitionService service(options);
  const IccProfile profile = TestProfile();
  const std::vector<FleetClient> fleet = TestFleet(150);
  Result<FleetPlanResult> planned = service.Plan(profile, fleet);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned->stats.clients, fleet.size());
  EXPECT_EQ(planned->stats.plans_computed, planned->stats.cohorts);
  for (const FleetClient& client : fleet) {
    const int index = planned->CohortIndexOf(client.id);
    ASSERT_GE(index, 0) << client.id;
    EXPECT_EQ(planned->plans[index].cohort.key,
              BucketOf(client.network, options.cohorting));
    // Pins hold in every cohort's plan.
    const Distribution& d = planned->plans[index].analysis.distribution;
    EXPECT_EQ(d.MachineFor(0), kClientMachine);
    EXPECT_EQ(d.MachineFor(2), kServerMachine);
  }
}

TEST(FleetServiceTest, ParallelPlanningMatchesSerialBitForBit) {
  const IccProfile profile = TestProfile();
  const std::vector<FleetClient> fleet = TestFleet(200);

  const auto plan_with = [&](int threads) {
    FleetServiceOptions options;
    options.worker_threads = threads;
    options.compute_regret = true;
    FleetPartitionService service(options);
    Result<FleetPlanResult> planned = service.Plan(profile, fleet);
    EXPECT_TRUE(planned.ok());
    return *planned;
  };

  const FleetPlanResult serial = plan_with(1);
  const FleetPlanResult parallel = plan_with(8);
  ASSERT_EQ(serial.plans.size(), parallel.plans.size());
  for (size_t i = 0; i < serial.plans.size(); ++i) {
    EXPECT_EQ(serial.plans[i].cohort.key, parallel.plans[i].cohort.key);
    EXPECT_EQ(serial.plans[i].cohort.members, parallel.plans[i].cohort.members);
    for (ClassificationId id = 0; id < 3; ++id) {
      EXPECT_EQ(serial.plans[i].analysis.distribution.MachineFor(id),
                parallel.plans[i].analysis.distribution.MachineFor(id));
    }
    EXPECT_EQ(serial.plans[i].analysis.predicted_comm_seconds,
              parallel.plans[i].analysis.predicted_comm_seconds);
  }
  // Regret reductions run in index order on the coordinator, so even the
  // accumulated doubles are identical, not merely close.
  EXPECT_EQ(serial.regret.mean, parallel.regret.mean);
  EXPECT_EQ(serial.regret.p95, parallel.regret.p95);
  EXPECT_EQ(serial.regret.max, parallel.regret.max);
}

TEST(FleetServiceTest, SecondPassIsServedEntirelyFromCache) {
  FleetServiceOptions options;
  options.worker_threads = 4;
  FleetPartitionService service(options);
  const IccProfile profile = TestProfile();
  const std::vector<FleetClient> fleet = TestFleet(120);

  Result<FleetPlanResult> first = service.Plan(profile, fleet);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->stats.cache_hits, 0u);

  Result<FleetPlanResult> second = service.Plan(profile, fleet);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.plans_computed, 0u);
  EXPECT_EQ(second->stats.cache_hits, second->stats.cohorts);
  for (const CohortPlan& plan : second->plans) {
    EXPECT_TRUE(plan.from_cache);
  }
  EXPECT_GT(service.cache_stats().hit_rate(), 0.0);

  // A different profile is a different cache namespace: all misses again.
  const IccProfile other = TestProfile(/*gui_bytes=*/5000);
  Result<FleetPlanResult> third = service.Plan(other, fleet);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->stats.cache_hits, 0u);
}

TEST(FleetServiceTest, CohortRegretStaysSmall) {
  FleetServiceOptions options;
  options.worker_threads = 4;
  options.compute_regret = true;
  FleetPartitionService service(options);
  const IccProfile profile = TestProfile();
  Result<FleetPlanResult> planned = service.Plan(profile, TestFleet(300));
  ASSERT_TRUE(planned.ok());
  EXPECT_GE(planned->regret.mean, 0.0);
  EXPECT_LE(planned->regret.mean, 0.10);  // The issue's acceptance bound.
  EXPECT_GE(planned->regret.max, planned->regret.p95);
  EXPECT_GT(planned->regret.mean_optimal_seconds, 0.0);
}

}  // namespace
}  // namespace coign
