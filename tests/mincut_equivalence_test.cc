// Equivalence fuzzing of the two minimum-cut implementations: on every
// graph, relabel-to-front (the production algorithm, per the paper's
// lift-to-front reference) and Edmonds-Karp (the verification baseline)
// must find the same cut value. Cuts themselves may differ when several
// minimum cuts exist, but both returned partitions must separate the
// terminals and both cut values must equal the capacity actually crossing
// the returned partition.

#include <gtest/gtest.h>

#include <vector>

#include "src/mincut/edmonds_karp.h"
#include "src/mincut/flow_network.h"
#include "src/mincut/relabel_to_front.h"
#include "src/support/rng.h"

namespace coign {
namespace {

constexpr int kGraphs = 220;

// Capacity crossing the partition claimed by a cut result, recomputed
// from the network's arcs (forward arcs leaving the source side).
double PartitionCapacity(const FlowNetwork& network, const CutResult& cut) {
  double total = 0.0;
  for (int node = 0; node < network.node_count(); ++node) {
    if (!cut.in_source_side[node]) {
      continue;
    }
    for (const FlowArc& arc : network.ArcsFrom(node)) {
      if (!cut.in_source_side[arc.to]) {
        total += arc.capacity;
      }
    }
  }
  return total;
}

// Random graph in the shape the analysis engine produces: two terminals,
// a pool of inner nodes, mostly-sparse undirected edges with occasional
// effectively-infinite (constraint) capacities, plus guaranteed terminal
// attachment so the cut is never trivially zero for want of edges.
FlowNetwork RandomGraph(Rng& rng, int* source, int* sink) {
  const int inner = static_cast<int>(rng.UniformInt(2, 14));
  const int n = inner + 2;
  *source = 0;
  *sink = 1;
  FlowNetwork network(n);

  auto capacity = [&rng]() {
    if (rng.Bernoulli(0.06)) {
      return kInfiniteCapacity;  // A location-constraint pin.
    }
    // Mix of tiny and large finite capacities, including ties.
    return rng.Bernoulli(0.3) ? static_cast<double>(rng.UniformInt(1, 4))
                              : rng.UniformDouble(0.001, 50.0);
  };

  // Every inner node touches at least one terminal or earlier node, so
  // the graph is connected in expectation-relevant ways.
  for (int node = 2; node < n; ++node) {
    const int anchor = static_cast<int>(rng.UniformInt(0, node - 1));
    network.AddEdge(anchor, node, capacity());
  }
  // Extra random edges, density ~2 per node.
  const int extra = 2 * inner;
  for (int i = 0; i < extra; ++i) {
    const int a = static_cast<int>(rng.UniformInt(0, n - 1));
    const int b = static_cast<int>(rng.UniformInt(0, n - 1));
    if (a == b) {
      continue;
    }
    if (rng.Bernoulli(0.8)) {
      network.AddEdge(a, b, capacity());
    } else {
      network.AddArc(a, b, capacity());  // Some asymmetric traffic.
    }
  }
  // Make sure both terminals have any incident capacity at all.
  network.AddEdge(*source, static_cast<int>(rng.UniformInt(2, n - 1)),
                  rng.UniformDouble(0.01, 10.0));
  network.AddEdge(*sink, static_cast<int>(rng.UniformInt(2, n - 1)),
                  rng.UniformDouble(0.01, 10.0));
  return network;
}

void CheckPartition(const FlowNetwork& network, const CutResult& cut, int source,
                    int sink, const char* label) {
  ASSERT_EQ(static_cast<int>(cut.in_source_side.size()), network.node_count())
      << label;
  EXPECT_TRUE(cut.in_source_side[source]) << label;
  EXPECT_FALSE(cut.in_source_side[sink]) << label;
  // Max-flow/min-cut certificate: the capacity crossing the returned
  // partition equals the reported cut value.
  const double crossing = PartitionCapacity(network, cut);
  EXPECT_NEAR(crossing, cut.cut_value, 1e-6 * (1.0 + crossing)) << label;
}

TEST(MinCutEquivalenceTest, RelabelToFrontMatchesEdmondsKarpOnRandomGraphs) {
  Rng rng(20260806);
  for (int i = 0; i < kGraphs; ++i) {
    SCOPED_TRACE(::testing::Message() << "graph=" << i);
    int source = 0, sink = 1;
    FlowNetwork network = RandomGraph(rng, &source, &sink);

    const CutResult lift = MinCutRelabelToFront(network, source, sink);
    const CutResult baseline = MinCutEdmondsKarp(network, source, sink);

    EXPECT_NEAR(lift.cut_value, baseline.cut_value,
                1e-6 * (1.0 + baseline.cut_value));
    CheckPartition(network, lift, source, sink, "relabel_to_front");
    CheckPartition(network, baseline, source, sink, "edmonds_karp");
  }
}

TEST(MinCutEquivalenceTest, AgreeOnDisconnectedTerminals) {
  // No path between terminals: both algorithms must report a zero cut
  // with the sink outside the source side.
  FlowNetwork network(4);
  network.AddEdge(0, 2, 5.0);  // Source's island.
  network.AddEdge(1, 3, 7.0);  // Sink's island.
  const CutResult lift = MinCutRelabelToFront(network, 0, 1);
  const CutResult baseline = MinCutEdmondsKarp(network, 0, 1);
  EXPECT_DOUBLE_EQ(lift.cut_value, 0.0);
  EXPECT_DOUBLE_EQ(baseline.cut_value, 0.0);
  EXPECT_FALSE(lift.in_source_side[1]);
  EXPECT_FALSE(baseline.in_source_side[1]);
}

TEST(MinCutEquivalenceTest, ReplaysDeterministically) {
  // The generator itself is part of the test's determinism contract.
  auto fingerprint = [](uint64_t seed) {
    Rng rng(seed);
    int source = 0, sink = 1;
    FlowNetwork network = RandomGraph(rng, &source, &sink);
    const CutResult cut = MinCutRelabelToFront(network, source, sink);
    return cut.cut_value;
  };
  EXPECT_EQ(fingerprint(11), fingerprint(11));
  EXPECT_EQ(fingerprint(12), fingerprint(12));
}

}  // namespace
}  // namespace coign
