// Differential fuzz oracle for the minimum-cut stack: on every generated
// graph, relabel-to-front (the paper's lift-to-front reference),
// Edmonds-Karp (the verification baseline), the highest-label
// push-relabel production solver — cold AND warm-started from a fuzzed
// capacity perturbation — and an exhaustive reference min-cut
// (independent of any flow algorithm) must agree on the cut value
// EXACTLY — integer equality in CapUnits, no epsilon, no ulp slack. Cuts themselves may differ when several minimum
// cuts exist, but both returned partitions must separate the terminals and
// both cut values must equal the capacity actually crossing the returned
// partition.
//
// The generator deliberately produces adversarial shapes: tied cuts (many
// equal-value minimum cuts from tiny integer capacities), near-equal
// capacities (huge bases ± 1 unit, where any float arithmetic would lose
// the low bits), sentinel constraint edges up to fully infeasible
// pure-sentinel s-t paths, degenerate 2-node graphs, and disconnected
// terminals. A failing graph is shrunk to a minimal repro — greedy edge
// removal while the disagreement persists, mirroring the fault harness's
// SmallestFailingPrefix — and printed as an AddEdge/AddArc transcript.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/mincut/compact_flow_network.h"
#include "src/mincut/edmonds_karp.h"
#include "src/mincut/flow_network.h"
#include "src/mincut/incremental.h"
#include "src/mincut/push_relabel.h"
#include "src/mincut/relabel_to_front.h"
#include "src/support/rng.h"

namespace coign {
namespace {

// The CI gate (and the issue's acceptance bar) is >= 500 seeded graphs.
constexpr int kGraphs = 520;

// ---------------------------------------------------------------------------
// Graph specification: a flat edge list, so shrinking is list surgery.

struct SpecEdge {
  int a = 0;
  int b = 0;
  CapUnits capacity = 0;
  bool directed = false;
};

struct GraphSpec {
  int node_count = 2;
  int source = 0;
  int sink = 1;
  std::vector<SpecEdge> edges;
};

FlowNetwork BuildNetwork(const GraphSpec& spec) {
  FlowNetwork network(spec.node_count);
  for (const SpecEdge& edge : spec.edges) {
    if (edge.directed) {
      network.AddArc(edge.a, edge.b, edge.capacity);
    } else {
      network.AddEdge(edge.a, edge.b, edge.capacity);
    }
  }
  return network;
}

std::string Describe(const GraphSpec& spec) {
  std::ostringstream out;
  out << "FlowNetwork network(" << spec.node_count << ");  // source="
      << spec.source << " sink=" << spec.sink << "\n";
  for (const SpecEdge& edge : spec.edges) {
    out << "network." << (edge.directed ? "AddArc" : "AddEdge") << "(" << edge.a
        << ", " << edge.b << ", ";
    if (edge.capacity == kInfiniteCapacity) {
      out << "kInfiniteCapacity";
    } else {
      out << edge.capacity;
    }
    out << ");\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Reference oracle: exhaustive minimum cut by partition enumeration.
//
// Independent of both flow algorithms — it never routes a unit of flow.
// For every subset S with source in S and sink out of S, sum the capacity
// of stored arcs leaving S (undirected edges contribute their arc in the
// crossing direction; AddArc's zero-capacity reverse stubs add nothing)
// and take the exact minimum. Saturating addition makes the infeasible
// case (every cut crosses a sentinel) come out as exactly
// kInfiniteCapacity, matching the algorithms' promotion rule. Exponential
// in non-terminal nodes, so the generator keeps graphs <= 12 nodes.

CapUnits ReferenceMinCut(const GraphSpec& spec) {
  const FlowNetwork network = BuildNetwork(spec);
  const int n = network.node_count();
  std::vector<int> inner;
  for (int v = 0; v < n; ++v) {
    if (v != spec.source && v != spec.sink) {
      inner.push_back(v);
    }
  }
  CapUnits best = kInfiniteCapacity;
  const uint64_t subsets = uint64_t{1} << inner.size();
  std::vector<bool> in_s(static_cast<size_t>(n), false);
  for (uint64_t mask = 0; mask < subsets; ++mask) {
    std::fill(in_s.begin(), in_s.end(), false);
    in_s[static_cast<size_t>(spec.source)] = true;
    for (size_t i = 0; i < inner.size(); ++i) {
      if ((mask >> i) & 1) {
        in_s[static_cast<size_t>(inner[i])] = true;
      }
    }
    CapUnits crossing = 0;
    for (int v = 0; v < n; ++v) {
      if (!in_s[static_cast<size_t>(v)]) {
        continue;
      }
      for (const FlowArc& arc : network.ArcsFrom(v)) {
        if (!in_s[static_cast<size_t>(arc.to)]) {
          crossing = SatAdd(crossing, arc.capacity);
        }
      }
    }
    best = std::min(best, crossing);
  }
  return best;
}

// Capacity crossing the partition claimed by a cut result, recomputed
// exactly from the network's arcs (forward arcs leaving the source side).
CapUnits PartitionCapacity(const FlowNetwork& network, const CutResult& cut) {
  CapUnits total = 0;
  for (int node = 0; node < network.node_count(); ++node) {
    if (!cut.in_source_side[static_cast<size_t>(node)]) {
      continue;
    }
    for (const FlowArc& arc : network.ArcsFrom(node)) {
      if (!cut.in_source_side[static_cast<size_t>(arc.to)]) {
        total = SatAdd(total, arc.capacity);
      }
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Adversarial generator. Five families, cycled by seed so every family
// gets >= 100 of the >= 500 graphs.

constexpr int kFamilies = 5;

const char* FamilyName(int family) {
  switch (family) {
    case 0: return "tied-cuts";
    case 1: return "near-equal";
    case 2: return "sentinel-heavy";
    case 3: return "degenerate";
    default: return "general-mix";
  }
}

GraphSpec GenGraph(uint64_t seed) {
  Rng rng(seed);
  const int family = static_cast<int>(seed % kFamilies);
  GraphSpec spec;

  if (family == 3) {
    // Degenerate shapes: 2-node graphs (empty, single finite edge, single
    // sentinel edge, antiparallel arcs) and disconnected islands.
    const int shape = static_cast<int>(rng.UniformInt(0, 4));
    switch (shape) {
      case 0:
        spec.node_count = 2;  // No edges at all: cut must be exactly 0.
        break;
      case 1:
        spec.node_count = 2;
        spec.edges.push_back({0, 1, rng.UniformInt(1, 1'000'000), false});
        break;
      case 2:
        spec.node_count = 2;  // Pure sentinel edge: infeasible by itself.
        spec.edges.push_back({0, 1, kInfiniteCapacity, false});
        break;
      case 3:
        spec.node_count = 2;  // Antiparallel directed arcs, unequal.
        spec.edges.push_back({0, 1, rng.UniformInt(1, 100), true});
        spec.edges.push_back({1, 0, rng.UniformInt(1, 100), true});
        break;
      default:
        // Disconnected: source island {0,2}, sink island {1,3}.
        spec.node_count = 4;
        spec.edges.push_back({0, 2, rng.UniformInt(1, 1'000'000), false});
        spec.edges.push_back({1, 3, rng.UniformInt(1, 1'000'000), false});
        if (rng.Bernoulli(0.5)) {
          spec.edges.push_back({2, 3, 0, false});  // Zero-capacity bridge.
        }
        break;
    }
    return spec;
  }

  const int inner = static_cast<int>(rng.UniformInt(2, 10));
  spec.node_count = inner + 2;
  const int n = spec.node_count;

  auto capacity = [&rng, family]() -> CapUnits {
    switch (family) {
      case 0:
        // Tied cuts: tiny integers manufacture many equal minimum cuts.
        return rng.UniformInt(1, 4);
      case 1: {
        // Near-equal: a huge common base with +-1 deltas. Any double
        // arithmetic would round these to the same value (2^52 < base);
        // exact arithmetic must keep them apart.
        constexpr CapUnits base = CapUnits{1} << 53;
        return base + rng.UniformInt(-1, 1);
      }
      case 2:
        // Sentinel-heavy: frequent constraint pins, sometimes chaining
        // into a fully infeasible pure-sentinel s-t path.
        if (rng.Bernoulli(0.25)) {
          return kInfiniteCapacity;
        }
        return rng.UniformInt(1, 1'000'000);
      default:
        // General mix: wide dynamic range plus occasional pins and ties.
        if (rng.Bernoulli(0.06)) {
          return kInfiniteCapacity;
        }
        return rng.Bernoulli(0.3) ? rng.UniformInt(1, 4)
                                  : rng.UniformInt(1, 50'000'000'000'000);
    }
  };

  // Every inner node touches at least one terminal or earlier node, so
  // the graph is connected in expectation-relevant ways.
  for (int node = 2; node < n; ++node) {
    const int anchor = static_cast<int>(rng.UniformInt(0, node - 1));
    spec.edges.push_back({anchor, node, capacity(), false});
  }
  // Extra random edges, density ~2 per node; some asymmetric traffic.
  const int extra = 2 * inner;
  for (int i = 0; i < extra; ++i) {
    const int a = static_cast<int>(rng.UniformInt(0, n - 1));
    const int b = static_cast<int>(rng.UniformInt(0, n - 1));
    if (a == b) {
      continue;
    }
    spec.edges.push_back({a, b, capacity(), !rng.Bernoulli(0.8)});
  }
  // Make sure both terminals have any incident capacity at all.
  spec.edges.push_back(
      {0, static_cast<int>(rng.UniformInt(2, n - 1)), capacity(), false});
  spec.edges.push_back(
      {1, static_cast<int>(rng.UniformInt(2, n - 1)), capacity(), false});
  return spec;
}

// ---------------------------------------------------------------------------
// The differential check and the shrinker.

struct Disagreement {
  bool failed = false;
  std::string what;
};

// Deterministic capacity perturbation for the warm-start leg: the session
// first solves the graph at these capacities, then receives the true
// capacities as a delta batch — so every fuzz graph exercises the
// flow-repair path with a mix of increases, decreases, zeroings, and
// sentinel transitions before the final warm cut is compared.
CapUnits PerturbedCapacity(size_t index, CapUnits capacity) {
  switch (index % 4) {
    case 0: return capacity;                    // Unchanged edge.
    case 1: return capacity / 2;                // The delta is an increase.
    case 2: return SatAdd(capacity, capacity);  // The delta is a decrease.
    default: return 0;                          // Edge appears from nothing.
  }
}

Disagreement CheckGraph(const GraphSpec& spec) {
  Disagreement result;
  const FlowNetwork network = BuildNetwork(spec);
  const CutResult lift = MinCutRelabelToFront(network, spec.source, spec.sink);
  const CutResult baseline = MinCutEdmondsKarp(network, spec.source, spec.sink);
  const CutResult highest = MinCutPushRelabel(network, spec.source, spec.sink);
  const CapUnits reference = ReferenceMinCut(spec);

  // Warm leg: cold-solve perturbed capacities, then apply the true
  // capacities as deltas and re-solve warm.
  CompactFlowNetwork compact(spec.node_count);
  std::vector<int> edge_ids;
  edge_ids.reserve(spec.edges.size());
  for (size_t i = 0; i < spec.edges.size(); ++i) {
    const SpecEdge& edge = spec.edges[i];
    const CapUnits perturbed = PerturbedCapacity(i, edge.capacity);
    edge_ids.push_back(edge.directed ? compact.AddArc(edge.a, edge.b, perturbed)
                                     : compact.AddEdge(edge.a, edge.b, perturbed));
  }
  compact.Finalize();
  IncrementalMinCut session;
  session.Reset(std::move(compact), spec.source, spec.sink);
  session.Solve();
  for (size_t i = 0; i < spec.edges.size(); ++i) {
    session.SetEdgeCapacity(edge_ids[i], spec.edges[i].capacity);
  }
  const CutResult warm = session.Solve();

  std::ostringstream why;
  if (lift.cut_value != baseline.cut_value) {
    why << "RTF " << lift.cut_value << " != EK " << baseline.cut_value << "; ";
  }
  if (lift.cut_value != reference) {
    why << "RTF " << lift.cut_value << " != reference " << reference << "; ";
  }
  if (baseline.cut_value != reference) {
    why << "EK " << baseline.cut_value << " != reference " << reference << "; ";
  }
  if (highest.cut_value != reference) {
    why << "PR " << highest.cut_value << " != reference " << reference << "; ";
  }
  if (warm.cut_value != reference) {
    why << "PR-warm " << warm.cut_value << " != reference " << reference << "; ";
  }
  auto check_partition = [&](const char* name, const CutResult& cut) {
    if (static_cast<int>(cut.in_source_side.size()) != network.node_count() ||
        !cut.in_source_side[static_cast<size_t>(spec.source)] ||
        cut.in_source_side[static_cast<size_t>(spec.sink)]) {
      why << name << " returned a non-separating partition; ";
      return;
    }
    // Max-flow/min-cut certificate: the capacity crossing the returned
    // partition equals the reported cut value, exactly.
    const CapUnits crossing = PartitionCapacity(network, cut);
    if (crossing != cut.cut_value) {
      why << name << " partition crosses " << crossing << " but reports "
          << cut.cut_value << "; ";
    }
  };
  check_partition("RTF", lift);
  check_partition("EK", baseline);
  check_partition("PR", highest);
  check_partition("PR-warm", warm);
  // Partition identity, not just value equality: on feasible graphs every
  // solver extracts the residual-reachable set of a genuine maximum flow,
  // which is the unique *minimal* minimum cut — so the byte-level
  // partition must match even when several minimum cuts exist (the
  // tied-cuts family). Infeasible graphs are excluded: a saturated
  // "flow" is not a maximum flow, the uniqueness argument lapses, and the
  // engine rejects the cut before any partition is used anyway.
  if (reference != kInfiniteCapacity) {
    if (highest.in_source_side != lift.in_source_side) {
      why << "PR partition differs from RTF; ";
    }
    if (warm.in_source_side != lift.in_source_side) {
      why << "PR-warm partition differs from RTF; ";
    }
  }
  result.what = why.str();
  result.failed = !result.what.empty();
  return result;
}

// Greedy delta-debugging over the edge list, in the spirit of the fault
// harness's SmallestFailingPrefix: repeatedly drop any single edge whose
// removal preserves the disagreement, until no single removal does. The
// minimal repro and its remaining disagreement are what a developer sees.
GraphSpec ShrinkFailingGraph(GraphSpec spec) {
  bool shrunk = true;
  while (shrunk && !spec.edges.empty()) {
    shrunk = false;
    for (size_t i = 0; i < spec.edges.size(); ++i) {
      GraphSpec candidate = spec;
      candidate.edges.erase(candidate.edges.begin() + static_cast<long>(i));
      if (CheckGraph(candidate).failed) {
        spec = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return spec;
}

TEST(MinCutDifferentialFuzzTest, BothAlgorithmsMatchTheReferenceOracleExactly) {
  int infeasible = 0;
  for (int i = 0; i < kGraphs; ++i) {
    const uint64_t seed = 0x5eed0000u + static_cast<uint64_t>(i);
    const GraphSpec spec = GenGraph(seed);
    const Disagreement check = CheckGraph(spec);
    if (check.failed) {
      const GraphSpec minimal = ShrinkFailingGraph(spec);
      const Disagreement residual = CheckGraph(minimal);
      FAIL() << "graph " << i << " (seed " << seed << ", family "
             << FamilyName(static_cast<int>(seed % kFamilies)) << ") disagrees: "
             << check.what << "\nminimal repro (" << minimal.edges.size()
             << " of " << spec.edges.size() << " edges): " << residual.what
             << "\n" << Describe(minimal);
    }
    if (ReferenceMinCut(spec) == kInfiniteCapacity) {
      ++infeasible;
    }
  }
  // The adversarial families must actually produce infeasible (sentinel
  // crossing) inputs, or the hardest agreement case went untested.
  EXPECT_GT(infeasible, 10);
}

TEST(MinCutDifferentialFuzzTest, ShrinkerProducesAMinimalRepro) {
  // Drive the shrinker with a synthetic "bug": treat any graph whose cut
  // value differs from 7 as failing, seeded by a graph with a known cut of
  // 9 plus noise edges. The shrinker must keep failing and end at a local
  // minimum (no single edge removable without losing the failure).
  GraphSpec spec;
  spec.node_count = 4;
  spec.edges.push_back({0, 2, 9, false});
  spec.edges.push_back({2, 1, 9, false});
  spec.edges.push_back({0, 3, 2, false});   // Noise: removable.
  spec.edges.push_back({3, 1, 0, false});   // Noise: removable.
  auto fails = [](const GraphSpec& g) {
    return MinCutEdmondsKarp(BuildNetwork(g), g.source, g.sink).cut_value != 7;
  };
  ASSERT_TRUE(fails(spec));

  GraphSpec shrunk = spec;
  bool changed = true;
  while (changed && !shrunk.edges.empty()) {
    changed = false;
    for (size_t i = 0; i < shrunk.edges.size(); ++i) {
      GraphSpec candidate = shrunk;
      candidate.edges.erase(candidate.edges.begin() + static_cast<long>(i));
      if (fails(candidate)) {
        shrunk = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(fails(shrunk));
  // 0 edges gives cut 0 != 7, still "failing" — the greedy loop must reach
  // the empty minimal repro for this synthetic predicate.
  EXPECT_TRUE(shrunk.edges.empty());
}

TEST(MinCutDifferentialFuzzTest, ReplaysDeterministically) {
  // The generator itself is part of the test's determinism contract.
  auto fingerprint = [](uint64_t seed) {
    const GraphSpec spec = GenGraph(seed);
    const FlowNetwork network = BuildNetwork(spec);
    return MinCutRelabelToFront(network, spec.source, spec.sink).cut_value;
  };
  EXPECT_EQ(fingerprint(11), fingerprint(11));
  EXPECT_EQ(fingerprint(12), fingerprint(12));
}

TEST(MinCutDifferentialFuzzTest, NearEqualCapacitiesStayExact) {
  // Two parallel two-edge paths whose capacities differ by one unit at a
  // magnitude (2^53) where double arithmetic cannot represent the
  // difference: the cut must pick the smaller side exactly. This is the
  // family-1 failure mode pinned as a unit test.
  constexpr CapUnits base = CapUnits{1} << 53;
  FlowNetwork network(4);
  network.AddArc(0, 2, base + 1);
  network.AddArc(2, 1, base);      // This path's bottleneck: base.
  network.AddArc(0, 3, base);
  network.AddArc(3, 1, base - 1);  // This path's bottleneck: base - 1.
  const CutResult lift = MinCutRelabelToFront(network, 0, 1);
  const CutResult baseline = MinCutEdmondsKarp(network, 0, 1);
  EXPECT_EQ(lift.cut_value, 2 * base - 1);
  EXPECT_EQ(baseline.cut_value, 2 * base - 1);
}

}  // namespace
}  // namespace coign
