#include "src/support/str_util.h"

#include <gtest/gtest.h>

namespace coign {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_arg(5000, 'a');
  const std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(JoinStringsTest, Basics) {
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"a"}, ","), "a");
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(SplitJoinTest, RoundTrip) {
  const std::string text = "one|two||three";
  EXPECT_EQ(JoinStrings(SplitString(text, '|'), "|"), text);
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("o_bigone", "o_"));
  EXPECT_FALSE(StartsWith("p_bigone", "o_"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("a", "ab"));
}

TEST(FormatBytesTest, UnitsScale) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(4096), "4.0 KB");
  EXPECT_EQ(FormatBytes(3u * 1024 * 1024 + 200 * 1024), "3.2 MB");
}

}  // namespace
}  // namespace coign
