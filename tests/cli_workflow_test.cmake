# Drives the coign CLI end to end: profile -> analyze -> measure -> online.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
endfunction()
run(${COIGN_BIN} profile --scenario o_oldwp7 -o smoke)
run(${COIGN_BIN} analyze -i smoke --network 10baset --dot smoke.dot)
run(${COIGN_BIN} measure -i smoke --scenario o_oldwp7)
run(${COIGN_BIN} online -i smoke --scenario o_oldwp7 --scenario o_mixed9
    --cycles 1 --reps 2)
foreach(artifact smoke.profile smoke.config smoke.dist smoke.dot)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "missing artifact: ${artifact}")
  endif()
endforeach()
