# Drives the coign CLI end to end: profile -> analyze -> measure -> online
# -> chaos -> fleet.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
  set(last_output "${out}" PARENT_SCOPE)
endfunction()
run(${COIGN_BIN} profile --scenario o_oldwp7 -o smoke)
run(${COIGN_BIN} analyze -i smoke --network 10baset --dot smoke.dot)
run(${COIGN_BIN} measure -i smoke --scenario o_oldwp7)
run(${COIGN_BIN} online -i smoke --scenario o_oldwp7 --scenario o_mixed9
    --cycles 1 --reps 2)
foreach(artifact smoke.profile smoke.config smoke.dist smoke.dot)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "missing artifact: ${artifact}")
  endif()
endforeach()

# Chaos is seed-driven and must replay byte-for-byte: run it twice with the
# same seed and compare outputs, then once more with another seed to prove
# the seed actually steers the schedule.
set(chaos_args -i smoke --scenario o_oldwp7 --scenario o_mixed9
    --cycles 1 --reps 2)
run(${COIGN_BIN} chaos ${chaos_args} --seed 42)
set(chaos_first "${last_output}")
run(${COIGN_BIN} chaos ${chaos_args} --seed 42)
if(NOT chaos_first STREQUAL last_output)
  message(FATAL_ERROR "chaos --seed 42 is not deterministic:\n"
          "--- first ---\n${chaos_first}\n--- second ---\n${last_output}")
endif()
if(NOT chaos_first MATCHES "chaos summary:")
  message(FATAL_ERROR "chaos output missing summary line:\n${chaos_first}")
endif()
if(NOT chaos_first MATCHES "fault-schedule")
  message(FATAL_ERROR "chaos output missing fault schedule:\n${chaos_first}")
endif()
run(${COIGN_BIN} chaos ${chaos_args} --seed 7)
if(chaos_first STREQUAL last_output)
  message(FATAL_ERROR "chaos ignores --seed: seeds 42 and 7 match")
endif()

# Fleet planning is threaded but must stay byte-deterministic: same seed,
# same bytes — including across different worker counts, since results are
# reduced in cohort grid order on the coordinator, never in claim order.
set(fleet_args -i smoke --clients 200 --seed 42)
run(${COIGN_BIN} fleet ${fleet_args} --threads 4)
set(fleet_first "${last_output}")
run(${COIGN_BIN} fleet ${fleet_args} --threads 4)
if(NOT fleet_first STREQUAL last_output)
  message(FATAL_ERROR "fleet --seed 42 is not deterministic:\n"
          "--- first ---\n${fleet_first}\n--- second ---\n${last_output}")
endif()
run(${COIGN_BIN} fleet ${fleet_args} --threads 1)
string(REPLACE "1 thread(s)" "4 thread(s)" fleet_serial "${last_output}")
if(NOT fleet_first STREQUAL fleet_serial)
  message(FATAL_ERROR "fleet output depends on the worker count:\n"
          "--- 4 threads ---\n${fleet_first}\n--- 1 thread ---\n${fleet_serial}")
endif()
if(NOT fleet_first MATCHES "cache_hits=")
  message(FATAL_ERROR "fleet output missing cache counters:\n${fleet_first}")
endif()
if(NOT fleet_first MATCHES "regret")
  message(FATAL_ERROR "fleet output missing regret summary:\n${fleet_first}")
endif()
run(${COIGN_BIN} fleet -i smoke --clients 200 --seed 7 --threads 4)
if(fleet_first STREQUAL last_output)
  message(FATAL_ERROR "fleet ignores --seed: seeds 42 and 7 match")
endif()
