# Drives the coign CLI end to end: profile -> analyze -> measure -> online
# -> chaos -> fleet.
file(MAKE_DIRECTORY ${WORK_DIR})
function(run)
  execute_process(COMMAND ${ARGN} WORKING_DIRECTORY ${WORK_DIR}
                  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "command failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
  set(last_output "${out}" PARENT_SCOPE)
endfunction()
run(${COIGN_BIN} profile --scenario o_oldwp7 -o smoke)
run(${COIGN_BIN} analyze -i smoke --network 10baset --dot smoke.dot)
run(${COIGN_BIN} measure -i smoke --scenario o_oldwp7)
run(${COIGN_BIN} online -i smoke --scenario o_oldwp7 --scenario o_mixed9
    --cycles 1 --reps 2)
foreach(artifact smoke.profile smoke.config smoke.dist smoke.dot)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "missing artifact: ${artifact}")
  endif()
endforeach()

# Chaos is seed-driven and must replay byte-for-byte: run it twice with the
# same seed and compare outputs, then once more with another seed to prove
# the seed actually steers the schedule.
set(chaos_args -i smoke --scenario o_oldwp7 --scenario o_mixed9
    --cycles 1 --reps 2)
run(${COIGN_BIN} chaos ${chaos_args} --seed 42)
set(chaos_first "${last_output}")
run(${COIGN_BIN} chaos ${chaos_args} --seed 42)
if(NOT chaos_first STREQUAL last_output)
  message(FATAL_ERROR "chaos --seed 42 is not deterministic:\n"
          "--- first ---\n${chaos_first}\n--- second ---\n${last_output}")
endif()
if(NOT chaos_first MATCHES "chaos summary:")
  message(FATAL_ERROR "chaos output missing summary line:\n${chaos_first}")
endif()
if(NOT chaos_first MATCHES "fault-schedule")
  message(FATAL_ERROR "chaos output missing fault schedule:\n${chaos_first}")
endif()
run(${COIGN_BIN} chaos ${chaos_args} --seed 7)
if(chaos_first STREQUAL last_output)
  message(FATAL_ERROR "chaos ignores --seed: seeds 42 and 7 match")
endif()

# Corruption runs carry the same determinism contract: a corrupt-burst
# storm with the checksummed wire replays byte-for-byte, the breaker
# opens (degrading to the all-local plan) and re-promotes the distributed
# plan after the links heal, and the final partition matches the
# fault-free adaptive run's (the poison was rejected, never consumed).
set(corrupt_args -i smoke --scenario o_oldwp7 --scenario o_mixed9
    --cycles 3 --reps 2 --storm --corrupt-rate 0.3 --seed 3)
run(${COIGN_BIN} chaos ${corrupt_args})
set(corrupt_first "${last_output}")
run(${COIGN_BIN} chaos ${corrupt_args})
if(NOT corrupt_first STREQUAL last_output)
  message(FATAL_ERROR "chaos --corrupt-rate is not deterministic:\n"
          "--- first ---\n${corrupt_first}\n--- second ---\n${last_output}")
endif()
if(NOT corrupt_first MATCHES "corrupt-burst")
  message(FATAL_ERROR "corruption run scheduled no corrupt-burst episodes:\n${corrupt_first}")
endif()
if(NOT corrupt_first MATCHES "corrupt_rejected=[1-9]")
  message(FATAL_ERROR "checksummed wire rejected no corrupted payloads:\n${corrupt_first}")
endif()
if(NOT corrupt_first MATCHES "corrupt_consumed=0")
  message(FATAL_ERROR "checksummed wire consumed corrupted payloads:\n${corrupt_first}")
endif()
if(NOT corrupt_first MATCHES "breaker_trips=[1-9]")
  message(FATAL_ERROR "corruption storm never tripped the breaker:\n${corrupt_first}")
endif()
if(NOT corrupt_first MATCHES "safe_mode_exits=[1-9]")
  message(FATAL_ERROR "breaker never re-promoted the distributed plan:\n${corrupt_first}")
endif()
if(NOT corrupt_first MATCHES "partitions_match=yes")
  message(FATAL_ERROR "corruption storm steered the final partition:\n${corrupt_first}")
endif()

# Observability artifacts are part of the determinism contract: two
# same-seed runs must write byte-identical --trace-out / --metrics-out
# files (the trace carries simulated-clock timestamps, never wall time).
function(check_identical label a b)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                  ${WORK_DIR}/${a} ${WORK_DIR}/${b} RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${label}: ${a} and ${b} differ across same-seed runs")
  endif()
endfunction()
run(${COIGN_BIN} online -i smoke --scenario o_oldwp7 --scenario o_mixed9
    --cycles 1 --reps 2 --trace-out online1.trace.json --metrics-out online1.metrics.txt)
run(${COIGN_BIN} online -i smoke --scenario o_oldwp7 --scenario o_mixed9
    --cycles 1 --reps 2 --trace-out online2.trace.json --metrics-out online2.metrics.txt)
check_identical("online trace" online1.trace.json online2.trace.json)
check_identical("online metrics" online1.metrics.txt online2.metrics.txt)

# The warm-started push-relabel engine (default) and the paper's cold
# relabel-to-front (--cold-cuts) must produce identical reports end to
# end: both compute the same exact cut value and the same unique minimal
# min cut, so the solver choice can never steer a partition.
run(${COIGN_BIN} online -i smoke --scenario o_oldwp7 --scenario o_mixed9
    --cycles 1 --reps 2)
set(online_warm "${last_output}")
run(${COIGN_BIN} online -i smoke --scenario o_oldwp7 --scenario o_mixed9
    --cycles 1 --reps 2 --cold-cuts)
if(NOT online_warm STREQUAL last_output)
  message(FATAL_ERROR "--cold-cuts changed the online run:\n"
          "--- warm ---\n${online_warm}\n--- cold ---\n${last_output}")
endif()
run(${COIGN_BIN} chaos ${chaos_args} --seed 42)
set(chaos_warm "${last_output}")
run(${COIGN_BIN} chaos ${chaos_args} --seed 42 --cold-cuts)
if(NOT chaos_warm STREQUAL last_output)
  message(FATAL_ERROR "--cold-cuts changed the chaos run:\n"
          "--- warm ---\n${chaos_warm}\n--- cold ---\n${last_output}")
endif()

# Solver-work counters are part of the online run's metrics surface.
file(READ ${WORK_DIR}/online1.metrics.txt online_metrics)
foreach(counter mincut.pushes mincut.relabels mincut.global_relabels
        mincut.warm_start_hits mincut.flow_reused_units)
  if(NOT online_metrics MATCHES "counter ${counter} ")
    message(FATAL_ERROR "online metrics missing ${counter}:\n${online_metrics}")
  endif()
endforeach()
if(NOT online_metrics MATCHES "counter mincut.pushes [1-9]")
  message(FATAL_ERROR "online run recorded no push-relabel work:\n${online_metrics}")
endif()
run(${COIGN_BIN} chaos ${chaos_args} --seed 42
    --trace-out chaos1.trace.json --metrics-out chaos1.metrics.txt)
run(${COIGN_BIN} chaos ${chaos_args} --seed 42
    --trace-out chaos2.trace.json --metrics-out chaos2.metrics.txt)
check_identical("chaos trace" chaos1.trace.json chaos2.trace.json)
check_identical("chaos metrics" chaos1.metrics.txt chaos2.metrics.txt)
file(READ ${WORK_DIR}/chaos1.metrics.txt chaos_metrics)
if(NOT chaos_metrics MATCHES "counter transport.calls [1-9]")
  message(FATAL_ERROR "chaos metrics missing transport traffic:\n${chaos_metrics}")
endif()
file(READ ${WORK_DIR}/chaos1.trace.json chaos_trace)
if(NOT chaos_trace MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "chaos trace is not trace_event JSON:\n${chaos_trace}")
endif()

# Fleet planning is threaded but must stay byte-deterministic: same seed,
# same bytes — including across different worker counts, since results are
# reduced in cohort grid order on the coordinator, never in claim order.
set(fleet_args -i smoke --clients 200 --seed 42)
run(${COIGN_BIN} fleet ${fleet_args} --threads 4)
set(fleet_first "${last_output}")
run(${COIGN_BIN} fleet ${fleet_args} --threads 4)
if(NOT fleet_first STREQUAL last_output)
  message(FATAL_ERROR "fleet --seed 42 is not deterministic:\n"
          "--- first ---\n${fleet_first}\n--- second ---\n${last_output}")
endif()
run(${COIGN_BIN} fleet ${fleet_args} --threads 1)
string(REPLACE "1 thread(s)" "4 thread(s)" fleet_serial "${last_output}")
if(NOT fleet_first STREQUAL fleet_serial)
  message(FATAL_ERROR "fleet output depends on the worker count:\n"
          "--- 4 threads ---\n${fleet_first}\n--- 1 thread ---\n${fleet_serial}")
endif()
if(NOT fleet_first MATCHES "cache_hits=")
  message(FATAL_ERROR "fleet output missing cache counters:\n${fleet_first}")
endif()
if(NOT fleet_first MATCHES "regret")
  message(FATAL_ERROR "fleet output missing regret summary:\n${fleet_first}")
endif()
run(${COIGN_BIN} fleet -i smoke --clients 200 --seed 7 --threads 4)
if(fleet_first STREQUAL last_output)
  message(FATAL_ERROR "fleet ignores --seed: seeds 42 and 7 match")
endif()

# Fleet observability: byte-identical across same-seed runs AND worker
# counts (spans are emitted coordinator-side in grid order).
run(${COIGN_BIN} fleet ${fleet_args} --threads 4
    --trace-out fleet1.trace.json --metrics-out fleet1.metrics.txt)
run(${COIGN_BIN} fleet ${fleet_args} --threads 1
    --trace-out fleet2.trace.json --metrics-out fleet2.metrics.txt)
check_identical("fleet trace" fleet1.trace.json fleet2.trace.json)
file(READ ${WORK_DIR}/fleet1.metrics.txt fleet_metrics_4)
file(READ ${WORK_DIR}/fleet2.metrics.txt fleet_metrics_1)
string(REPLACE "gauge fleet.pool.workers 1" "gauge fleet.pool.workers 4"
       fleet_metrics_1 "${fleet_metrics_1}")
if(NOT fleet_metrics_4 STREQUAL fleet_metrics_1)
  message(FATAL_ERROR "fleet metrics depend on the worker count:\n"
          "--- 4 threads ---\n${fleet_metrics_4}\n--- 1 thread ---\n${fleet_metrics_1}")
endif()

# Lossy clients must cohort apart from clean ones: the loss axis shows up
# in cohort names and the default 25% lossy fraction guarantees some.
if(NOT fleet_first MATCHES "/D-")
  message(FATAL_ERROR "fleet output has no lossy cohorts:\n${fleet_first}")
endif()
run(${COIGN_BIN} fleet ${fleet_args} --threads 4 --lossy 0)
if(last_output MATCHES "/D-")
  message(FATAL_ERROR "fleet --lossy 0 still produced lossy cohorts:\n${last_output}")
endif()
