// Structural checks on the synthetic application suite: scenario coverage,
// instance populations, default placements, and runnability of every
// Table 1 scenario.

#include "src/apps/suite.h"

#include <set>

#include <gtest/gtest.h>

#include "src/apps/benefits.h"
#include "src/apps/octarine.h"
#include "src/apps/photodraw.h"

namespace coign {
namespace {

TEST(SuiteTest, ThreeApplicationsInTableOrder) {
  const auto suite = BuildApplicationSuite();
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0]->name(), "Octarine");
  EXPECT_EQ(suite[1]->name(), "PhotoDraw");
  EXPECT_EQ(suite[2]->name(), "Benefits");
}

TEST(SuiteTest, Table1HasAll23Scenarios) {
  const std::vector<std::string> ids = Table1ScenarioIds();
  EXPECT_EQ(ids.size(), 23u);
  // Every id resolves to its application and to a scenario within it.
  for (const std::string& id : ids) {
    Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(id);
    ASSERT_TRUE(app.ok()) << id;
    EXPECT_TRUE((*app)->FindScenario(id).ok()) << id;
  }
  EXPECT_FALSE(BuildApplicationForScenario("x_nothing").ok());
}

TEST(SuiteTest, ScenarioCountsPerApplication) {
  const auto suite = BuildApplicationSuite();
  // Table 1: 12 Octarine + 7 PhotoDraw + 4 Benefits (plus our two explicit
  // figure workloads on Octarine).
  EXPECT_EQ(suite[0]->Scenarios().size(), 14u);
  EXPECT_EQ(suite[1]->Scenarios().size(), 7u);
  EXPECT_EQ(suite[2]->Scenarios().size(), 4u);
}

class PerAppTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PerAppTest, InstallRegistersClassesAndInterfaces) {
  Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(GetParam());
  ASSERT_TRUE(app.ok());
  ObjectSystem system;
  ASSERT_TRUE((*app)->Install(&system).ok());
  EXPECT_GT(system.interfaces().size(), 5u);
  // Paper: "between a dozen and 150 component classes".
  EXPECT_GE(system.classes().size(), 12u);
  EXPECT_LE(system.classes().size(), 160u);
}

TEST_P(PerAppTest, ImageIsWellFormed) {
  Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(GetParam());
  ASSERT_TRUE(app.ok());
  const ApplicationImage image = (*app)->Image();
  EXPECT_FALSE(image.name.empty());
  EXPECT_FALSE(image.binaries.empty());
  EXPECT_FALSE(image.import_table.empty());
  EXPECT_FALSE(image.IsInstrumented());
}

TEST_P(PerAppTest, EveryScenarioRunsCleanlyWithDefaultPlacement) {
  Result<std::unique_ptr<Application>> app = BuildApplicationForScenario(GetParam());
  ASSERT_TRUE(app.ok());
  for (const Scenario& scenario : (*app)->Scenarios()) {
    ObjectSystem system;
    ASSERT_TRUE((*app)->Install(&system).ok());
    const ClassPlacement placement = (*app)->DefaultPlacement(system);
    system.SetPlacementPolicy(placement.AsPolicy());
    Rng rng(99);
    EXPECT_TRUE(scenario.run(system, rng).ok()) << scenario.id;
    EXPECT_GT(system.total_calls(), 0u) << scenario.id;
    system.DestroyAll();
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, PerAppTest, ::testing::Values("o_", "p_", "b_"),
                         [](const auto& info) {
                           return std::string(1, info.param[0]) + "app";
                         });

size_t CountInstances(ObjectSystem& system, const Application& app,
                      bool include_infrastructure) {
  size_t count = 0;
  for (const auto& info : system.LiveInstances()) {
    if (include_infrastructure || !app.IsInfrastructureClass(info.class_name)) {
      ++count;
    }
  }
  return count;
}

size_t RunAndCount(Application& app, const std::string& scenario_id) {
  ObjectSystem system;
  EXPECT_TRUE(app.Install(&system).ok());
  Rng rng(1);
  Result<Scenario> scenario = app.FindScenario(scenario_id);
  EXPECT_TRUE(scenario.ok());
  EXPECT_TRUE(scenario->run(system, rng).ok());
  return CountInstances(system, app, /*include_infrastructure=*/false);
}

TEST(OctarineStructureTest, TextDocumentPopulationNearPaper) {
  // Figure 5: 458 components for the 35-page text document.
  std::unique_ptr<Application> app = MakeOctarine();
  const size_t instances = RunAndCount(*app, "o_fig5");
  EXPECT_GE(instances, 400u);
  EXPECT_LE(instances, 520u);
}

TEST(OctarineStructureTest, TablePopulationNearPaper) {
  // Figure 7: 476 components for the 5-page table.
  std::unique_ptr<Application> app = MakeOctarine();
  const size_t instances = RunAndCount(*app, "o_oldtb0");
  EXPECT_GE(instances, 420u);
  EXPECT_LE(instances, 540u);
}

TEST(OctarineStructureTest, MixedDocumentPopulationNearPaper) {
  // Figure 8: 786 components for the text+tables document.
  std::unique_ptr<Application> app = MakeOctarine();
  const size_t instances = RunAndCount(*app, "o_mixed9");
  EXPECT_GE(instances, 650u);
  EXPECT_LE(instances, 900u);
}

TEST(PhotoDrawStructureTest, CompositionPopulationNearPaper) {
  // Figure 4: 295 components viewing a composition.
  std::unique_ptr<Application> app = MakePhotoDraw();
  const size_t instances = RunAndCount(*app, "p_oldmsr");
  EXPECT_GE(instances, 240u);
  EXPECT_LE(instances, 360u);
}

TEST(BenefitsStructureTest, BigonePopulationNearPaper) {
  // Figure 6: 196 components in client and middle tier.
  std::unique_ptr<Application> app = MakeBenefits();
  const size_t instances = RunAndCount(*app, "b_bigone");
  EXPECT_GE(instances, 160u);
  EXPECT_LE(instances, 240u);
}

TEST(BenefitsStructureTest, DefaultPlacementIsThreeTier) {
  std::unique_ptr<Application> app = MakeBenefits();
  ObjectSystem system;
  ASSERT_TRUE(app->Install(&system).ok());
  const ClassPlacement placement = app->DefaultPlacement(system);
  system.SetPlacementPolicy(placement.AsPolicy());
  Rng rng(1);
  Result<Scenario> scenario = app->FindScenario("b_vueone");
  ASSERT_TRUE(scenario.ok());
  ASSERT_TRUE(scenario->run(system, rng).ok());

  size_t client = 0, middle = 0;
  for (const auto& info : system.LiveInstances()) {
    if (info.machine == kClientMachine) {
      ++client;
      // Only the VB front end lives on the client by default.
      EXPECT_TRUE(info.class_name == "BN.MainForm" || info.class_name == "BN.GraphView" ||
                  info.class_name.find("BN.Control") == 0)
          << info.class_name;
    } else {
      ++middle;
    }
  }
  EXPECT_EQ(client, 10u);  // Form + graph + 8 controls.
  EXPECT_GT(middle, client);  // "187 of 196 on the middle tier" shape.
}

TEST(OctarineStructureTest, DesktopDefaultKeepsEverythingLocalExceptFiles) {
  std::unique_ptr<Application> app = MakeOctarine();
  ObjectSystem system;
  ASSERT_TRUE(app->Install(&system).ok());
  const ClassPlacement placement = app->DefaultPlacement(system);
  system.SetPlacementPolicy(placement.AsPolicy());
  Rng rng(1);
  Result<Scenario> scenario = app->FindScenario("o_oldwp0");
  ASSERT_TRUE(scenario.ok());
  ASSERT_TRUE(scenario->run(system, rng).ok());
  for (const auto& info : system.LiveInstances()) {
    if (info.machine == kServerMachine) {
      EXPECT_TRUE(app->IsInfrastructureClass(info.class_name)) << info.class_name;
    }
  }
}

TEST(SuiteTest, BigoneIsSupersetOfInstanceClasses) {
  // The bigone scenario instantiates at least every class any single
  // scenario instantiates (the premise of the Table 2 methodology).
  std::unique_ptr<Application> app = MakeOctarine();
  auto classes_of = [&app](const std::string& id) {
    ObjectSystem system;
    EXPECT_TRUE(app->Install(&system).ok());
    Rng rng(1);
    Result<Scenario> scenario = app->FindScenario(id);
    EXPECT_TRUE(scenario.ok());
    EXPECT_TRUE(scenario->run(system, rng).ok());
    std::set<std::string> classes;
    for (const auto& info : system.LiveInstances()) {
      classes.insert(info.class_name);
    }
    return classes;
  };
  const std::set<std::string> bigone = classes_of("o_bigone");
  for (const char* id : {"o_newdoc", "o_newmus", "o_oldtb0", "o_oldwp0", "o_oldbth"}) {
    for (const std::string& cls : classes_of(id)) {
      EXPECT_TRUE(bigone.contains(cls)) << id << " class " << cls;
    }
  }
}

}  // namespace
}  // namespace coign
