// Disk-corruption fuzz sweep over the checksummed persistence formats.
//
// The storage-integrity contract: a plan-cache or migration-journal
// snapshot damaged on disk must never crash the loader and must never be
// consumed as garbage. v4 cache / v2 journal snapshots localize damage —
// a single flipped bit loses at most the records it touches (skipped and
// counted), a truncated tail is recovered as a torn append — while the
// legacy strict formats (cache v1-v3, journal v1) may reject the whole
// load but must still return a Status like civilized code. The exhaustive
// sweeps run every single-bit flip and every truncation point; the seeded
// random sweep adds byte overwrites and multi-bit damage across every
// format version. Run under ASan/UBSan in CI, this is the "never crash,
// never lie" proof for the storage layer.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fleet/plan_cache.h"
#include "src/online/migration_journal.h"
#include "src/support/rng.h"
#include "src/support/str_util.h"

namespace coign {
namespace {

AnalysisResult FuzzPlan(double seconds) {
  AnalysisResult plan;
  plan.predicted_comm_seconds = seconds;
  plan.total_comm_seconds = seconds * 3.0 + 0.1;
  plan.client_classifications = 2;
  plan.server_classifications = 1;
  plan.client_instances = 6;
  plan.server_instances = 1;
  plan.non_remotable_pairs = 1;
  plan.distribution.default_machine = kClientMachine;
  plan.distribution.placement[0] = kClientMachine;
  plan.distribution.placement[1] = kServerMachine;
  CutEdgeReport edge;
  edge.client_side = 1;
  edge.server_side = 2;
  edge.seconds = seconds / 7.0;
  plan.cut_edges.push_back(edge);
  return plan;
}

// A populated v4 snapshot with several records (placement and edge lines
// included), the base artifact every sweep damages.
std::string CacheSnapshotV4(size_t entries) {
  PlanCache cache(entries);
  for (size_t i = 0; i < entries; ++i) {
    cache.Insert(PlanCacheKey{10 + i, CohortKey{static_cast<int32_t>(i), 1}},
                 FuzzPlan(0.125 * (i + 1)));
  }
  return cache.Serialize();
}

// Downgrades a v4 snapshot to the older strict formats by reversing the
// version history: v3 drops the crc lines, v2 additionally drops the
// fixed-point cut value from plan lines, v1 additionally drops the loss
// bucket from entry lines.
std::string DowngradeCache(const std::string& v4, const std::string& version) {
  std::vector<std::string> lines = SplitString(v4, '\n');
  std::string out;
  size_t records = 0;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string line = lines[i];
    if (line.empty() || line.compare(0, 4, "crc ") == 0) {
      continue;
    }
    if (line.compare(0, 6, "entry ") == 0) {
      ++records;
      if (version == "v1") {
        line = line.substr(0, line.find_last_of(' '));
      }
    }
    if (line.compare(0, 5, "plan ") == 0 && version != "v3") {
      line = line.substr(0, line.find_last_of(' '));
    }
    out += line;
    out += '\n';
  }
  return StrFormat("plan-cache %s %zu\n", version.c_str(), records) + out;
}

// Record blocks (record lines + their crc line) of a v4 snapshot — the
// units a loader is allowed to keep or drop, never to alter.
std::vector<std::string> V4Blocks(const std::string& snapshot) {
  std::vector<std::string> blocks;
  std::string block;
  for (const std::string& line : SplitString(snapshot, '\n')) {
    if (line.empty() || line.compare(0, 11, "plan-cache ") == 0) {
      continue;
    }
    block += line;
    block += '\n';
    if (line.compare(0, 4, "crc ") == 0) {
      blocks.push_back(block);
      block.clear();
    }
  }
  return blocks;
}

// The "never lie" oracle: every record a damaged load kept must be byte
// identical to a record of the pristine snapshot.
void ExpectSurvivorsArePristine(PlanCache& reloaded, const std::string& pristine,
                                const std::string& context) {
  for (const std::string& block : V4Blocks(reloaded.Serialize())) {
    EXPECT_NE(pristine.find(block), std::string::npos)
        << context << ": loader invented record:\n" << block;
  }
}

TEST(StorageCorruptionTest, CacheV4SurvivesEverySingleBitFlipInTheBody) {
  const std::string pristine = CacheSnapshotV4(4);
  const size_t body_start = pristine.find('\n') + 1;
  const size_t records = V4Blocks(pristine).size();
  ASSERT_EQ(records, 4u);

  for (size_t bit = body_start * 8; bit < pristine.size() * 8; ++bit) {
    std::string damaged = pristine;
    damaged[bit / 8] = static_cast<char>(damaged[bit / 8] ^ (1u << (bit % 8)));
    PlanCache cache(8);
    const Status status = cache.Load(damaged);
    ASSERT_TRUE(status.ok()) << "bit " << bit << ": " << status.ToString();
    const uint64_t skipped = cache.stats().corrupt_skipped;
    // One flipped bit damages at most two records (a destroyed newline or
    // crc line merges neighbors); everything else loads untouched.
    EXPECT_GE(cache.size() + 2, records) << "bit " << bit;
    EXPECT_LE(skipped, 2u) << "bit " << bit;
    EXPECT_GE(cache.size() + skipped + 1, records) << "bit " << bit;
    ExpectSurvivorsArePristine(cache, pristine, StrFormat("bit %zu", bit));
  }
}

TEST(StorageCorruptionTest, CacheV4SurvivesEveryTruncationPoint) {
  const std::string pristine = CacheSnapshotV4(4);
  const size_t body_start = pristine.find('\n') + 1;
  const size_t records = V4Blocks(pristine).size();

  for (size_t keep = body_start; keep <= pristine.size(); ++keep) {
    PlanCache cache(8);
    const Status status = cache.Load(pristine.substr(0, keep));
    ASSERT_TRUE(status.ok()) << "keep " << keep << ": " << status.ToString();
    // Truncation is tearing, not corruption: complete blocks load, the
    // cut-off tail is dropped without a corruption count.
    EXPECT_EQ(cache.stats().corrupt_skipped, 0u) << "keep " << keep;
    EXPECT_LE(cache.size(), records) << "keep " << keep;
    ExpectSurvivorsArePristine(cache, pristine, StrFormat("keep %zu", keep));
  }
}

TEST(StorageCorruptionTest, JournalV2SurvivesEverySingleBitFlipInTheBody) {
  MigrationJournal journal;
  for (InstanceId instance = 1; instance <= 4; ++instance) {
    journal.Append({MigrationPhase::kIntent, instance, kClientMachine,
                    kServerMachine, 64 * instance});
    journal.Append({MigrationPhase::kCommitted, instance, kClientMachine,
                    kServerMachine, 64 * instance});
  }
  const std::string pristine = journal.Serialize();
  const size_t body_start = pristine.find('\n') + 1;

  for (size_t bit = body_start * 8; bit < pristine.size() * 8; ++bit) {
    std::string damaged = pristine;
    damaged[bit / 8] = static_cast<char>(damaged[bit / 8] ^ (1u << (bit % 8)));
    Result<MigrationJournal> parsed = MigrationJournal::Parse(damaged);
    ASSERT_TRUE(parsed.ok()) << "bit " << bit << ": " << parsed.status().ToString();
    EXPECT_GE(parsed->size() + 2, journal.size()) << "bit " << bit;
    // Every surviving record is pristine: its serialized line must appear
    // in the undamaged journal.
    const std::string reserialized = parsed->Serialize();
    for (const std::string& line : SplitString(reserialized, '\n')) {
      if (!line.empty() && line.compare(0, 4, "rec ") == 0) {
        EXPECT_NE(pristine.find(line + "\n"), std::string::npos)
            << "bit " << bit << ": loader invented record: " << line;
      }
    }
  }
}

TEST(StorageCorruptionTest, JournalTruncationIsTearingInBothVersions) {
  MigrationJournal journal;
  for (InstanceId instance = 1; instance <= 3; ++instance) {
    journal.Append({MigrationPhase::kPrepared, instance, kClientMachine,
                    kServerMachine, 128});
  }
  const std::string v2 = journal.Serialize();
  std::string v1 = v2;
  // Downgrade: strip each line's trailing CRC field and swap the header.
  {
    std::string out;
    for (const std::string& line : SplitString(v2, '\n')) {
      if (line.empty()) {
        continue;
      }
      out += line.compare(0, 4, "rec ") == 0 ? line.substr(0, line.find_last_of(' '))
                                             : line;
      out += '\n';
    }
    v1 = out;
    v1.replace(v1.find("v2"), 2, "v1");
  }

  for (const std::string& text : {v2, v1}) {
    const size_t body_start = text.find('\n') + 1;
    for (size_t keep = body_start; keep <= text.size(); ++keep) {
      Result<MigrationJournal> parsed = MigrationJournal::Parse(text.substr(0, keep));
      ASSERT_TRUE(parsed.ok())
          << "keep " << keep << ": " << parsed.status().ToString();
      EXPECT_EQ(parsed->corrupt_skipped(), 0u) << "keep " << keep;
      EXPECT_LE(parsed->size(), journal.size()) << "keep " << keep;
      if (keep < text.size()) {
        EXPECT_TRUE(parsed->recovered_torn_tail() || parsed->size() < journal.size() ||
                    keep + 1 == text.size())
            << "keep " << keep;
      }
    }
  }
}

// The legacy strict formats have no way to localize damage, so a corrupted
// load may fail outright — but it must fail with a Status, never crash,
// whatever bytes the disk serves. Seeded random damage: bit flips, byte
// overwrites, truncations, and combinations, over every format version.
TEST(StorageCorruptionTest, RandomDamageNeverCrashesAnyVersion) {
  const std::string v4 = CacheSnapshotV4(4);
  const std::vector<std::string> cache_snapshots = {
      v4, DowngradeCache(v4, "v3"), DowngradeCache(v4, "v2"),
      DowngradeCache(v4, "v1")};

  MigrationJournal journal;
  for (InstanceId instance = 1; instance <= 4; ++instance) {
    journal.Append({MigrationPhase::kIntent, instance, kClientMachine,
                    kServerMachine, 256});
    journal.Append({MigrationPhase::kRolledBack, instance, kClientMachine,
                    kServerMachine, 256});
  }
  const std::string journal_v2 = journal.Serialize();
  std::string journal_v1 = journal_v2;
  {
    std::string out;
    for (const std::string& line : SplitString(journal_v2, '\n')) {
      if (line.empty()) {
        continue;
      }
      out += line.compare(0, 4, "rec ") == 0 ? line.substr(0, line.find_last_of(' '))
                                             : line;
      out += '\n';
    }
    journal_v1 = out;
    journal_v1.replace(journal_v1.find("v2"), 2, "v1");
  }
  const std::vector<std::string> journal_snapshots = {journal_v2, journal_v1};

  Rng rng(2026);
  const auto damage = [&rng](std::string text) {
    const int rounds = static_cast<int>(rng.UniformInt(1, 3));
    for (int round = 0; round < rounds && !text.empty(); ++round) {
      switch (rng.UniformInt(0, 2)) {
        case 0: {  // Single-bit flip anywhere, header included.
          const size_t bit = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(text.size()) * 8 - 1));
          text[bit / 8] = static_cast<char>(text[bit / 8] ^ (1u << (bit % 8)));
          break;
        }
        case 1: {  // Byte overwrite with an arbitrary value.
          text[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(text.size()) - 1))] =
              static_cast<char>(rng.UniformInt(0, 255));
          break;
        }
        default:  // Truncation.
          text.resize(static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(text.size()))));
      }
    }
    return text;
  };

  for (int trial = 0; trial < 400; ++trial) {
    for (const std::string& snapshot : cache_snapshots) {
      PlanCache cache(8);
      const Status status = cache.Load(damage(snapshot));
      if (status.ok()) {
        (void)cache.Serialize();  // A surviving cache must still function.
      }
    }
    for (const std::string& snapshot : journal_snapshots) {
      Result<MigrationJournal> parsed = MigrationJournal::Parse(damage(snapshot));
      if (parsed.ok()) {
        (void)parsed->InFlight();
        (void)parsed->Serialize();
      }
    }
  }
}

}  // namespace
}  // namespace coign
