#include "src/com/message.h"

#include <gtest/gtest.h>

namespace coign {
namespace {

TEST(MessageTest, EmptyByDefault) {
  Message m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.Find("x"), nullptr);
}

TEST(MessageTest, AddAndFind) {
  Message m;
  m.Add("a", Value::FromInt32(1)).Add("b", Value::FromString("two"));
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.Find("b"), nullptr);
  EXPECT_EQ(m.Find("b")->AsString(), "two");
  EXPECT_EQ(m.at(0).name, "a");
}

TEST(MessageTest, FindReturnsFirstMatch) {
  Message m;
  m.Add("k", Value::FromInt32(1));
  m.Add("k", Value::FromInt32(2));
  EXPECT_EQ(m.Find("k")->AsInt32(), 1);
}

TEST(MessageTest, ContainsOpaque) {
  Message m;
  m.Add("n", Value::FromInt32(1));
  EXPECT_FALSE(m.ContainsOpaque());
  m.Add("ptr", Value::FromRecord({{"h", Value::FromOpaque(0x1)}}));
  EXPECT_TRUE(m.ContainsOpaque());
}

TEST(MessageTest, CollectInterfacesAcrossArgs) {
  const ObjectRef r1{1, Guid::FromName("a")};
  const ObjectRef r2{2, Guid::FromName("b")};
  Message m;
  m.Add("x", Value::FromInterface(r1));
  m.Add("y", Value::FromArray({Value::FromInterface(r2)}));
  std::vector<ObjectRef> refs;
  m.CollectInterfaces(&refs);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_EQ(refs[0], r1);
  EXPECT_EQ(refs[1], r2);
}

TEST(MessageTest, EqualityAndToString) {
  Message a, b;
  a.Add("k", Value::FromInt32(3));
  b.Add("k", Value::FromInt32(3));
  EXPECT_EQ(a, b);
  b.Add("extra", Value::Null());
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.ToString(), "(k=3)");
}

}  // namespace
}  // namespace coign
