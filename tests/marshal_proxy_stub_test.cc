#include "src/marshal/proxy_stub.h"

#include <gtest/gtest.h>

#include "src/marshal/ndr.h"

namespace coign {
namespace {

InterfaceDesc RemotableIface() {
  return InterfaceBuilder("IRemotable")
      .Method("M")
      .In("x", ValueKind::kInt32)
      .Out("y", ValueKind::kBlob)
      .Build();
}

InterfaceDesc NonRemotableIface() {
  return InterfaceBuilder("ILocalOnly").NonRemotable().Method("M").Build();
}

TEST(ProxyStubTest, MeasuresHeadersPlusPayload) {
  const InterfaceDesc iface = RemotableIface();
  Message in;
  in.Add("x", Value::FromInt32(1));
  Message out;
  out.Add("y", Value::BlobOfSize(1000, 3));
  const WireCall wire = MeasureCall(iface, 0, in, out);
  EXPECT_TRUE(wire.remotable);
  EXPECT_EQ(wire.request_bytes, kRequestHeaderBytes + *WireSize(in));
  EXPECT_EQ(wire.reply_bytes, kReplyHeaderBytes + *WireSize(out));
  EXPECT_EQ(wire.total_bytes(), wire.request_bytes + wire.reply_bytes);
  EXPECT_GT(wire.reply_bytes, 1000u);  // Deep copy of the blob.
}

TEST(ProxyStubTest, EmptyCallStillCostsHeaders) {
  const WireCall wire = MeasureCall(RemotableIface(), 0, Message(), Message());
  EXPECT_EQ(wire.request_bytes, kRequestHeaderBytes + 4);  // Header + arg count.
  EXPECT_EQ(wire.reply_bytes, kReplyHeaderBytes + 4);
}

TEST(ProxyStubTest, NonRemotableInterfaceFlagged) {
  const WireCall wire = MeasureCall(NonRemotableIface(), 0, Message(), Message());
  EXPECT_FALSE(wire.remotable);
  EXPECT_EQ(wire.total_bytes(), 0u);
}

TEST(ProxyStubTest, OpaqueParameterFlagsNonRemotable) {
  Message in;
  in.Add("ptr", Value::FromOpaque(0x1));
  const WireCall wire = MeasureCall(RemotableIface(), 0, in, Message());
  EXPECT_FALSE(wire.remotable);
}

TEST(ProxyStubTest, CollectsPassedInterfacesBothDirections) {
  const ObjectRef in_ref{5, Guid::FromName("a")};
  const ObjectRef out_ref{6, Guid::FromName("b")};
  Message in;
  in.Add("i", Value::FromInterface(in_ref));
  Message out;
  out.Add("o", Value::FromArray({Value::FromInterface(out_ref)}));
  const WireCall wire = MeasureCall(RemotableIface(), 0, in, out);
  ASSERT_EQ(wire.passed_interfaces.size(), 2u);
  EXPECT_EQ(wire.passed_interfaces[0], in_ref);
  EXPECT_EQ(wire.passed_interfaces[1], out_ref);
}

TEST(ProxyStubTest, NonRemotableStillReportsInterfaces) {
  const ObjectRef ref{5, Guid::FromName("a")};
  Message in;
  in.Add("i", Value::FromInterface(ref));
  in.Add("ptr", Value::FromOpaque(1));
  const WireCall wire = MeasureCall(RemotableIface(), 0, in, Message());
  EXPECT_FALSE(wire.remotable);
  ASSERT_EQ(wire.passed_interfaces.size(), 1u);
  EXPECT_EQ(wire.passed_interfaces[0], ref);
}

TEST(ProxyStubTest, RoundTripMatchesMessage) {
  Message m;
  m.Add("x", Value::FromString("abc"));
  Result<Message> back = RoundTrip(m);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

}  // namespace
}  // namespace coign
