#include "src/support/rng.h"

#include <gtest/gtest.h>

#include "src/support/stats.h"

namespace coign {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a.NextUint64() == b.NextUint64()) ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(9, 9), 9);
  }
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(5);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[rng.UniformInt(0, 9)] += 1;
  }
  for (int bucket = 0; bucket < 10; ++bucket) {
    EXPECT_NEAR(counts[bucket], n / 10, n / 100);
  }
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalMatchesMoments) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.Add(rng.Normal(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMatchesMean) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double v = rng.Exponential(3.0);
    EXPECT_GE(v, 0.0);
    stats.Add(v);
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(RngTest, BernoulliEdgesAndRate) {
  Rng rng(10);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng parent(11);
  Rng child_a = parent.Fork(0);
  Rng child_b = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (child_a.NextUint64() == child_b.NextUint64()) ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace coign
