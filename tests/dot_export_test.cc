#include "src/analysis/dot_export.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "src/com/class_registry.h"

namespace coign {
namespace {

IccProfile SmallProfile() {
  IccProfile profile;
  auto add = [&profile](ClassificationId id, const std::string& name, uint64_t instances) {
    ClassificationInfo info;
    info.id = id;
    info.clsid = Guid::FromName("clsid:" + name);
    info.class_name = name;
    info.instance_count = instances;
    profile.RecordClassification(info);
  };
  add(0, "Gui \"quoted\"", 3);
  add(1, "Reader", 1);
  CallKey key;
  key.src = kNoClassification;  // Driver.
  key.dst = 0;
  key.iid = Guid::FromName("iid:I");
  profile.RecordCall(key, 100, 100, true);
  CallKey pair;
  pair.src = 0;
  pair.dst = 1;
  pair.iid = key.iid;
  profile.RecordCall(pair, 4000, 50, true);
  profile.RecordCall(pair, 10, 10, /*remotable=*/false);
  return profile;
}

AnalysisResult SmallResult() {
  AnalysisResult result;
  result.distribution.placement[0] = kClientMachine;
  result.distribution.placement[1] = kServerMachine;
  return result;
}

TEST(DotExportTest, RendersNodesEdgesAndPlacement) {
  const std::string dot = ExportDistributionDot(SmallProfile(), SmallResult());
  EXPECT_NE(dot.find("graph \"coign\""), std::string::npos);
  // Client node: plain ellipse; server node: filled box.
  EXPECT_NE(dot.find("c0 [label=\"Gui \\\"quoted\\\" x3\", shape=ellipse]"),
            std::string::npos);
  EXPECT_NE(dot.find("c1 [label=\"Reader x1\", shape=box, style=filled"),
            std::string::npos);
  // Driver node present and connected.
  EXPECT_NE(dot.find("driver [label=\"<user/driver>\""), std::string::npos);
  EXPECT_NE(dot.find("c0 -- driver"), std::string::npos);
  // The non-remotable pair renders as the bold black edge.
  EXPECT_NE(dot.find("c0 -- c1 [color=black, penwidth=2.0"), std::string::npos);
}

TEST(DotExportTest, OptionsFilterDriverAndSmallEdges) {
  DotExportOptions options;
  options.include_driver = false;
  options.min_edge_bytes = 1000;
  options.graph_name = "fig";
  const std::string dot = ExportDistributionDot(SmallProfile(), SmallResult(), options);
  EXPECT_EQ(dot.find("driver"), std::string::npos);
  EXPECT_NE(dot.find("graph \"fig\""), std::string::npos);
  // The sub-threshold remotable edge dropped; the non-remotable edge always
  // stays (it is structural, not volumetric)... both c0--c1 calls merge
  // into one abstract edge here, which carries the colocation flag.
  EXPECT_NE(dot.find("c0 -- c1"), std::string::npos);
}

TEST(DotExportTest, WritesParseableFile) {
  const std::string path = "/tmp/coign_dot_test.dot";
  ASSERT_TRUE(WriteDistributionDot(SmallProfile(), SmallResult(), path).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char head[6] = {};
  ASSERT_EQ(std::fread(head, 1, 5, file), 5u);
  std::fclose(file);
  EXPECT_EQ(std::string(head), "graph");
  std::remove(path.c_str());
}

TEST(DotExportTest, RefusesUnwritablePath) {
  EXPECT_FALSE(
      WriteDistributionDot(SmallProfile(), SmallResult(), "/nonexistent/dir/x.dot").ok());
}

}  // namespace
}  // namespace coign
