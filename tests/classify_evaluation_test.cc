#include "src/classify/evaluation.h"

#include <gtest/gtest.h>

#include "src/classify/classifiers.h"
#include "src/classify/comm_vector.h"

namespace coign {
namespace {

TEST(SparseCorrelationTest, MatchesDenseSemantics) {
  SparseVector a = {{0, 1.0}, {1, 2.0}};
  SparseVector b = {{0, 2.0}, {1, 4.0}};
  EXPECT_NEAR(SparseCorrelation(a, b), 1.0, 1e-12);
  SparseVector c = {{2, 5.0}};
  EXPECT_EQ(SparseCorrelation(a, c), 0.0);
  EXPECT_EQ(SparseCorrelation({}, {}), 1.0);
  EXPECT_EQ(SparseCorrelation(a, {}), 0.0);
}

TEST(SparseCorrelationTest, SymmetricAndBounded) {
  SparseVector a = {{0, 3.0}, {2, 1.0}, {5, 0.5}};
  SparseVector b = {{0, 1.0}, {1, 4.0}, {5, 2.0}};
  const double ab = SparseCorrelation(a, b);
  EXPECT_DOUBLE_EQ(ab, SparseCorrelation(b, a));
  EXPECT_GT(ab, 0.0);
  EXPECT_LT(ab, 1.0);
}

TEST(AddScaledTest, Accumulates) {
  SparseVector dst = {{1, 1.0}};
  AddScaled(&dst, {{1, 2.0}, {3, 4.0}}, 0.5);
  EXPECT_DOUBLE_EQ(dst[1], 2.0);
  EXPECT_DOUBLE_EQ(dst[3], 2.0);
}

TEST(CommMatrixTest, SymmetricAccumulation) {
  CommMatrix comm;
  comm.Add(1, 2, 10.0);
  comm.Add(2, 1, 5.0);
  comm.Add(1, 1, 100.0);  // Intra-instance: ignored.
  EXPECT_DOUBLE_EQ(comm.RowOf(1).at(2), 15.0);
  EXPECT_DOUBLE_EQ(comm.RowOf(2).at(1), 15.0);
  EXPECT_TRUE(comm.RowOf(3).empty());
  EXPECT_EQ(comm.RowOf(1).count(1), 0u);
  comm.Clear();
  EXPECT_TRUE(comm.RowOf(1).empty());
}

// An end-to-end evaluator exercise with hand-built communication: a
// classifier that recognizes bigone instances scores high; one that lumps
// differently-behaving instances together scores lower.
class EvaluatorScenario {
 public:
  EvaluatorScenario(ClassifierKind kind, int depth = kCompleteStackWalk)
      : classifier_(MakeClassifier(kind, depth)), evaluator_(classifier_.get()) {
    cls_ui_.clsid = Guid::FromName("clsid:Ui");
    cls_ui_.name = "Ui";
    cls_worker_.clsid = Guid::FromName("clsid:Worker");
    cls_worker_.name = "Worker";
    cls_store_.clsid = Guid::FromName("clsid:Store");
    cls_store_.name = "Store";
  }

  // One "execution": a UI-context worker (talks to the UI) and a
  // store-context worker (talks to the store). Distinct stack contexts.
  void RunExecution(bool evaluation) {
    classifier_->BeginExecution();
    CommMatrix comm;
    InstanceId next = next_instance_;

    const InstanceId ui = next++;
    classifier_->Classify(cls_ui_, {}, ui);
    const InstanceId store = next++;
    classifier_->Classify(cls_store_, {}, store);

    const InstanceId ui_worker = next++;
    classifier_->Classify(cls_worker_,
                          {CallFrame{.instance = ui, .clsid = cls_ui_.clsid,
                                     .iid = Guid::FromName("iid:IUi"), .method = 0}},
                          ui_worker);
    const InstanceId store_worker = next++;
    classifier_->Classify(cls_worker_,
                          {CallFrame{.instance = store, .clsid = cls_store_.clsid,
                                     .iid = Guid::FromName("iid:IStore"), .method = 0}},
                          store_worker);
    next_instance_ = next;

    comm.Add(ui_worker, ui, 1000.0);
    comm.Add(ui_worker, store, 10.0);
    comm.Add(store_worker, store, 1000.0);
    comm.Add(store_worker, ui, 10.0);

    if (evaluation) {
      evaluator_.AccumulateEvaluationRun(comm);
    } else {
      evaluator_.AccumulateProfilingRun(comm);
    }
  }

  ClassifierAccuracyRow Evaluate() {
    RunExecution(/*evaluation=*/false);
    RunExecution(/*evaluation=*/false);
    evaluator_.BeginEvaluationPhase();
    RunExecution(/*evaluation=*/true);
    return evaluator_.Row();
  }

 private:
  std::unique_ptr<InstanceClassifier> classifier_;
  ClassifierEvaluator evaluator_;
  ClassDesc cls_ui_, cls_worker_, cls_store_;
  InstanceId next_instance_ = 1;
};

TEST(ClassifierEvaluatorTest, ContextAwareClassifierScoresHigh) {
  ClassifierAccuracyRow row = EvaluatorScenario(ClassifierKind::kInstantiatedBy).Evaluate();
  // 4 classifications (ui, store, worker-from-ui, worker-from-store), none
  // new in the evaluation run, high correlation.
  EXPECT_EQ(row.profiled_classifications, 4u);
  EXPECT_EQ(row.new_classifications, 0u);
  EXPECT_GT(row.avg_correlation, 0.95);
  EXPECT_NEAR(row.avg_instances_per_classification, 2.0, 1e-9);
}

TEST(ClassifierEvaluatorTest, StaticTypeMergesDistinctBehaviours) {
  ClassifierAccuracyRow row = EvaluatorScenario(ClassifierKind::kStaticType).Evaluate();
  // Only 3 classifications (both workers share one), still nothing new,
  // but correlation suffers: each worker is compared against a profile
  // blending two opposite behaviours.
  EXPECT_EQ(row.profiled_classifications, 3u);
  EXPECT_EQ(row.new_classifications, 0u);
  EXPECT_LT(row.avg_correlation, 0.95);
  EXPECT_GT(row.avg_correlation, 0.3);
}

TEST(ClassifierEvaluatorTest, AccuracyOrderingStToContextful) {
  const double st =
      EvaluatorScenario(ClassifierKind::kStaticType).Evaluate().avg_correlation;
  const double ifcb =
      EvaluatorScenario(ClassifierKind::kInternalFunctionCalledBy).Evaluate().avg_correlation;
  EXPECT_GT(ifcb, st);
}

TEST(ClassifierEvaluatorTest, RowCarriesClassifierName) {
  ClassifierAccuracyRow row =
      EvaluatorScenario(ClassifierKind::kEntryPointCalledBy).Evaluate();
  EXPECT_EQ(row.name, "Entry-Point Called-By");
}

}  // namespace
}  // namespace coign
